//! Umbrella crate re-exporting the PSB reproduction workspace.
//!
//! See the workspace `README.md` for the project overview. The individual
//! crates are:
//!
//! * [`common`] — addresses, cycles, counters, PRNG, statistics.
//! * [`mem`] — caches, MSHRs, buses, DRAM, TLB.
//! * [`cpu`] — the out-of-order superscalar core model.
//! * [`core`] — the paper's contribution: address predictors and
//!   predictor-directed stream buffers.
//! * [`workloads`] — the synthetic benchmark suite.
//! * [`sim`] — the full-system simulator and experiment harness.
//! * [`obs`] — observability: metrics registry, prefetch-lifecycle
//!   tracing, interval time series and JSON artifacts.
//! * [`serve`] — zero-dependency HTTP serving of live progress,
//!   metrics and report documents (`--serve` in both binaries).
//!
//! # Quickstart
//!
//! ```no_run
//! use psb::sim::{MachineConfig, PrefetcherKind, Simulation};
//! use psb::workloads::Benchmark;
//!
//! let config = MachineConfig::baseline().with_prefetcher(PrefetcherKind::PsbConfPriority);
//! let stats = Simulation::new(config, Benchmark::Health.trace(1), 200_000).run();
//! assert!(stats.ipc() > 0.0);
//! ```

pub use psb_common as common;
pub use psb_core as core;
pub use psb_cpu as cpu;
pub use psb_mem as mem;
pub use psb_obs as obs;
pub use psb_serve as serve;
pub use psb_sim as sim;
pub use psb_workloads as workloads;
