//! `psbsim` — the command-line front end to the simulator.
//!
//! ```text
//! psbsim [OPTIONS] <benchmark>
//!
//! ARGS:
//!   <benchmark>      health | burg | deltablue | gs | sis | turb3d
//!                    (also accepted as `--bench <benchmark>`)
//!
//! OPTIONS:
//!   --prefetcher X   any engine registered in psb-core (run with
//!                    `--help` for the live list: none, sequential,
//!                    pangloss, dspatch, conf-priority, ...)
//!                                             [default: conf-priority]
//!   --l1d X          32k4 | 32k2 | 16k4       [default: 32k4]
//!   --no-dis         disable perfect store-set disambiguation
//!   --scale N        trace scale              [default: 1]
//!   --max N          commit at most N instructions
//!   --compare        also run the no-prefetch baseline and report speedup
//!   --dump FILE      write the generated trace (PSBT format) and exit
//!   --load FILE      simulate a previously dumped trace instead of
//!                    generating one (benchmark argument not needed)
//!   --victim N       add an N-entry victim cache beside the L1D
//!   --csv            emit machine-readable CSV instead of a table
//!   --log N          print the first N memory events (debug/teaching)
//!   --log-last N     print the last N memory events (ring buffer)
//!   --json FILE      write the psb-run-v1 JSON artifact (aggregate
//!                    stats, lifecycle counts, epochs, metrics)
//!   --trace-out FILE write a Chrome trace-event file (load it in
//!                    Perfetto / chrome://tracing; one track per
//!                    stream buffer)
//!   --interval N     sample the interval time series every N cycles
//!                    (recorded into the --json artifact)
//!   --serve ADDR     serve GET /progress, /metrics and /report over
//!                    HTTP on ADDR (e.g. 127.0.0.1:9090) while the
//!                    simulation runs; implies --interval 100000 when
//!                    no interval is given (epoch closes drive the
//!                    live updates)
//! ```

use psb::cpu::Disambiguation;
use psb::mem::CacheConfig;
use psb::obs::{prometheus, Json};
use psb::serve::{Published, Route, Server};
use psb::sim::{f2, pct, MachineConfig, PrefetcherKind, SimStats, Simulation, SweepTracker, Table};
use psb::workloads::Benchmark;

fn usage() -> ! {
    let kinds: Vec<&str> = PrefetcherKind::ALL.iter().map(|k| k.cli_name()).collect();
    eprintln!(
        "usage: psbsim [--prefetcher KIND] [--l1d GEOM] [--no-dis] \
         [--scale N] [--max N] [--compare] [--dump FILE] [--load FILE] \
         [--victim N] [--csv] [--log N] [--log-last N] [--json FILE] \
         [--trace-out FILE] [--interval N] [--serve ADDR] \
         [--bench NAME | <benchmark>]\n\
         kinds: {}\n\
         benchmarks: health burg deltablue gs sis turb3d\n\
         l1d geometries: 32k4 32k2 16k4",
        kinds.join(" ")
    );
    std::process::exit(2);
}

/// Writes `contents` to `path`, exiting with a message on failure.
fn write_file(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    }
}

fn report(label: &str, s: &SimStats) -> Vec<String> {
    vec![
        label.to_owned(),
        f2(s.ipc()),
        f2(s.l1d_miss_rate()),
        f2(s.avg_load_latency()),
        pct(s.l1_l2_bus_percent()),
        pct(s.prefetch_accuracy() * 100.0),
        format!("{}", s.prefetch.issued),
    ]
}

fn main() {
    let mut bench: Option<Benchmark> = None;
    let mut kind = PrefetcherKind::PsbConfPriority;
    let mut l1d = CacheConfig::l1d_32k_4way();
    let mut dis = Disambiguation::Perfect;
    let mut scale = 1u32;
    let mut max = u64::MAX;
    let mut compare = false;
    let mut dump: Option<String> = None;
    let mut load: Option<String> = None;
    let mut victim = 0usize;
    let mut csv = false;
    let mut log_events = 0usize;
    let mut log_last = 0usize;
    let mut json_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut interval: Option<u64> = None;
    let mut serve_addr: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--prefetcher" => {
                kind = match args.next().as_deref().map(str::parse) {
                    Some(Ok(k)) => k,
                    Some(Err(e)) => {
                        eprintln!("psbsim: {e}");
                        usage()
                    }
                    None => usage(),
                }
            }
            "--l1d" => {
                l1d = match args.next().as_deref() {
                    Some("32k4") => CacheConfig::l1d_32k_4way(),
                    Some("32k2") => CacheConfig::l1d_32k_2way(),
                    Some("16k4") => CacheConfig::l1d_16k_4way(),
                    _ => usage(),
                }
            }
            "--no-dis" => dis = Disambiguation::WaitForStores,
            "--scale" => {
                scale = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--max" => max = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()),
            "--compare" => compare = true,
            "--dump" => dump = Some(args.next().unwrap_or_else(|| usage())),
            "--load" => load = Some(args.next().unwrap_or_else(|| usage())),
            "--victim" => {
                victim = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--csv" => csv = true,
            "--log" => {
                log_events = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--log-last" => {
                log_last = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--json" => json_out = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-out" => trace_out = Some(args.next().unwrap_or_else(|| usage())),
            "--interval" => {
                interval = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--serve" => serve_addr = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            "--bench" => match args.next().as_deref().map(str::parse) {
                Some(Ok(b)) if bench.is_none() => bench = Some(b),
                _ => usage(),
            },
            // Unknown flags are errors, never benchmark names — a typo
            // like `--pefetcher` must not fall through to trace lookup.
            other if other.starts_with('-') => {
                eprintln!("psbsim: unknown option `{other}`");
                usage()
            }
            other => match other.parse() {
                Ok(b) if bench.is_none() => bench = Some(b),
                Ok(_) => {
                    eprintln!("psbsim: benchmark given more than once");
                    usage()
                }
                Err(e) => {
                    eprintln!("psbsim: {e}");
                    usage()
                }
            },
        }
    }
    let trace = if let Some(path) = load {
        eprintln!("loading trace from {path}...");
        let file = std::fs::File::open(&path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        });
        psb::workloads::read_trace(std::io::BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        })
    } else {
        let Some(bench) = bench else { usage() };
        eprintln!("generating {bench} trace (scale {scale})...");
        bench.trace(scale)
    };
    if let Some(path) = dump {
        let file = std::fs::File::create(&path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        });
        psb::workloads::write_trace(std::io::BufWriter::new(file), &trace).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {} instructions to {path}", trace.len());
        return;
    }
    eprintln!("{} instructions; simulating...", trace.len());

    let config = MachineConfig::baseline()
        .with_prefetcher(kind)
        .with_l1d(l1d)
        .with_disambiguation(dis)
        .with_victim_cache(victim);

    // The observability hub rides along on every run; tracing and
    // interval sampling only collect when their flags ask for them.
    // Live serving needs epoch closes to drive its updates, so --serve
    // without --interval samples at a default cadence.
    if serve_addr.is_some() && interval.is_none() {
        interval = Some(100_000);
    }
    let obs = psb::obs::Obs::new();
    if trace_out.is_some() {
        obs.enable_trace(1 << 20);
    }
    if let Some(every) = interval {
        obs.enable_interval(every);
    }
    let log = if log_events > 0 {
        Some(psb::sim::MemLog::shared(log_events))
    } else if log_last > 0 {
        Some(psb::sim::MemLog::shared_ring(log_last))
    } else {
        None
    };

    let bench_label = bench.map_or_else(|| "trace".to_owned(), |b| b.to_string());

    // The --serve plane: a single-cell progress tracker (heartbeats per
    // closed epoch), Prometheus metrics, and a partial psb-run-v1
    // report that fills in when the run completes.
    let serving = serve_addr.as_deref().map(|addr| {
        let tracker = SweepTracker::new(1);
        tracker.begin(1);
        let metrics = Published::new(prometheus::render(&obs.registry_snapshot()));
        let report = Published::new(
            Json::obj(vec![
                ("schema", Json::str("psb-run-v1")),
                ("benchmark", Json::str(&bench_label)),
                ("prefetcher", Json::str(kind.label())),
                ("partial", Json::Bool(true)),
                ("aggregate", Json::Null),
            ])
            .to_string(),
        );
        let server = Server::bind(
            addr,
            vec![
                Route::new("/progress", "application/json", tracker.handle()),
                Route::new("/metrics", "text/plain; version=0.0.4", metrics.clone()),
                Route::new("/report", "application/json", report.clone()),
            ],
        )
        .unwrap_or_else(|e| {
            eprintln!("psbsim: cannot serve on {addr}: {e}");
            std::process::exit(1);
        });
        eprintln!("serving /progress /metrics /report on http://{}/", server.local_addr());
        // Each closed interval epoch beats the tracker (proof of life
        // mid-run) and refreshes the served metrics snapshot.
        let hook_tracker = tracker.clone();
        let hook_metrics = metrics.clone();
        obs.set_epoch_hook(move |obs| {
            hook_tracker.worker_heartbeat(0);
            hook_metrics.publish(prometheus::render(&obs.registry_snapshot()));
        });
        tracker.worker_started(0, 0, &format!("{bench_label}/{}", kind.label()));
        (server, tracker, metrics, report)
    });

    let run_start = std::time::Instant::now();
    let mut sim = Simulation::new(config, trace.clone(), max).with_obs(obs.clone());
    if let Some(log) = &log {
        sim = sim.with_event_log(log.clone());
    }
    let main_stats = sim.run();

    if let Some((_, tracker, metrics, report)) = &serving {
        tracker.worker_finished(0, run_start.elapsed().as_micros() as u64);
        metrics.publish(prometheus::render(&obs.registry_snapshot()));
        let doc = psb::sim::json_report(&bench_label, kind.label(), &main_stats, Some(&obs));
        report.publish(doc.to_string());
    }

    if let Some(path) = &json_out {
        let doc = psb::sim::json_report(&bench_label, kind.label(), &main_stats, Some(&obs));
        write_file(path, &doc.to_string());
        eprintln!("wrote run artifact to {path}");
    }
    if let Some(path) = &trace_out {
        let doc = obs.trace_json().expect("tracing was enabled above");
        write_file(path, &doc.to_string());
        eprintln!("wrote Chrome trace to {path}");
    }

    if csv {
        println!("{}", psb::sim::SimStats::CSV_HEADER);
        println!("{}", main_stats.csv_row());
        return;
    }

    if let Some(log) = &log {
        for e in log.borrow().ordered() {
            println!("{e}");
        }
        return;
    }

    let mut t = Table::new(
        ["config", "IPC", "L1D MR", "ld-lat", "L1-L2 bus", "pf acc", "issued"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    if compare {
        let base = Simulation::new(config.with_prefetcher(PrefetcherKind::None), trace, max).run();
        t.row(report("base", &base));
        t.row(report(kind.label(), &main_stats));
        print!("{t}");
        println!("\nspeedup over base: {}", pct(main_stats.speedup_percent_over(&base)));
    } else {
        t.row(report(kind.label(), &main_stats));
        print!("{t}");
    }
}
