//! `psbsweep` — the parallel sweep front end: a (benchmark × prefetcher
//! × L1D-geometry) grid fanned out over a worker pool with shared-trace
//! caching.
//!
//! ```text
//! psbsweep [OPTIONS]
//!
//! OPTIONS:
//!   --bench LIST       comma-separated benchmarks, or `all`
//!                      (health burg deltablue gs sis turb3d) [default: all]
//!   --prefetcher LIST  comma-separated kinds, `paper` (the six Figure-5
//!                      configs) or `all`               [default: paper]
//!   --l1d LIST         comma-separated geometries: 32k4 | 32k2 | 16k4
//!                                                   [default: 32k4]
//!   --scale N          trace scale                   [default: 1]
//!   --max N            commit at most N instructions per cell
//!   --threads N        worker threads (0 = one per core) [default: 0]
//!   --csv              emit machine-readable CSV instead of a table
//!   --json FILE        write the merged psb-sweep-v1 artifact
//!   --quiet            suppress per-cell progress lines
//! ```
//!
//! Output rows follow grid (submission) order — benchmark-major, then
//! prefetcher, then geometry — and are bit-identical for every
//! `--threads` value; only the wall-clock changes. When the grid
//! includes the `none` baseline, a per-row `speedup` column reports each
//! cell's IPC gain over the same benchmark/geometry/scale baseline.

use psb::mem::CacheConfig;
use psb::sim::{
    f2, pct, try_run_sweep_with, MachineConfig, PrefetcherKind, SimStats, SweepCell, Table,
};
use psb::workloads::Benchmark;

fn usage() -> ! {
    eprintln!(
        "usage: psbsweep [--bench LIST|all] [--prefetcher LIST|paper|all] \
         [--l1d LIST] [--scale N] [--max N] [--threads N] [--csv] \
         [--json FILE] [--quiet]\n\
         kinds: none sequential next-line demand-markov fetch-directed pc-stride \
         2miss-rr 2miss-priority conf-rr conf-priority\n\
         benchmarks: health burg deltablue gs sis turb3d\n\
         l1d geometries: 32k4 32k2 16k4"
    );
    std::process::exit(2);
}

fn parse_benches(spec: &str) -> Vec<Benchmark> {
    if spec == "all" {
        return Benchmark::ALL.to_vec();
    }
    spec.split(',')
        .map(|name| {
            name.parse().unwrap_or_else(|e| {
                eprintln!("psbsweep: {e}");
                usage()
            })
        })
        .collect()
}

fn parse_kinds(spec: &str) -> Vec<PrefetcherKind> {
    match spec {
        "paper" => PrefetcherKind::PAPER.to_vec(),
        "all" => PrefetcherKind::ALL.to_vec(),
        _ => spec
            .split(',')
            .map(|name| {
                name.parse().unwrap_or_else(|e| {
                    eprintln!("psbsweep: {e}");
                    usage()
                })
            })
            .collect(),
    }
}

fn parse_geometries(spec: &str) -> Vec<CacheConfig> {
    spec.split(',')
        .map(|name| match name {
            "32k4" => CacheConfig::l1d_32k_4way(),
            "32k2" => CacheConfig::l1d_32k_2way(),
            "16k4" => CacheConfig::l1d_16k_4way(),
            other => {
                eprintln!("psbsweep: unknown l1d geometry `{other}` (expected 32k4, 32k2, 16k4)");
                usage()
            }
        })
        .collect()
}

/// Index of the `none`-prefetcher cell sharing `cell`'s benchmark,
/// geometry and scale, for the speedup column.
fn baseline_index(cells: &[SweepCell], cell: &SweepCell) -> Option<usize> {
    cells.iter().position(|c| {
        c.bench == cell.bench
            && c.scale == cell.scale
            && c.config.mem.l1d == cell.config.mem.l1d
            && c.config.prefetcher == PrefetcherKind::None
    })
}

fn table_row(cell: &SweepCell, stats: &SimStats, speedup: Option<f64>) -> Vec<String> {
    vec![
        cell.bench.name().to_owned(),
        cell.label(),
        f2(stats.ipc()),
        f2(stats.l1d_miss_rate()),
        f2(stats.avg_load_latency()),
        pct(stats.l1_l2_bus_percent()),
        pct(stats.prefetch_accuracy() * 100.0),
        speedup.map_or_else(|| "-".to_owned(), |s| format!("{s:+.1}%")),
    ]
}

fn main() {
    let mut benches = Benchmark::ALL.to_vec();
    let mut kinds = PrefetcherKind::PAPER.to_vec();
    let mut geometries = vec![CacheConfig::l1d_32k_4way()];
    let mut scale = 1u32;
    let mut max = u64::MAX;
    let mut threads = 0usize;
    let mut csv = false;
    let mut json_out: Option<String> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--bench" => benches = parse_benches(&args.next().unwrap_or_else(|| usage())),
            "--prefetcher" => kinds = parse_kinds(&args.next().unwrap_or_else(|| usage())),
            "--l1d" => geometries = parse_geometries(&args.next().unwrap_or_else(|| usage())),
            "--scale" => {
                scale = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--max" => max = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()),
            "--threads" => {
                threads = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--csv" => csv = true,
            "--json" => json_out = Some(args.next().unwrap_or_else(|| usage())),
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("psbsweep: unknown argument `{other}`");
                usage()
            }
        }
    }
    if benches.is_empty() || kinds.is_empty() || geometries.is_empty() {
        eprintln!("psbsweep: empty grid");
        usage()
    }

    // Grid order: benchmark-major, then prefetcher, then geometry — the
    // submission order the output keeps regardless of worker scheduling.
    let mut cells = Vec::new();
    for &bench in &benches {
        for &kind in &kinds {
            for &l1d in &geometries {
                let config = MachineConfig::baseline().with_prefetcher(kind).with_l1d(l1d);
                cells.push(SweepCell::new(bench, config, scale).with_max_commits(max));
            }
        }
    }

    let obs = psb::obs::Obs::new();
    eprintln!(
        "sweeping {} cells ({} benchmarks x {} configs)...",
        cells.len(),
        benches.len(),
        kinds.len() * geometries.len()
    );
    let start = std::time::Instant::now();
    let sweep = try_run_sweep_with(&cells, threads, Some(&obs), |p| {
        if !quiet {
            eprintln!(
                "[{}/{}] {}/{} done in {:.2}s",
                p.done,
                p.total,
                p.cell.bench.name(),
                p.cell.label(),
                p.wall_micros as f64 / 1e6
            );
        }
    });
    // A panicking cell must not exit zero with partial output (or no
    // output at all): name the cell — benchmark, config label, scale —
    // and fail loudly so scripts and CI catch it.
    let outcomes = match sweep {
        Ok(outcomes) => outcomes,
        Err(e) => {
            eprintln!("psbsweep: {e}");
            std::process::exit(1);
        }
    };
    let wall = start.elapsed().as_secs_f64();
    let cell_secs: f64 = outcomes.iter().map(|o| o.wall_micros as f64 / 1e6).sum();
    eprintln!(
        "sweep finished in {wall:.2}s wall ({cell_secs:.2}s of cell work, {} workers)",
        obs.counter("sweep.workers").get()
    );

    if let Some(path) = &json_out {
        let doc = psb::sim::sweep_report(&cells, &outcomes);
        if let Err(e) = std::fs::write(path, doc.to_string()) {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote sweep artifact to {path}");
    }

    let speedups: Vec<Option<f64>> = cells
        .iter()
        .zip(&outcomes)
        .map(|(cell, out)| {
            baseline_index(&cells, cell)
                .filter(|&b| cells[b].config.prefetcher != cell.config.prefetcher)
                .map(|b| out.stats.speedup_percent_over(&outcomes[b].stats))
        })
        .collect();

    if csv {
        println!("benchmark,config,scale,speedup_pct,{}", SimStats::CSV_HEADER);
        for ((cell, out), speedup) in cells.iter().zip(&outcomes).zip(&speedups) {
            println!(
                "{},{},{},{},{}",
                cell.bench.name(),
                cell.label(),
                cell.scale,
                speedup.map_or_else(String::new, |s| format!("{s:.4}")),
                out.stats.csv_row()
            );
        }
        return;
    }

    let mut t = Table::new(
        ["benchmark", "config", "IPC", "L1D MR", "ld-lat", "L1-L2 bus", "pf acc", "speedup"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    for ((cell, out), speedup) in cells.iter().zip(&outcomes).zip(&speedups) {
        t.row(table_row(cell, &out.stats, *speedup));
    }
    print!("{t}");
}
