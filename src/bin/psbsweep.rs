//! `psbsweep` — the parallel sweep front end: a (benchmark × prefetcher
//! × L1D-geometry) grid fanned out over a worker pool with shared-trace
//! caching.
//!
//! ```text
//! psbsweep [OPTIONS]
//!
//! OPTIONS:
//!   --bench LIST       comma-separated benchmarks, or `all`
//!                      (health burg deltablue gs sis turb3d) [default: all]
//!                      (`--benches` is accepted as an alias)
//!   --prefetcher LIST  comma-separated registry names, `paper` (the six
//!                      Figure-5 configs) or `all` (every registered
//!                      engine)                         [default: paper]
//!                      (`--prefetchers` is accepted as an alias)
//!   --l1d LIST         comma-separated geometries: 32k4 | 32k2 | 16k4
//!                                                   [default: 32k4]
//!   --scale N          trace scale                   [default: 1]
//!   --max N            commit at most N instructions per cell
//!   --threads N        worker threads (0 = one per core) [default: 0]
//!   --csv              emit machine-readable CSV instead of a table
//!   --json FILE        write the merged psb-sweep-v1 artifact
//!   --journal FILE     append a psb-sweep-journal-v1 record per
//!                      completed cell (fsync'd; crash-safe)
//!   --resume FILE      replay completed cells from FILE's journal and
//!                      run only the missing ones (appends to FILE)
//!   --serve ADDR       serve GET /progress, /metrics and /report over
//!                      HTTP on ADDR (e.g. 127.0.0.1:9090) while the
//!                      sweep runs
//!   --quiet            suppress per-cell progress lines
//! ```
//!
//! Output rows follow grid (submission) order — benchmark-major, then
//! prefetcher, then geometry — and are bit-identical for every
//! `--threads` value; only the wall-clock changes. When the grid
//! includes the `none` baseline, a per-row `speedup` column reports each
//! cell's IPC gain over the same benchmark/geometry/scale baseline.
//!
//! A killed `--journal` run loses nothing: `--resume` replays every
//! journaled cell from disk and the final artifact is byte-identical to
//! an uninterrupted run (the journal stores rendered entry *text*,
//! spliced verbatim — see `psb::sim::journal`).

use psb::mem::CacheConfig;
use psb::obs::{json, prometheus, Json};
use psb::serve::{Published, Route, Server};
use psb::sim::{
    f2, pct, run_journaled, sweep_report_from_texts, try_run_sweep_tracked, MachineConfig,
    PrefetcherKind, SimStats, SweepCell, SweepTracker, Table,
};
use psb::workloads::Benchmark;

/// The registry's engine names, for help text that cannot drift from
/// the engines actually registered.
fn kind_names() -> String {
    let names: Vec<&str> = PrefetcherKind::ALL.iter().map(|k| k.cli_name()).collect();
    names.join(" ")
}

fn usage() -> ! {
    eprintln!(
        "usage: psbsweep [--bench LIST|all] [--prefetcher LIST|paper|all] \
         [--l1d LIST] [--scale N] [--max N] [--threads N] [--csv] \
         [--json FILE] [--journal FILE] [--resume FILE] [--serve ADDR] [--quiet]\n\
         kinds: {}\n\
         benchmarks: health burg deltablue gs sis turb3d\n\
         l1d geometries: 32k4 32k2 16k4",
        kind_names()
    );
    std::process::exit(2);
}

fn parse_benches(spec: &str) -> Vec<Benchmark> {
    if spec == "all" {
        return Benchmark::ALL.to_vec();
    }
    spec.split(',')
        .map(|name| {
            name.parse().unwrap_or_else(|e| {
                eprintln!("psbsweep: {e}");
                usage()
            })
        })
        .collect()
}

fn parse_kinds(spec: &str) -> Vec<PrefetcherKind> {
    match spec {
        "paper" => PrefetcherKind::PAPER.to_vec(),
        "all" => PrefetcherKind::ALL.to_vec(),
        _ => spec
            .split(',')
            .map(|name| {
                name.parse().unwrap_or_else(|e| {
                    eprintln!("psbsweep: {e}");
                    usage()
                })
            })
            .collect(),
    }
}

fn parse_geometries(spec: &str) -> Vec<CacheConfig> {
    spec.split(',')
        .map(|name| match name {
            "32k4" => CacheConfig::l1d_32k_4way(),
            "32k2" => CacheConfig::l1d_32k_2way(),
            "16k4" => CacheConfig::l1d_16k_4way(),
            other => {
                eprintln!("psbsweep: unknown l1d geometry `{other}` (expected 32k4, 32k2, 16k4)");
                usage()
            }
        })
        .collect()
}

/// Index of the `none`-prefetcher cell sharing `cell`'s benchmark,
/// geometry and scale, for the speedup column.
fn baseline_index(cells: &[SweepCell], cell: &SweepCell) -> Option<usize> {
    cells.iter().position(|c| {
        c.bench == cell.bench
            && c.scale == cell.scale
            && c.config.mem.l1d == cell.config.mem.l1d
            && c.config.prefetcher == PrefetcherKind::None
    })
}

fn table_row(cell: &SweepCell, stats: &SimStats, speedup: Option<f64>) -> Vec<String> {
    vec![
        cell.bench.name().to_owned(),
        cell.label(),
        f2(stats.ipc()),
        f2(stats.l1d_miss_rate()),
        f2(stats.avg_load_latency()),
        pct(stats.l1_l2_bus_percent()),
        pct(stats.prefetch_accuracy() * 100.0),
        speedup.map_or_else(|| "-".to_owned(), |s| format!("{s:+.1}%")),
    ]
}

/// A table row rebuilt from a parsed `psb-sweep-v1` cell entry — the
/// only source of numbers for a cell replayed from a journal (the
/// journal stores rendered entries, not raw counters).
fn table_row_from_entry(cell: &SweepCell, agg: &Json, speedup: Option<f64>) -> Vec<String> {
    let num = |j: Option<&Json>| j.and_then(Json::as_f64).unwrap_or(0.0);
    vec![
        cell.bench.name().to_owned(),
        cell.label(),
        f2(num(agg.get("ipc"))),
        f2(num(agg.get("l1d").and_then(|c| c.get("miss_rate")))),
        f2(num(agg.get("avg_load_latency"))),
        pct(num(agg.get("bus").and_then(|b| b.get("l1_l2_util_pct")))),
        pct(num(agg.get("prefetch").and_then(|p| p.get("accuracy"))) * 100.0),
        speedup.map_or_else(|| "-".to_owned(), |s| format!("{s:+.1}%")),
    ]
}

/// The live `/report` body: a `psb-sweep-v1` document flagged
/// `"partial":true`, carrying only the cells completed so far in grid
/// order. The flag flips off (and every cell appears) when the sweep
/// finishes.
fn partial_report(completed: &[Option<String>]) -> String {
    let mut out = String::from("{\"schema\":\"psb-sweep-v1\",\"partial\":true,\"cells\":[");
    let mut first = true;
    for entry in completed.iter().flatten() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(entry);
    }
    out.push_str("]}");
    out
}

/// The `--serve` plane: an HTTP server plus the two documents the sweep
/// republishes as cells complete (`/progress` updates itself through
/// the tracker's handle).
struct Serving {
    server: Server,
    metrics: Published<String>,
    report: Published<String>,
}

fn start_serving(addr: &str, tracker: &SweepTracker, obs: &psb::obs::Obs) -> Serving {
    // Register the sweep's instruments now (at zero) so the very first
    // `/metrics` poll — possibly before any cell completes — already
    // carries them instead of an empty registry.
    obs.counter("sweep.cells_total");
    obs.counter("sweep.cells_completed");
    obs.counter("sweep.workers");
    obs.hist("sweep.cell_micros");
    let metrics = Published::new(prometheus::render(&obs.registry_snapshot()));
    let report = Published::new(partial_report(&[]));
    let server = Server::bind(
        addr,
        vec![
            Route::new("/progress", "application/json", tracker.handle()),
            Route::new("/metrics", "text/plain; version=0.0.4", metrics.clone()),
            Route::new("/report", "application/json", report.clone()),
        ],
    )
    .unwrap_or_else(|e| {
        eprintln!("psbsweep: cannot serve on {addr}: {e}");
        std::process::exit(1);
    });
    eprintln!("serving /progress /metrics /report on http://{}/", server.local_addr());
    Serving { server, metrics, report }
}

fn main() {
    let mut benches = Benchmark::ALL.to_vec();
    let mut kinds = PrefetcherKind::PAPER.to_vec();
    let mut geometries = vec![CacheConfig::l1d_32k_4way()];
    let mut scale = 1u32;
    let mut max = u64::MAX;
    let mut threads = 0usize;
    let mut csv = false;
    let mut json_out: Option<String> = None;
    let mut journal: Option<String> = None;
    let mut resume: Option<String> = None;
    let mut serve_addr: Option<String> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--bench" | "--benches" => {
                benches = parse_benches(&args.next().unwrap_or_else(|| usage()))
            }
            "--prefetcher" | "--prefetchers" => {
                kinds = parse_kinds(&args.next().unwrap_or_else(|| usage()))
            }
            "--l1d" => geometries = parse_geometries(&args.next().unwrap_or_else(|| usage())),
            "--scale" => {
                scale = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--max" => max = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()),
            "--threads" => {
                threads = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--csv" => csv = true,
            "--json" => json_out = Some(args.next().unwrap_or_else(|| usage())),
            "--journal" => journal = Some(args.next().unwrap_or_else(|| usage())),
            "--resume" => resume = Some(args.next().unwrap_or_else(|| usage())),
            "--serve" => serve_addr = Some(args.next().unwrap_or_else(|| usage())),
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("psbsweep: unknown argument `{other}`");
                usage()
            }
        }
    }
    if benches.is_empty() || kinds.is_empty() || geometries.is_empty() {
        eprintln!("psbsweep: empty grid");
        usage()
    }
    if journal.is_some() && resume.is_some() {
        eprintln!("psbsweep: --journal starts a fresh journal, --resume continues one; pick one");
        usage()
    }
    if csv && resume.is_some() {
        // Replayed cells exist only as rendered psb-sweep-v1 entries;
        // the 21-column CSV needs the raw counters a journal drops.
        eprintln!("psbsweep: --csv is unavailable with --resume (use the --json artifact)");
        usage()
    }

    // Grid order: benchmark-major, then prefetcher, then geometry — the
    // submission order the output keeps regardless of worker scheduling.
    let mut cells = Vec::new();
    for &bench in &benches {
        for &kind in &kinds {
            for &l1d in &geometries {
                let config = MachineConfig::baseline().with_prefetcher(kind).with_l1d(l1d);
                cells.push(SweepCell::new(bench, config, scale).with_max_commits(max));
            }
        }
    }

    let obs = psb::obs::Obs::new();
    let tracker = SweepTracker::new(cells.len());
    let serving = serve_addr.as_deref().map(|addr| start_serving(addr, &tracker, &obs));

    eprintln!(
        "sweeping {} cells ({} benchmarks x {} configs)...",
        cells.len(),
        benches.len(),
        kinds.len() * geometries.len()
    );
    let start = std::time::Instant::now();

    // Per-cell results, filled as cells complete (in either mode):
    // rendered entry texts for the artifact and the serve plane, full
    // stats where the cell actually ran in this process.
    let mut completed: Vec<Option<String>> = vec![None; cells.len()];
    let mut stats_by_cell: Vec<Option<SimStats>> = vec![None; cells.len()];
    let mut cell_micros: u64 = 0;

    let entry_texts: Vec<String> = {
        let republish = |completed: &[Option<String>]| {
            if let Some(s) = &serving {
                s.metrics.publish(prometheus::render(&obs.registry_snapshot()));
                s.report.publish(partial_report(completed));
            }
        };
        let journal_path = journal.as_deref().or(resume.as_deref());
        let result = if let Some(path) = journal_path {
            run_journaled(
                &cells,
                threads,
                Some(&obs),
                std::path::Path::new(path),
                resume.is_some(),
                Some(&tracker),
                |e| {
                    if !quiet {
                        if e.replayed {
                            eprintln!(
                                "[{}/{}] {}/{} replayed from journal",
                                e.done,
                                e.total,
                                e.cell.bench.name(),
                                e.cell.label()
                            );
                        } else {
                            eprintln!(
                                "[{}/{}] {}/{} done in {:.2}s",
                                e.done,
                                e.total,
                                e.cell.bench.name(),
                                e.cell.label(),
                                e.wall_micros as f64 / 1e6
                            );
                        }
                    }
                    cell_micros += e.wall_micros;
                    stats_by_cell[e.index] = e.stats.cloned();
                    completed[e.index] = Some(e.entry_text.to_string());
                    republish(&completed);
                },
            )
            .map_err(|e| e.to_string())
        } else {
            let sweep =
                try_run_sweep_tracked(&cells, threads, Some(&obs), Some(&tracker), None, |p| {
                    if !quiet {
                        eprintln!(
                            "[{}/{}] {}/{} done in {:.2}s",
                            p.done,
                            p.total,
                            p.cell.bench.name(),
                            p.cell.label(),
                            p.wall_micros as f64 / 1e6
                        );
                    }
                    cell_micros += p.wall_micros;
                    completed[p.index] =
                        Some(psb::sim::sweep_cell_entry(p.cell, p.stats).to_string());
                    stats_by_cell[p.index] = Some(p.stats.clone());
                    republish(&completed);
                });
            match sweep {
                Ok(_) => Ok(completed
                    .iter()
                    .map(|e| e.clone().expect("invariant: every cell completed"))
                    .collect()),
                Err(e) => Err(e.to_string()),
            }
        };
        // A panicking cell must not exit zero with partial output (or no
        // output at all): name the cell — benchmark, config label, scale
        // — and fail loudly so scripts and CI catch it.
        match result {
            Ok(texts) => texts,
            Err(e) => {
                eprintln!("psbsweep: {e}");
                std::process::exit(1);
            }
        }
    };

    let wall = start.elapsed().as_secs_f64();
    eprintln!(
        "sweep finished in {wall:.2}s wall ({:.2}s of cell work, {} workers)",
        cell_micros as f64 / 1e6,
        obs.counter("sweep.workers").get()
    );

    let final_doc = sweep_report_from_texts(&entry_texts);
    if let Some(s) = &serving {
        // The last `/report` body anyone polls is the complete,
        // non-partial artifact.
        s.report.publish(final_doc.clone());
        s.metrics.publish(prometheus::render(&obs.registry_snapshot()));
    }
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, &final_doc) {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote sweep artifact to {path}");
    }

    // Speedups come from IPC alone, so replayed cells (stats gone,
    // entries intact) compute them from their parsed aggregates.
    let aggregates: Vec<Json> = entry_texts
        .iter()
        .map(|t| {
            let entry = json::parse(t).expect("invariant: journal entries validated on read");
            entry.get("aggregate").cloned().unwrap_or(Json::Null)
        })
        .collect();
    let ipc_of = |i: usize| -> f64 {
        stats_by_cell[i].as_ref().map_or_else(
            || aggregates[i].get("ipc").and_then(Json::as_f64).unwrap_or(0.0),
            SimStats::ipc,
        )
    };
    let speedups: Vec<Option<f64>> = cells
        .iter()
        .enumerate()
        .map(|(i, cell)| {
            baseline_index(&cells, cell)
                .filter(|&b| cells[b].config.prefetcher != cell.config.prefetcher)
                .map(|b| {
                    let base = ipc_of(b);
                    if base == 0.0 {
                        0.0
                    } else {
                        (ipc_of(i) / base - 1.0) * 100.0
                    }
                })
        })
        .collect();

    if csv {
        println!("benchmark,config,scale,speedup_pct,{}", SimStats::CSV_HEADER);
        for ((i, cell), speedup) in cells.iter().enumerate().zip(&speedups) {
            let stats = stats_by_cell[i]
                .as_ref()
                .expect("invariant: --csv is rejected when cells can replay without stats");
            println!(
                "{},{},{},{},{}",
                cell.bench.name(),
                cell.label(),
                cell.scale,
                speedup.map_or_else(String::new, |s| format!("{s:.4}")),
                stats.csv_row()
            );
        }
        return;
    }

    let mut t = Table::new(
        ["benchmark", "config", "IPC", "L1D MR", "ld-lat", "L1-L2 bus", "pf acc", "speedup"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    for ((i, cell), speedup) in cells.iter().enumerate().zip(&speedups) {
        t.row(match &stats_by_cell[i] {
            Some(stats) => table_row(cell, stats, *speedup),
            None => table_row_from_entry(cell, &aggregates[i], *speedup),
        });
    }
    print!("{t}");

    if let Some(s) = serving {
        s.server.shutdown();
    }
}
