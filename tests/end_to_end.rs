//! Cross-crate integration tests: full traces through the full machine.
//!
//! These use short commit windows so the whole file stays fast in debug
//! builds; the paper-scale runs live in the `psb-bench` binaries.

use psb::sim::{run_sweep, MachineConfig, PrefetcherKind, Simulation, SweepCell};
use psb::workloads::Benchmark;

const WINDOW: u64 = 40_000;

fn run(bench: Benchmark, kind: PrefetcherKind) -> psb::sim::SimStats {
    let cfg = MachineConfig::baseline().with_prefetcher(kind);
    Simulation::new_shared(cfg, bench.shared_trace(1), WINDOW).run()
}

#[test]
fn every_benchmark_completes_on_every_prefetcher() {
    // The full 12-cell grid goes through the sweep work queue: every
    // worker runs against the shared trace cache and the wall-clock is
    // that of the slowest cell, not the sum.
    let cells: Vec<SweepCell> = Benchmark::ALL
        .into_iter()
        .flat_map(|bench| {
            [PrefetcherKind::None, PrefetcherKind::PsbConfPriority].into_iter().map(move |kind| {
                SweepCell::new(bench, MachineConfig::baseline().with_prefetcher(kind), 1)
                    .with_max_commits(WINDOW)
            })
        })
        .collect();
    for (cell, out) in cells.iter().zip(run_sweep(&cells, 0)) {
        let (bench, kind, s) = (cell.bench, cell.config.prefetcher, out.stats);
        assert!(s.cpu.committed >= WINDOW, "{bench}/{kind:?}: {}", s.cpu.committed);
        assert!(s.ipc() > 0.0 && s.ipc() <= 8.0, "{bench}/{kind:?}: ipc {}", s.ipc());
        assert!(s.l1d.accesses() > 0, "{bench}: no memory traffic?");
        assert!(s.cpu.bpred.accuracy() > 0.5, "{bench}: branch accuracy collapsed");
    }
}

#[test]
fn full_simulation_is_deterministic() {
    let a = run(Benchmark::DeltaBlue, PrefetcherKind::PsbConfPriority);
    let b = run(Benchmark::DeltaBlue, PrefetcherKind::PsbConfPriority);
    assert_eq!(a.cpu.cycles, b.cpu.cycles);
    assert_eq!(a.cpu.committed, b.cpu.committed);
    assert_eq!(a.prefetch, b.prefetch);
    assert_eq!(a.l1d, b.l1d);
    assert_eq!(a.l1_l2_busy, b.l1_l2_busy);
}

#[test]
fn psb_beats_base_on_the_flagship_pointer_benchmark() {
    // A longer window than the other tests: the Markov predictor needs a
    // full lap over health's patient lists before the streams pay off.
    let window = 130_000;
    let trace = Benchmark::Health.shared_trace(1);
    let base = Simulation::new_shared(MachineConfig::baseline(), trace.clone(), window).run();
    let psb = Simulation::new_shared(
        MachineConfig::baseline().with_prefetcher(PrefetcherKind::PsbConfPriority),
        trace,
        window,
    )
    .run();
    assert!(
        psb.ipc() > base.ipc() * 1.15,
        "PSB {:.3} should clearly beat base {:.3} on health",
        psb.ipc(),
        base.ipc()
    );
    assert!(psb.prefetch.used > 0);
    assert!(psb.prefetch_accuracy() > 0.3);
}

#[test]
fn psb_matches_stride_on_the_fortran_benchmark() {
    let stride = run(Benchmark::Turb3d, PrefetcherKind::PcStride);
    let psb = run(Benchmark::Turb3d, PrefetcherKind::PsbConfPriority);
    let ratio = psb.ipc() / stride.ipc();
    assert!(
        (0.8..1.25).contains(&ratio),
        "PSB/PC-stride on turb3d should be near 1.0, got {ratio:.3}"
    );
}

#[test]
fn prefetching_reduces_average_load_latency() {
    let base = run(Benchmark::Gs, PrefetcherKind::None);
    let psb = run(Benchmark::Gs, PrefetcherKind::PsbConfPriority);
    assert!(
        psb.avg_load_latency() < base.avg_load_latency(),
        "psb {:.1} vs base {:.1}",
        psb.avg_load_latency(),
        base.avg_load_latency()
    );
    assert!(psb.l1d_miss_rate() <= base.l1d_miss_rate() + 1e-9);
}

#[test]
fn prefetching_consumes_more_bus_bandwidth() {
    let base = run(Benchmark::Burg, PrefetcherKind::None);
    let psb = run(Benchmark::Burg, PrefetcherKind::PsbConfPriority);
    assert!(
        psb.l1_l2_bus_percent() > base.l1_l2_bus_percent(),
        "prefetch traffic must show up on the bus"
    );
}

#[test]
fn disambiguation_policies_order_correctly() {
    use psb::cpu::Disambiguation;
    let trace = Benchmark::DeltaBlue.shared_trace(1);
    let perfect = Simulation::new_shared(MachineConfig::baseline(), trace.clone(), WINDOW).run();
    let nodis = Simulation::new_shared(
        MachineConfig::baseline().with_disambiguation(Disambiguation::WaitForStores),
        trace,
        WINDOW,
    )
    .run();
    assert!(
        perfect.ipc() >= nodis.ipc() * 0.999,
        "perfect store sets must not lose: {} vs {}",
        perfect.ipc(),
        nodis.ipc()
    );
}

#[test]
fn smaller_cache_misses_more() {
    use psb::mem::CacheConfig;
    let trace = Benchmark::Health.shared_trace(1);
    let big = Simulation::new_shared(MachineConfig::baseline(), trace.clone(), WINDOW).run();
    let small = Simulation::new_shared(
        MachineConfig::baseline().with_l1d(CacheConfig::l1d_16k_4way()),
        trace,
        WINDOW,
    )
    .run();
    assert!(
        small.l1d_miss_rate() >= big.l1d_miss_rate(),
        "16K cache should miss at least as often as 32K"
    );
}

#[test]
fn custom_engine_injection_works() {
    use psb::core::{PsbPrefetcher, SbConfig};
    let cfg = MachineConfig::baseline();
    let s = Simulation::new_shared(cfg, Benchmark::DeltaBlue.shared_trace(1), WINDOW)
        .with_engine(Box::new(PsbPrefetcher::psb(SbConfig::psb_conf_priority())))
        .run();
    assert!(s.prefetch.issued > 0);
}

#[test]
fn event_log_records_the_access_mix() {
    use psb::sim::{MemEventKind, MemLog};
    let log = MemLog::shared(500);
    let cfg = MachineConfig::baseline().with_prefetcher(PrefetcherKind::PsbConfPriority);
    let _ = Simulation::new_shared(cfg, Benchmark::Health.shared_trace(1), 60_000)
        .with_event_log(log.clone())
        .run();
    let l = log.borrow();
    assert!(l.is_full(), "a 60k-instruction run must produce 500 events");
    let kinds: std::collections::HashSet<_> = l.events().iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&MemEventKind::L1Hit));
    assert!(kinds.contains(&MemEventKind::DemandMemory));
    assert!(kinds.contains(&MemEventKind::Prefetch));
    // Events are in nondecreasing demand order per source, and every
    // ready time is at/after its request.
    for e in l.events() {
        assert!(e.ready >= e.cycle, "{e}");
    }
}

#[test]
fn trace_serialization_round_trips_through_the_simulator() {
    let trace = Benchmark::Gs.shared_trace(1);
    let mut buf = Vec::new();
    psb::workloads::write_trace(&mut buf, &trace).unwrap();
    let back = psb::workloads::read_trace(&buf[..]).unwrap();
    let a = Simulation::new_shared(MachineConfig::baseline(), trace, 30_000).run();
    let b = Simulation::new(MachineConfig::baseline(), back, 30_000).run();
    assert_eq!(a.cpu.cycles, b.cpu.cycles, "serialized trace must simulate identically");
}

#[test]
fn readme_engine_table_matches_the_registry() {
    // README's "Prefetcher engines" table is hand-written prose; this
    // keeps it honest against the psb-core registry. Every registered
    // engine must appear as a `` `name` `` table row, in registry
    // order, with paper-grid rows (and only those) starred.
    let readme = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/README.md"))
        .expect("README.md next to Cargo.toml");
    let rows: Vec<&str> =
        readme.lines().filter(|l| l.starts_with("| `") && l.contains(" | ")).collect();
    assert_eq!(
        rows.len(),
        psb::core::ENGINES.len(),
        "README engine table must have one row per registered engine"
    );
    for (row, engine) in rows.iter().zip(psb::core::ENGINES) {
        let cell = row.trim_start_matches("| ").split(" | ").next().unwrap();
        assert_eq!(
            cell.trim_end_matches(" ★"),
            format!("`{}`", engine.name),
            "README row order must match the registry: {row}"
        );
        assert_eq!(
            cell.ends_with('★'),
            engine.paper,
            "{}: ★ marks exactly the paper-grid engines",
            engine.name
        );
    }
}

#[test]
fn registry_engines_run_end_to_end() {
    // One short window through the full machine for the two engines new
    // to the registry: they must produce traffic and stay deterministic.
    for kind in [PrefetcherKind::Pangloss, PrefetcherKind::Dspatch] {
        let a = run(Benchmark::Health, kind);
        let b = run(Benchmark::Health, kind);
        assert!(a.cpu.committed >= WINDOW, "{kind:?} completes");
        assert!(a.prefetch.issued > 0, "{kind:?} must issue prefetches on health");
        assert_eq!(a.cpu.cycles, b.cpu.cycles, "{kind:?} must be deterministic");
        assert_eq!(a.prefetch, b.prefetch, "{kind:?} must be deterministic");
    }
}

#[test]
fn fetch_directed_prefetcher_runs_end_to_end() {
    let s = run(Benchmark::Turb3d, PrefetcherKind::FetchDirected);
    assert!(s.prefetch.issued > 0, "fetch sightings must trigger prefetches");
    let base = run(Benchmark::Turb3d, PrefetcherKind::None);
    assert!(s.ipc() > base.ipc(), "fetch-directed must help the strided benchmark");
}
