//! Shared TOML-subset baseline parsing for gate commands.
//!
//! Both `cargo xtask mutants` (`MUTANTS.toml`) and `cargo xtask
//! analyze` (`PANICS.toml`) commit a baseline of *known, justified*
//! findings: entries keyed by a stable ID, each carrying a one-line
//! reason. The format is the same deliberately tiny TOML subset in both
//! files — only the schema string and the stanza name differ:
//!
//! ```toml
//! schema = "psb-mutants-v1"
//!
//! [[survivor]]
//! id = "crates/core/src/stream/buffer.rs:41:17:lit-inc"
//! reason = "capacity +1 only changes allocation, not behavior"
//! ```
//!
//! Parsed forms: `key = "value"` pairs, `[[stanza]]` headers, comments
//! and blank lines. Anything else is a parse error — strict beats
//! lenient for a gate input.

use std::collections::BTreeMap;
use std::path::Path;

/// One baseline entry: a finding ID and its justification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Stable finding ID (format is owned by the emitting gate).
    pub id: String,
    /// Why this finding is allowed to persist.
    pub reason: String,
}

/// A parsed baseline file.
#[derive(Debug, Default)]
pub struct BaselineFile {
    /// Entries keyed by ID.
    pub entries: BTreeMap<String, Entry>,
}

impl BaselineFile {
    /// Loads and parses a baseline. A missing file is an empty baseline
    /// (first run of the gate); a malformed file is an error.
    pub fn load(path: &Path, schema: &str, stanza: &str) -> Result<Self, String> {
        if !path.exists() {
            return Ok(Self::default());
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text, schema, stanza).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the TOML subset described in the module docs. `schema` is
    /// the required value of the top-level `schema` key; `stanza` the
    /// required `[[name]]` of every entry.
    pub fn parse(text: &str, schema: &str, stanza: &str) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        let mut schema_seen = false;
        let header = format!("[[{stanza}]]");
        // Fields of the stanza currently being parsed; None outside one.
        let mut current: Option<BTreeMap<String, String>> = None;

        let mut flush = |fields: BTreeMap<String, String>| -> Result<(), String> {
            let id = fields
                .get("id")
                .ok_or_else(|| format!("a {header} stanza is missing `id`"))?
                .clone();
            let reason = fields
                .get("reason")
                .ok_or_else(|| format!("{stanza} {id:?} is missing `reason`"))?
                .clone();
            if reason.trim().is_empty() {
                return Err(format!("{stanza} {id:?} has an empty `reason`"));
            }
            if entries.insert(id.clone(), Entry { id: id.clone(), reason }).is_some() {
                return Err(format!("duplicate {stanza} {id:?}"));
            }
            Ok(())
        };

        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == header {
                if let Some(fields) = current.take() {
                    flush(fields)?;
                }
                current = Some(BTreeMap::new());
                continue;
            }
            let Some((key, value)) = parse_kv(line) else {
                return Err(format!("line {}: cannot parse {line:?}", n + 1));
            };
            match (&mut current, key.as_str()) {
                (None, "schema") => {
                    if value != schema {
                        return Err(format!("unsupported schema {value:?}"));
                    }
                    schema_seen = true;
                }
                (None, _) => {
                    return Err(format!("line {}: key {key:?} outside a stanza", n + 1));
                }
                (Some(fields), _) => {
                    if fields.insert(key.clone(), value).is_some() {
                        return Err(format!("line {}: duplicate key {key:?}", n + 1));
                    }
                }
            }
        }
        if let Some(fields) = current.take() {
            flush(fields)?;
        }
        if !schema_seen {
            return Err(format!("missing `schema = \"{schema}\"` header"));
        }
        Ok(Self { entries })
    }
}

/// A paste-ready stanza for a new entry, in the canonical file format.
pub fn stanza(stanza: &str, id: &str, reason: &str) -> String {
    format!("[[{stanza}]]\nid = \"{}\"\nreason = \"{}\"\n", escape(id), escape(reason))
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parses one `key = "value"` line. Values are double-quoted strings
/// with `\"` and `\\` escapes; keys are bare identifiers.
fn parse_kv(line: &str) -> Option<(String, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-') {
        return None;
    }
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?;
    let mut value = String::new();
    let mut chars = inner.chars();
    loop {
        match chars.next()? {
            '"' => break,
            '\\' => match chars.next()? {
                '"' => value.push('"'),
                '\\' => value.push('\\'),
                _ => return None,
            },
            c => value.push(c),
        }
    }
    // Only a comment may follow the closing quote.
    let tail = chars.as_str().trim();
    if !tail.is_empty() && !tail.starts_with('#') {
        return None;
    }
    Some((key.to_string(), value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_parameterized_schema_and_stanza() {
        let text = r#"
schema = "psb-analyze-v1"

[[allow]]
id = "panics:crates/core/src/x.rs:StrideTable::train:expect"
reason = "invariant: assoc >= 1 gives every set at least one way"
"#;
        let b = BaselineFile::parse(text, "psb-analyze-v1", "allow").unwrap();
        assert_eq!(b.entries.len(), 1);
        let e = &b.entries["panics:crates/core/src/x.rs:StrideTable::train:expect"];
        assert!(e.reason.starts_with("invariant"));
    }

    #[test]
    fn stanza_name_mismatch_is_rejected() {
        let text = "schema = \"psb-analyze-v1\"\n[[survivor]]\nid = \"x\"\nreason = \"r\"\n";
        assert!(BaselineFile::parse(text, "psb-analyze-v1", "allow").is_err());
    }

    #[test]
    fn stanza_printer_escapes() {
        let s = stanza("allow", "a\"b", "why \\ because");
        let b = BaselineFile::parse(&format!("schema = \"s\"\n{s}"), "s", "allow").unwrap();
        assert!(b.entries.contains_key("a\"b"));
        assert_eq!(b.entries["a\"b"].reason, "why \\ because");
    }
}
