//! `psb-lint:` suppression directives: parsing, application, and the
//! `stale-allow` rule that keeps every allow honest.

use super::{classify, Finding, LineInfo, RULES};

/// One parsed `psb-lint:` directive.
struct Suppression {
    /// The rule it names.
    rule: String,
    /// 1-based line of the directive comment.
    line: usize,
    /// `allow-file` form: covers the whole file.
    file_level: bool,
    /// Whether any finding was actually suppressed by it.
    used: bool,
}

/// Scans a file for `psb-lint:` directives. Returns the suppressions
/// plus findings for directives that cannot possibly work (malformed,
/// or naming an unknown rule). Directives inside test regions are
/// ignored entirely: test code is not linted, so they are inert.
fn scan_directives(rel_path: &str, lines: &[LineInfo]) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for (i, li) in lines.iter().enumerate() {
        if li.in_test {
            continue;
        }
        // The comment text comes from the lexer's token stream
        // (directive text inside a string literal is a `Str` token,
        // never a comment).
        let Some(text) = li.comment.as_deref() else {
            continue;
        };
        // Strip doc-comment markers and indentation; a directive must
        // open the comment (prose that mentions the syntax mid-sentence
        // is not a directive).
        let text = text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = text.strip_prefix("psb-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (file_level, rest) = match rest.strip_prefix("allow-file(") {
            Some(r) => (true, r),
            None => match rest.strip_prefix("allow(") {
                Some(r) => (false, r),
                None => {
                    bad.push(Finding {
                        rule: "stale-allow",
                        file: rel_path.to_string(),
                        line: i + 1,
                        msg: "malformed psb-lint directive; expected \
                              `psb-lint: allow(<rule>)` or `psb-lint: allow-file(<rule>)`"
                            .to_string(),
                    });
                    continue;
                }
            },
        };
        let Some(rule) = rest.split(')').next().filter(|_| rest.contains(')')) else {
            bad.push(Finding {
                rule: "stale-allow",
                file: rel_path.to_string(),
                line: i + 1,
                msg: "malformed psb-lint directive: missing `)`".to_string(),
            });
            continue;
        };
        if !RULES.contains(&rule) {
            bad.push(Finding {
                rule: "stale-allow",
                file: rel_path.to_string(),
                line: i + 1,
                msg: format!(
                    "psb-lint directive names unknown rule {rule:?} (known: {})",
                    RULES.join(", "),
                ),
            });
            continue;
        }
        sups.push(Suppression { rule: rule.to_string(), line: i + 1, file_level, used: false });
    }
    (sups, bad)
}

/// Applies the file's suppression directives to raw findings: covered
/// findings are dropped, and every directive that covered nothing
/// becomes a `stale-allow` finding — an allow must never outlive the
/// code it excuses.
pub fn apply_suppressions(rel_path: &str, source: &str, raw: Vec<Finding>) -> Vec<Finding> {
    let lines = classify(source);
    let (mut sups, mut out) = scan_directives(rel_path, &lines);
    for f in raw {
        let mut covered = false;
        for s in &mut sups {
            if s.rule == f.rule && (s.file_level || f.line == s.line || f.line == s.line + 1) {
                s.used = true;
                covered = true;
            }
        }
        if !covered {
            out.push(f);
        }
    }
    for s in &sups {
        if !s.used {
            let form = if s.file_level { "allow-file" } else { "allow" };
            out.push(Finding {
                rule: "stale-allow",
                file: rel_path.to_string(),
                line: s.line,
                msg: format!(
                    "psb-lint: {form}({}) suppresses nothing — the code it excused \
                     is gone; remove the comment",
                    s.rule,
                ),
            });
        }
    }
    out.sort_by_key(|f| f.line);
    out
}
