use super::*;

// -- addr-arith -------------------------------------------------------

#[test]
fn addr_arith_fires_on_wrapping_pc_math() {
    let src = "fn f(pc: u64, prev_pc: u64) -> u64 {\n    pc.wrapping_sub(prev_pc)\n}\n";
    let f = lint_addr_arith("crates/workloads/src/serial.rs", src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].line, 2);
}

#[test]
fn addr_arith_fires_on_raw_cast_sum() {
    let src = "let next = base_addr + delta as u64 + 4;\n";
    let f = lint_addr_arith("crates/core/src/x.rs", src);
    assert_eq!(f.len(), 1, "{f:?}");
}

#[test]
fn addr_arith_exempted_by_file_directive_and_silent_on_non_address_math() {
    // addr.rs-style exemption: a file-level directive, not a path
    // list in this file.
    let addr_src = "// psb-lint: allow-file(addr-arith): home of address math\n\
                    fn offset(a: Addr, d: i64) -> Addr {\n    \
                    Addr(a.0.wrapping_add(d as u64))\n}\n";
    assert!(lint_file("crates/common/src/addr.rs", addr_src, false).is_empty());
    // Bit-mixing with no address vocabulary is fine.
    let rng_src = "z = z.wrapping_add(0x9e3779b97f4a7c15);\n";
    assert!(lint_addr_arith("crates/common/src/rng.rs", rng_src).is_empty());
}

#[test]
fn addr_arith_respects_allow_comment() {
    let src = "// psb-lint: allow(addr-arith): hashing, not address math\n\
               let h = pc.wrapping_add(seed);\n";
    assert!(lint_file("crates/cpu/src/x.rs", src, false).is_empty());
}

#[test]
fn addr_arith_ignores_comments_and_strings() {
    let src = "// pc.wrapping_add(4) would be wrong\n\
               let s = \"pc.wrapping_add(4)\";\n";
    assert!(lint_addr_arith("crates/cpu/src/x.rs", src).is_empty());
}

#[test]
fn addr_arith_ignores_block_comments_and_unary_signs() {
    // The token stream drops block comments wholesale — even ones that
    // the old line-oriented scan could not see.
    let block = "/* pc.wrapping_add(4) in a block comment */\nlet x = 1;\n";
    assert!(lint_addr_arith("crates/cpu/src/x.rs", block).is_empty());
    // A unary minus after `return` is not address arithmetic.
    let unary = "fn f(addr_delta: i64) -> i64 { return -addr_delta as u64 as i64; }\n";
    assert!(lint_addr_arith("crates/cpu/src/x.rs", unary).is_empty(), "unary sign, no arithmetic");
}

// -- unwrap -----------------------------------------------------------

#[test]
fn unwrap_fires_in_hot_path_non_test_code() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let f = lint_unwrap("crates/mem/src/mshr.rs", src);
    assert_eq!(f.len(), 1, "{f:?}");
}

#[test]
fn unwrap_silent_outside_hot_path_crates() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(lint_unwrap("crates/workloads/src/gen.rs", src).is_empty());
}

#[test]
fn unwrap_silent_in_test_module() {
    let src = "fn live() {}\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   #[test]\n\
                   fn t() { Some(1).unwrap(); }\n\
               }\n";
    assert!(lint_unwrap("crates/mem/src/mshr.rs", src).is_empty());
}

#[test]
fn expect_requires_invariant_justification() {
    let bare = "fn f(x: Option<u32>) -> u32 {\n    x.expect(\"present\")\n}\n";
    assert_eq!(lint_unwrap("crates/core/src/x.rs", bare).len(), 1);

    let justified = "fn f(x: Option<u32>) -> u32 {\n    \
                     // Invariant: caller checked is_some().\n    \
                     x.expect(\"checked by caller\")\n}\n";
    assert!(lint_unwrap("crates/core/src/x.rs", justified).is_empty());

    let in_message =
        "fn f(x: Option<u32>) -> u32 {\n    x.expect(\"invariant: caller checked\")\n}\n";
    assert!(lint_unwrap("crates/core/src/x.rs", in_message).is_empty());
}

#[test]
fn unwrap_is_a_method_token_not_a_substring() {
    // `unwrap_or` shares the prefix; a path call `unwrap()` with no
    // receiver dot is not the method form the rule bans.
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
    assert!(lint_unwrap("crates/mem/src/x.rs", src).is_empty());
    let in_string = "fn f() -> &'static str { \".unwrap()\" }\n";
    assert!(lint_unwrap("crates/mem/src/x.rs", in_string).is_empty());
}

// -- hashmap-report ---------------------------------------------------

#[test]
fn hashmap_fires_only_in_stats_or_report_files() {
    let src = "use std::collections::HashMap;\n";
    assert_eq!(lint_hashmap_report("crates/sim/src/stats.rs", src).len(), 1);
    assert_eq!(lint_hashmap_report("crates/sim/src/report.rs", src).len(), 1);
    assert!(lint_hashmap_report("crates/sim/src/memsys.rs", src).is_empty());
}

// -- println ----------------------------------------------------------

#[test]
fn println_fires_in_library_crate_code() {
    let src = "pub fn noisy() {\n    println!(\"hi\");\n}\n";
    let f = lint_println("crates/sim/src/memsys.rs", src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].line, 2);
}

#[test]
fn println_silent_in_binaries_tests_and_comments() {
    let src = "pub fn noisy() { println!(\"hi\"); }\n";
    assert!(lint_println("src/bin/psbsim.rs", src).is_empty());
    assert!(lint_println("crates/sim/src/bin/tool.rs", src).is_empty());
    assert!(lint_println("xtask/src/main.rs", src).is_empty());

    let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { println!(\"x\"); }\n}\n";
    assert!(lint_println("crates/sim/src/memsys.rs", test_src).is_empty());

    let doc_src = "//! println!(\"in a doc example\");\n";
    assert!(lint_println("crates/sim/src/lib.rs", doc_src).is_empty());
}

#[test]
fn println_respects_allow_comment_above_or_on_the_line() {
    let above = "// psb-lint: allow(println): harness output\nprintln!(\"ok\");\n";
    assert!(lint_file("crates/bench/src/micro.rs", above, false).is_empty());
    let same_line = "println!(\"ok\"); // psb-lint: allow(println): harness output\n";
    assert!(lint_file("crates/bench/src/micro.rs", same_line, false).is_empty());
}

// -- determinism ------------------------------------------------------

#[test]
fn determinism_fires_on_wall_clock_in_result_crates() {
    let src = "let start = std::time::Instant::now();\n";
    assert_eq!(lint_determinism("crates/sim/src/runner.rs", src).len(), 1);
    let sys = "let stamp = SystemTime::now();\n";
    assert_eq!(lint_determinism("crates/core/src/x.rs", sys).len(), 1);
}

#[test]
fn determinism_silent_outside_result_crates_tests_and_allows() {
    let src = "let start = std::time::Instant::now();\n";
    assert!(lint_determinism("crates/obs/src/trace.rs", src).is_empty());
    assert!(lint_determinism("src/bin/psbsweep.rs", src).is_empty());
    let allowed_src = "// psb-lint: allow(determinism): presentation only\n\
                       let start = std::time::Instant::now();\n";
    assert!(lint_file("crates/sim/src/sweep.rs", allowed_src, false).is_empty());
    let test_src = "#[cfg(test)]\nmod tests {\n    \
                    fn t() { let _ = std::time::Instant::now(); }\n}\n";
    assert!(lint_determinism("crates/sim/src/x.rs", test_src).is_empty());
}

// -- sync-shims -------------------------------------------------------

#[test]
fn sync_shims_fires_on_raw_std_primitives() {
    let m = "use std::sync::Mutex;\n";
    assert_eq!(lint_sync_shims("crates/sim/src/pool.rs", m).len(), 1);
    let grouped = "use std::sync::{Arc, OnceLock};\n";
    assert_eq!(lint_sync_shims("crates/workloads/src/cache.rs", grouped).len(), 1);
    let th = "std::thread::spawn(|| {});\n";
    assert_eq!(lint_sync_shims("crates/sim/src/sweep.rs", th).len(), 1);
}

#[test]
fn sync_shims_exempts_arc_shims_tests_and_other_crates() {
    let arc = "use std::sync::Arc;\n";
    assert!(lint_sync_shims("crates/workloads/src/cache.rs", arc).is_empty());
    let shim = "use psb_model::sync::{mpsc, Mutex};\nuse psb_model::thread;\n";
    assert!(lint_sync_shims("crates/sim/src/pool.rs", shim).is_empty());
    let other = "use std::sync::Mutex;\n";
    assert!(lint_sync_shims("crates/mem/src/x.rs", other).is_empty());
    let test_src = "#[cfg(test)]\nmod tests {\n    \
                    fn t() { std::thread::spawn(|| {}); }\n}\n";
    assert!(lint_sync_shims("crates/sim/src/pool.rs", test_src).is_empty());
}

// -- missing-docs -----------------------------------------------------

#[test]
fn missing_docs_fires_on_undocumented_pub_item() {
    let src = "pub fn frob() {}\n";
    let f = lint_missing_docs("crates/common/src/x.rs", src);
    assert_eq!(f.len(), 1, "{f:?}");
}

#[test]
fn missing_docs_accepts_doc_comment_above_attributes() {
    let src = "/// Frobnicates.\n#[inline]\npub fn frob() {}\n";
    assert!(lint_missing_docs("crates/common/src/x.rs", src).is_empty());
}

#[test]
fn missing_docs_exempts_reexports_and_restricted_visibility() {
    let src = "pub use crate::foo::Bar;\npub(crate) fn helper() {}\n";
    assert!(lint_missing_docs("crates/common/src/x.rs", src).is_empty());
}

#[test]
fn wants_missing_docs_detects_attribute() {
    assert!(wants_missing_docs("#![warn(missing_docs)]\n"));
    assert!(!wants_missing_docs("#![allow(dead_code)]\n"));
}

// -- stale-allow ------------------------------------------------------

#[test]
fn stale_allow_fires_when_a_directive_suppresses_nothing() {
    // The unwrap the directive excused is gone; the comment must go
    // with it.
    let src = "// psb-lint: allow(unwrap): length checked above\n\
               let x = 1;\n";
    let f = lint_file("crates/mem/src/x.rs", src, false);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "stale-allow");
    assert_eq!(f[0].line, 1);
    assert!(f[0].msg.contains("suppresses nothing"), "{}", f[0].msg);
}

#[test]
fn stale_allow_fires_on_an_unused_file_directive() {
    let src = "// psb-lint: allow-file(addr-arith): home of address math\n\
               let x = 1;\n";
    let f = lint_file("crates/common/src/other.rs", src, false);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "stale-allow");
}

#[test]
fn used_directives_are_not_stale() {
    let src = "// psb-lint: allow(unwrap): length checked above\n\
               let x = opt.unwrap();\n";
    assert!(lint_file("crates/mem/src/x.rs", src, false).is_empty());
    // A file-level directive used once anywhere is not stale.
    let file_src = "// psb-lint: allow-file(unwrap): fixture\n\
                    fn a(o: Option<u32>) -> u32 { o.unwrap() }\n\
                    fn b(o: Option<u32>) -> u32 { o.unwrap() }\n";
    assert!(lint_file("crates/mem/src/x.rs", file_src, false).is_empty());
}

#[test]
fn unknown_rule_and_malformed_directives_are_flagged() {
    let unknown = "// psb-lint: allow(no-such-rule): typo\n";
    let f = lint_file("crates/mem/src/x.rs", unknown, false);
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].msg.contains("unknown rule"), "{}", f[0].msg);

    let malformed = "// psb-lint: alow(unwrap)\n";
    let f = lint_file("crates/mem/src/x.rs", malformed, false);
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].msg.contains("malformed"), "{}", f[0].msg);
}

#[test]
fn prose_mentions_strings_and_test_regions_are_not_directives() {
    // Mid-comment prose about the syntax is not a directive.
    let prose = "// suppress with psb-lint: allow(unwrap) if justified\n";
    assert!(lint_file("crates/mem/src/x.rs", prose, false).is_empty());
    // Directive text inside a string literal is not a comment.
    let in_str = "let s = \"// psb-lint: allow(unwrap)\";\n";
    assert!(lint_file("crates/workloads/src/x.rs", in_str, false).is_empty());
    // Directives in test code are inert, never stale.
    let in_test = "#[cfg(test)]\nmod tests {\n    \
                   // psb-lint: allow(unwrap): test-only\n    \
                   fn t() { Some(1).unwrap(); }\n}\n";
    assert!(lint_file("crates/mem/src/x.rs", in_test, false).is_empty());
}

#[test]
fn doc_comment_directives_work() {
    let src = "/// psb-lint: allow(unwrap): doc-comment directive\n\
               pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    assert!(lint_file("crates/mem/src/x.rs", src, false).is_empty());
}

// -- region tracking --------------------------------------------------

#[test]
fn code_after_test_module_is_linted_again() {
    let src = "#[cfg(test)]\n\
               mod tests {\n\
                   fn t() { Some(1).unwrap(); }\n\
               }\n\
               pub fn hot(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let f = lint_unwrap("crates/mem/src/x.rs", src);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].line, 6);
}

// -- lexer-derived classification -------------------------------------

#[test]
fn classify_collapses_strings_and_drops_comments() {
    let lines =
        classify("let s = \"HashMap here\"; // HashMap in prose\nlet m = HashMap::new();\n");
    assert!(!lines[0].code.contains("HashMap"), "{:?}", lines[0].code);
    assert_eq!(lines[0].comment.as_deref(), Some(" HashMap in prose"));
    assert!(lines[1].code.contains("HashMap"));
}

#[test]
fn classify_handles_multi_line_strings_and_block_comments() {
    let src = "let s = \"first\nInstant::now() inside\";\n/* Instant::now()\n   still comment */\nlet t = 1;\n";
    let lines = classify(src);
    assert!(lines.iter().all(|l| !l.code.contains("Instant")), "string/comment content leaked");
    assert!(lines[4].code.contains("let t"));
}
