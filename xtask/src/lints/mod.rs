//! Source-level lints on the shared [`crate::lexer`] token stream.
//!
//! The rules:
//!
//! * `addr-arith` — raw wrapping/`as u64` arithmetic on addresses; go
//!   through [`Addr::offset`]/[`Addr::delta`] so overflow semantics
//!   live in one place. The helpers' own home,
//!   `crates/common/src/addr.rs`, opts out with a file-level allow —
//!   an in-source directive like every other exemption, not a path
//!   list buried in this file.
//! * `unwrap` — `.unwrap()` is forbidden in non-test code of the
//!   hot-path crates (`mem`, `core`, `cpu`); `.expect(...)` is allowed
//!   only when justified by an invariant comment (the word "invariant"
//!   on the line, in the message, or in the two preceding lines).
//! * `hashmap-report` — `HashMap` in `stats.rs`/`report.rs` files
//!   feeds figure output in nondeterministic iteration order; use
//!   `BTreeMap` or sort before emitting.
//! * `missing-docs` — in crates that declare `#![warn(missing_docs)]`,
//!   every `pub` item needs a doc comment even when the toolchain's
//!   own `missing_docs` pass is unavailable offline.
//! * `determinism` — `Instant::now`/`SystemTime` in simulation-result
//!   crates: host wall-clock must never reach a result artifact, which
//!   has to be byte-identical across `--threads` counts.
//! * `sync-shims` — raw `std::sync`/`std::thread` in the model-checked
//!   crates (`sim`, `workloads`); concurrency there goes through the
//!   `psb_model` shims so `cargo xtask model` explores the real code.
//!
//! The crate-layering pass lives in [`crate::layering`].
//!
//! Comment and string-literal content is excluded by lexing, not by
//! per-rule character walking: [`classify`] derives each line's code
//! and comment text from the same total token stream the mutation
//! engine and `cargo xtask analyze` use, and the `addr-arith` /
//! `unwrap` rules work on the [`crate::analyze::tokentree`] layer
//! directly. The pass bodies live in [`passes`], the suppression
//! machinery in [`directives`].
//!
//! ## Suppressions
//!
//! Any finding can be suppressed with a comment that *starts* with the
//! directive — on the offending line or the line above to excuse one
//! site, or anywhere in the file with the `-file` form to exempt the
//! whole file:
//!
//! ```text
//! // psb-lint: allow(unwrap): length checked two lines up
//! // psb-lint: allow-file(addr-arith): this module owns address math
//! ```
//!
//! Suppressions are themselves linted: a directive that suppresses
//! nothing (the code it excused is gone, or the rule name is unknown)
//! is a `stale-allow` finding, so allows cannot outlive their excuse.
//! Directives must open the comment; prose that merely *mentions* the
//! syntax, like this paragraph, is not a directive.

mod directives;
mod passes;
#[cfg(test)]
mod tests;

pub use directives::apply_suppressions;
pub use passes::{
    lint_addr_arith, lint_determinism, lint_hashmap_report, lint_missing_docs, lint_println,
    lint_sync_shims, lint_unwrap,
};

use crate::lexer::{self, Kind};
use std::fmt;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `"addr-arith"`.
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what to do instead.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Every rule a suppression directive may name.
pub const RULES: [&str; 7] = [
    "addr-arith",
    "unwrap",
    "hashmap-report",
    "println",
    "determinism",
    "sync-shims",
    "missing-docs",
];

/// Per-line context computed in one lexer pass over a file.
pub(super) struct LineInfo {
    /// The line's code content: string-literal bodies collapsed to `""`,
    /// comments and char literals dropped, spacing preserved.
    pub(super) code: String,
    /// The raw line (for invariant-comment and doc scanning).
    pub(super) raw: String,
    /// The text of the line's `//` comment (doc markers included), if any.
    pub(super) comment: Option<String>,
    /// Inside a `#[cfg(test)]` module (or other test-only region).
    pub(super) in_test: bool,
    /// The line is entirely a comment (`//`, `///`, `//!`), an
    /// attribute, or blank.
    pub(super) comment_only: bool,
}

/// Annotate every line of a file with code, comment, and test-region
/// context, derived from the shared lexer's total token stream — one
/// tokenizer for the whole workspace instead of per-lint string
/// walking. Test regions are `#[cfg(test)]`-attributed items: we track
/// the brace depth where the region starts and leave it when the
/// braces balance.
pub(super) fn classify(source: &str) -> Vec<LineInfo> {
    let mut out: Vec<LineInfo> = source
        .lines()
        .map(|raw| {
            let t = raw.trim_start();
            let comment_only =
                t.is_empty() || t.starts_with("//") || t.starts_with("#!") || t.starts_with("#[");
            LineInfo {
                code: String::new(),
                raw: raw.to_string(),
                comment: None,
                in_test: false,
                comment_only,
            }
        })
        .collect();

    // Distribute token text over the lines. Tokens tile the source, so
    // counting newlines in every token's text tracks the line exactly;
    // whitespace is kept (split at newlines) so spacing-sensitive
    // patterns still see it, string bodies collapse to `""`, and char
    // literals and comments vanish from the code view.
    let mut line = 0usize;
    for tok in lexer::lex(source) {
        let text = tok.text(source);
        match tok.kind {
            Kind::Whitespace => {
                for (k, seg) in text.split('\n').enumerate() {
                    if let Some(li) = out.get_mut(line + k) {
                        if !seg.is_empty() {
                            li.code.push_str(seg);
                        }
                    }
                }
            }
            Kind::LineComment => {
                if let Some(li) = out.get_mut(line) {
                    if li.comment.is_none() {
                        li.comment = Some(text[2..].to_string());
                    }
                }
            }
            Kind::BlockComment | Kind::Char => {}
            Kind::Str | Kind::RawStr => {
                if let Some(li) = out.get_mut(line) {
                    li.code.push_str("\"\"");
                }
            }
            _ => {
                if let Some(li) = out.get_mut(line) {
                    li.code.push_str(text);
                }
            }
        }
        line += text.matches('\n').count();
    }

    // Test-region pass over the classified lines.
    let mut depth: i64 = 0;
    // Depth at which the current #[cfg(test)] region opened, if any.
    let mut test_depth: Option<i64> = None;
    // Saw #[cfg(test)] and waiting for the region's opening brace.
    let mut pending_test_attr = false;
    for li in &mut out {
        if li.comment_only {
            li.code.clear();
        }
        let trimmed = li.raw.trim_start();
        if trimmed.starts_with("#[cfg(test)") || trimmed.starts_with("#[test]") {
            pending_test_attr = true;
        }
        let opens = li.code.matches('{').count() as i64;
        let closes = li.code.matches('}').count() as i64;
        if pending_test_attr && opens > 0 && test_depth.is_none() {
            test_depth = Some(depth);
            pending_test_attr = false;
        }
        depth += opens - closes;
        li.in_test = test_depth.is_some();
        if let Some(td) = test_depth {
            if depth <= td {
                test_depth = None;
            }
        }
    }
    out
}

/// Runs every source rule on one file and applies the suppression pass.
/// `check_docs` enables `missing-docs` (crates that opted in via
/// `#![warn(missing_docs)]`).
pub fn lint_file(rel_path: &str, source: &str, check_docs: bool) -> Vec<Finding> {
    let mut raw = Vec::new();
    raw.extend(lint_addr_arith(rel_path, source));
    raw.extend(lint_unwrap(rel_path, source));
    raw.extend(lint_hashmap_report(rel_path, source));
    raw.extend(lint_println(rel_path, source));
    raw.extend(lint_determinism(rel_path, source));
    raw.extend(lint_sync_shims(rel_path, source));
    if check_docs {
        raw.extend(lint_missing_docs(rel_path, source));
    }
    apply_suppressions(rel_path, source, raw)
}

/// Whether a crate's `lib.rs`/`main.rs` opts into `missing_docs`.
pub fn wants_missing_docs(lib_source: &str) -> bool {
    lib_source.contains("#![warn(missing_docs)]") || lib_source.contains("#![deny(missing_docs)]")
}
