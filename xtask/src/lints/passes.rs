//! The lint rule bodies.
//!
//! `addr-arith` and `unwrap` run directly on the
//! [`crate::analyze::tokentree`] significant-token stream (the same
//! layer the semantic analysis passes use), so a string literal or a
//! comment can never trigger them. The remaining rules are
//! line-oriented pattern matches over the lexer-derived code view
//! produced by [`classify`].

use super::{classify, Finding};
use crate::analyze::tokentree::Tree;
use crate::lexer::Kind;
use std::path::Path;

/// Per-line evidence collected by the `addr-arith` token scan.
#[derive(Default)]
struct AddrLine {
    /// The line talks about an address: an identifier containing
    /// `addr`, a standalone `pc`, or a `.raw()` accessor.
    mentions: bool,
    /// A `wrapping_add(`/`wrapping_sub(` call.
    wrapping: bool,
    /// An `as u64` cast.
    cast: bool,
    /// A binary `+` or `-` (previous token ends a value).
    arith: bool,
}

/// Identifiers after which a `+`/`-` is a unary sign, not arithmetic.
const UNARY_CONTEXT: [&str; 8] =
    ["return", "if", "else", "match", "in", "break", "continue", "while"];

/// Rule `addr-arith`: wrapping or raw-cast arithmetic on addresses.
/// The sanctioned home of that arithmetic, `common/src/addr.rs`, is
/// not special-cased here — it carries a file-level
/// `psb-lint: allow-file(addr-arith)` directive like any other
/// exemption.
pub fn lint_addr_arith(rel_path: &str, source: &str) -> Vec<Finding> {
    let tree = Tree::parse(source);
    let mut lines: std::collections::BTreeMap<usize, AddrLine> = std::collections::BTreeMap::new();
    for (i, t) in tree.toks.iter().enumerate() {
        if t.in_test {
            continue;
        }
        match t.kind {
            Kind::Ident => {
                let name = tree.text(i);
                let st = lines.entry(t.line).or_default();
                if name.to_ascii_lowercase().contains("addr") || name.eq_ignore_ascii_case("pc") {
                    st.mentions = true;
                }
                let called = i + 1 < tree.toks.len() && tree.is_punct(i + 1, "(");
                if called && matches!(name, "wrapping_add" | "wrapping_sub") {
                    st.wrapping = true;
                }
                if called && name == "raw" && i >= 1 && tree.is_punct(i - 1, ".") {
                    st.mentions = true;
                }
                if name == "as" && i + 1 < tree.toks.len() && tree.is_ident(i + 1, "u64") {
                    st.cast = true;
                }
            }
            Kind::Punct if matches!(tree.text(i), "+" | "-") && i >= 1 => {
                let binary = match tree.toks[i - 1].kind {
                    Kind::Ident => !UNARY_CONTEXT.contains(&tree.text(i - 1)),
                    Kind::Number => true,
                    Kind::Punct => matches!(tree.text(i - 1), ")" | "]" | "?"),
                    _ => false,
                };
                if binary {
                    lines.entry(t.line).or_default().arith = true;
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    for (line, st) in lines {
        if st.mentions && (st.wrapping || (st.cast && st.arith)) {
            out.push(Finding {
                rule: "addr-arith",
                file: rel_path.to_string(),
                line,
                msg: "raw wrapping/cast arithmetic on an address; use Addr::offset \
                      / Addr::delta so overflow semantics live in addr.rs"
                    .to_string(),
            });
        }
    }
    out
}

/// Crates whose non-test code may not `.unwrap()` and must justify
/// `.expect(...)` with an invariant comment.
pub const HOT_PATH_CRATES: [&str; 3] = ["crates/mem/", "crates/core/", "crates/cpu/"];

/// Rule `unwrap`: panics in hot-path non-test code.
pub fn lint_unwrap(rel_path: &str, source: &str) -> Vec<Finding> {
    if !HOT_PATH_CRATES.iter().any(|c| rel_path.starts_with(c)) {
        return Vec::new();
    }
    let tree = Tree::parse(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();
    for (i, t) in tree.toks.iter().enumerate() {
        if t.in_test || t.kind != Kind::Ident {
            continue;
        }
        let is_method_call = i >= 1
            && tree.is_punct(i - 1, ".")
            && i + 1 < tree.toks.len()
            && tree.is_punct(i + 1, "(");
        if !is_method_call {
            continue;
        }
        match tree.text(i) {
            "unwrap" => out.push(Finding {
                rule: "unwrap",
                file: rel_path.to_string(),
                line: t.line,
                msg: ".unwrap() in hot-path non-test code; return a typed error or \
                      use .expect() with an invariant comment"
                    .to_string(),
            }),
            "expect" => {
                // Justified when an invariant comment appears nearby or
                // the message itself names the invariant; the raw lines
                // keep both the comments and the string literal.
                let idx = t.line - 1; // 1-based line -> raw_lines index
                let justified = raw_lines[idx.saturating_sub(2)..=idx]
                    .iter()
                    .any(|l| l.to_ascii_lowercase().contains("invariant"));
                if !justified {
                    out.push(Finding {
                        rule: "unwrap",
                        file: rel_path.to_string(),
                        line: t.line,
                        msg: ".expect() without an invariant justification; say why the \
                              invariant holds in the message or a nearby comment"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
    out
}

/// Rule `hashmap-report`: nondeterministic iteration feeding figures.
pub fn lint_hashmap_report(rel_path: &str, source: &str) -> Vec<Finding> {
    let name = Path::new(rel_path).file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name != "stats.rs" && name != "report.rs" {
        return Vec::new();
    }
    let lines = classify(source);
    let mut out = Vec::new();
    for (i, li) in lines.iter().enumerate() {
        if li.in_test || li.comment_only {
            continue;
        }
        if li.code.contains("HashMap") {
            out.push(Finding {
                rule: "hashmap-report",
                file: rel_path.to_string(),
                line: i + 1,
                msg: "HashMap in stats/report code iterates in nondeterministic \
                      order; use BTreeMap or sort before emitting"
                    .to_string(),
            });
        }
    }
    out
}

/// Rule `println`: console output from library crate code. All
/// human-readable output belongs in the binaries (`src/bin`, the bench
/// `benches/` targets, xtask) or behind the report/obs layer, so
/// figure scripts never have to scrape stray prints out of stdout.
pub fn lint_println(rel_path: &str, source: &str) -> Vec<Finding> {
    let in_library = rel_path.starts_with("crates/")
        && rel_path.contains("/src/")
        && !rel_path.contains("/src/bin/");
    if !in_library {
        return Vec::new();
    }
    let lines = classify(source);
    let mut out = Vec::new();
    for (i, li) in lines.iter().enumerate() {
        if li.in_test || li.comment_only {
            continue;
        }
        if ["println!", "print!", "eprintln!", "eprint!"].iter().any(|m| li.code.contains(m)) {
            out.push(Finding {
                rule: "println",
                file: rel_path.to_string(),
                line: i + 1,
                msg: "console output in library code; route through the report/obs \
                      layer (or move it into a binary)"
                    .to_string(),
            });
        }
    }
    out
}

/// Crates whose library code feeds simulation results and must stay
/// bit-reproducible: no host wall-clock may flow into anything a result
/// artifact could carry.
pub const DETERMINISTIC_CRATES: [&str; 5] =
    ["crates/sim/", "crates/core/", "crates/mem/", "crates/cpu/", "crates/workloads/"];

/// Rule `determinism`: host time sources in simulation-result crates.
///
/// `Instant::now()` / `SystemTime` readings differ run to run, so a
/// value derived from one that leaks into a result path breaks the
/// sweep's byte-identical-across-`--threads` contract. Timing that is
/// *presentation only* (the sweep coordinator's progress/wall-clock
/// lines, which are kept out of the artifact by construction) carries a
/// `psb-lint: allow(determinism)` comment stating exactly that.
pub fn lint_determinism(rel_path: &str, source: &str) -> Vec<Finding> {
    if !DETERMINISTIC_CRATES.iter().any(|c| rel_path.starts_with(c)) {
        return Vec::new();
    }
    let lines = classify(source);
    let mut out = Vec::new();
    for (i, li) in lines.iter().enumerate() {
        if li.in_test || li.comment_only {
            continue;
        }
        let wall_clock = li.code.contains("Instant::now")
            || li.code.contains("SystemTime")
            || li.code.contains("UNIX_EPOCH");
        if wall_clock {
            out.push(Finding {
                rule: "determinism",
                file: rel_path.to_string(),
                line: i + 1,
                msg: "host wall-clock in a simulation-result crate; results must be \
                      bit-reproducible — derive times from simulated cycles, or mark \
                      presentation-only timing with psb-lint: allow(determinism)"
                    .to_string(),
            });
        }
    }
    out
}

/// Crates whose concurrency runs under the model checker: every
/// synchronization primitive must come from the `psb-model` shims so
/// `cargo xtask model` exercises the *same* code paths production runs.
pub const MODEL_CHECKED_CRATES: [&str; 3] = ["crates/serve/", "crates/sim/", "crates/workloads/"];

/// `std::sync`/`std::thread` items that have a `psb_model` shim and are
/// therefore banned in model-checked crates. `Arc` is exempt: it is pure
/// reference counting with no blocking or ordering decisions to explore.
const SHIMMED_SYNC: [&str; 10] = [
    "Mutex", "RwLock", "OnceLock", "Once", "Condvar", "Barrier", "mpsc", "atomic", "Atomic",
    "LazyLock",
];

/// Rule `sync-shims`: raw std synchronization in model-checked crates.
pub fn lint_sync_shims(rel_path: &str, source: &str) -> Vec<Finding> {
    if !MODEL_CHECKED_CRATES.iter().any(|c| rel_path.starts_with(c)) {
        return Vec::new();
    }
    let lines = classify(source);
    let mut out = Vec::new();
    for (i, li) in lines.iter().enumerate() {
        if li.in_test || li.comment_only {
            continue;
        }
        let raw_sync =
            li.code.contains("std::sync") && SHIMMED_SYNC.iter().any(|t| li.code.contains(t));
        let raw_thread = li.code.contains("std::thread");
        if raw_sync || raw_thread {
            out.push(Finding {
                rule: "sync-shims",
                file: rel_path.to_string(),
                line: i + 1,
                msg: "raw std synchronization in a model-checked crate; use the \
                      psb_model::{sync, thread} shims so `cargo xtask model` explores \
                      this code (Arc is exempt)"
                    .to_string(),
            });
        }
    }
    out
}

const DOC_ITEMS: [&str; 8] =
    ["fn ", "struct ", "enum ", "trait ", "type ", "const ", "static ", "mod "];

/// Rule `missing-docs`: public items without a doc comment in crates
/// that opted into `#![warn(missing_docs)]`. `pub use` re-exports and
/// restricted visibility (`pub(crate)`, `pub(super)`) are exempt, as
/// is anything inside a test region.
pub fn lint_missing_docs(rel_path: &str, source: &str) -> Vec<Finding> {
    let lines = classify(source);
    let mut out = Vec::new();
    for (i, li) in lines.iter().enumerate() {
        if li.in_test {
            continue;
        }
        let trimmed = li.raw.trim_start();
        let Some(rest) = trimmed.strip_prefix("pub ") else {
            continue;
        };
        if !DOC_ITEMS.iter().any(|kw| rest.starts_with(kw)) && !rest.starts_with("unsafe fn ") {
            continue;
        }
        // Walk backwards over attributes to the nearest doc comment.
        let mut j = i;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let prev = lines[j].raw.trim_start();
            if prev.starts_with("#[") || prev.ends_with("]") && prev.starts_with("#") {
                continue;
            }
            documented = prev.starts_with("///") || prev.starts_with("#[doc");
            break;
        }
        if !documented {
            let item: String = rest.chars().take(40).collect();
            out.push(Finding {
                rule: "missing-docs",
                file: rel_path.to_string(),
                line: i + 1,
                msg: format!("public item `pub {item}…` has no doc comment"),
            });
        }
    }
    out
}
