//! Source-level lints, pure std, no syntax tree: line-oriented
//! heuristics tuned to this workspace's idiom.
//!
//! The rules:
//!
//! * `addr-arith` — raw wrapping/`as u64` arithmetic on addresses; go
//!   through [`Addr::offset`]/[`Addr::delta`] so overflow semantics
//!   live in one place. The helpers' own home,
//!   `crates/common/src/addr.rs`, opts out with a file-level allow —
//!   an in-source directive like every other exemption, not a path
//!   list buried in this file.
//! * `unwrap` — `.unwrap()` is forbidden in non-test code of the
//!   hot-path crates (`mem`, `core`, `cpu`); `.expect(...)` is allowed
//!   only when justified by an invariant comment (the word "invariant"
//!   on the line, in the message, or in the two preceding lines).
//! * `hashmap-report` — `HashMap` in `stats.rs`/`report.rs` files
//!   feeds figure output in nondeterministic iteration order; use
//!   `BTreeMap` or sort before emitting.
//! * `missing-docs` — in crates that declare `#![warn(missing_docs)]`,
//!   every `pub` item needs a doc comment even when the toolchain's
//!   own `missing_docs` pass is unavailable offline.
//! * `determinism` — `Instant::now`/`SystemTime` in simulation-result
//!   crates: host wall-clock must never reach a result artifact, which
//!   has to be byte-identical across `--threads` counts.
//! * `sync-shims` — raw `std::sync`/`std::thread` in the model-checked
//!   crates (`sim`, `workloads`); concurrency there goes through the
//!   `psb_model` shims so `cargo xtask model` explores the real code.
//!
//! The crate-layering pass lives in [`crate::layering`].
//!
//! ## Suppressions
//!
//! Any finding can be suppressed with a comment that *starts* with the
//! directive — on the offending line or the line above to excuse one
//! site, or anywhere in the file with the `-file` form to exempt the
//! whole file:
//!
//! ```text
//! // psb-lint: allow(unwrap): length checked two lines up
//! // psb-lint: allow-file(addr-arith): this module owns address math
//! ```
//!
//! Suppressions are themselves linted: a directive that suppresses
//! nothing (the code it excused is gone, or the rule name is unknown)
//! is a `stale-allow` finding, so allows cannot outlive their excuse.
//! Directives must open the comment; prose that merely *mentions* the
//! syntax, like this paragraph, is not a directive.

use std::fmt;
use std::path::Path;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `"addr-arith"`.
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong and what to do instead.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// Per-line context computed in one pass over a file.
struct LineInfo {
    /// The line with string literals blanked and `//` comments removed.
    code: String,
    /// The raw line (for allow-comment scanning).
    raw: String,
    /// Inside a `#[cfg(test)]` module (or other test-only region).
    in_test: bool,
    /// The line is entirely a comment (`//`, `///`, `//!`) or blank.
    comment_only: bool,
}

/// Strip string literals and trailing `//` comments from a code line so
/// pattern matches cannot fire inside literals or prose. Heuristic: no
/// multi-line string tracking (none of the lint patterns appear in the
/// workspace's few multi-line literals).
fn strip_line(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    let mut in_char = false;
    while let Some(c) = chars.next() {
        if in_str {
            if c == '\\' {
                chars.next();
            } else if c == '"' {
                in_str = false;
                out.push('"');
            }
            continue;
        }
        if in_char {
            if c == '\\' {
                chars.next();
            } else if c == '\'' {
                in_char = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            // A lifetime ('a) is not a char literal; only treat a quote
            // as opening a char literal when it closes within 2 chars.
            '\'' => {
                let rest: String = chars.clone().take(3).collect();
                if rest.starts_with('\\') || rest.chars().nth(1) == Some('\'') {
                    in_char = true;
                }
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Annotate every line of a file with test-region and comment context.
/// Test regions are `#[cfg(test)]`-attributed items: we track the brace
/// depth where the region starts and leave it when the braces balance.
fn classify(source: &str) -> Vec<LineInfo> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    // Depth at which the current #[cfg(test)] region opened, if any.
    let mut test_depth: Option<i64> = None;
    // Saw #[cfg(test)] and waiting for the region's opening brace.
    let mut pending_test_attr = false;
    for raw in source.lines() {
        let trimmed = raw.trim_start();
        let comment_only = trimmed.is_empty()
            || trimmed.starts_with("//")
            || trimmed.starts_with("#!")
            || trimmed.starts_with("#[");
        let code = if comment_only { String::new() } else { strip_line(raw) };
        if trimmed.starts_with("#[cfg(test)") || trimmed.starts_with("#[test]") {
            pending_test_attr = true;
        }
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        let entering_test = pending_test_attr && opens > 0 && test_depth.is_none();
        if entering_test {
            test_depth = Some(depth);
            pending_test_attr = false;
        }
        depth += opens - closes;
        let in_test = test_depth.is_some();
        out.push(LineInfo { code, raw: raw.to_string(), in_test, comment_only });
        if let Some(td) = test_depth {
            if depth <= td {
                test_depth = None;
            }
        }
    }
    out
}

/// Every rule a suppression directive may name.
pub const RULES: [&str; 7] = [
    "addr-arith",
    "unwrap",
    "hashmap-report",
    "println",
    "determinism",
    "sync-shims",
    "missing-docs",
];

/// One parsed `psb-lint:` directive.
struct Suppression {
    /// The rule it names.
    rule: String,
    /// 1-based line of the directive comment.
    line: usize,
    /// `allow-file` form: covers the whole file.
    file_level: bool,
    /// Whether any finding was actually suppressed by it.
    used: bool,
}

/// The comment part of a line — the text after a `//` that sits outside
/// string and char literals — if any. Doc comments count (the extra
/// `/` / `!` markers are stripped by the directive parser).
fn comment_text(line: &str) -> Option<&str> {
    let mut in_str = false;
    let mut in_char = false;
    let mut chars = line.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if in_str {
            if c == '\\' {
                chars.next();
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        if in_char {
            if c == '\\' {
                chars.next();
            } else if c == '\'' {
                in_char = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '\'' => {
                let rest: Vec<char> = line[i + 1..].chars().take(3).collect();
                if rest.first() == Some(&'\\') || rest.get(1) == Some(&'\'') {
                    in_char = true;
                }
            }
            '/' if matches!(chars.peek(), Some((_, '/'))) => return Some(&line[i + 2..]),
            _ => {}
        }
    }
    None
}

/// Scans a file for `psb-lint:` directives. Returns the suppressions
/// plus findings for directives that cannot possibly work (malformed,
/// or naming an unknown rule). Directives inside test regions are
/// ignored entirely: test code is not linted, so they are inert.
fn scan_directives(rel_path: &str, lines: &[LineInfo]) -> (Vec<Suppression>, Vec<Finding>) {
    let mut sups = Vec::new();
    let mut bad = Vec::new();
    for (i, li) in lines.iter().enumerate() {
        if li.in_test {
            continue;
        }
        let Some(text) = comment_text(&li.raw) else {
            continue;
        };
        // Strip doc-comment markers and indentation; a directive must
        // open the comment (prose that mentions the syntax mid-sentence
        // is not a directive).
        let text = text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = text.strip_prefix("psb-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (file_level, rest) = match rest.strip_prefix("allow-file(") {
            Some(r) => (true, r),
            None => match rest.strip_prefix("allow(") {
                Some(r) => (false, r),
                None => {
                    bad.push(Finding {
                        rule: "stale-allow",
                        file: rel_path.to_string(),
                        line: i + 1,
                        msg: "malformed psb-lint directive; expected \
                              `psb-lint: allow(<rule>)` or `psb-lint: allow-file(<rule>)`"
                            .to_string(),
                    });
                    continue;
                }
            },
        };
        let Some(rule) = rest.split(')').next().filter(|_| rest.contains(')')) else {
            bad.push(Finding {
                rule: "stale-allow",
                file: rel_path.to_string(),
                line: i + 1,
                msg: "malformed psb-lint directive: missing `)`".to_string(),
            });
            continue;
        };
        if !RULES.contains(&rule) {
            bad.push(Finding {
                rule: "stale-allow",
                file: rel_path.to_string(),
                line: i + 1,
                msg: format!(
                    "psb-lint directive names unknown rule {rule:?} (known: {})",
                    RULES.join(", "),
                ),
            });
            continue;
        }
        sups.push(Suppression { rule: rule.to_string(), line: i + 1, file_level, used: false });
    }
    (sups, bad)
}

/// Applies the file's suppression directives to raw findings: covered
/// findings are dropped, and every directive that covered nothing
/// becomes a `stale-allow` finding — an allow must never outlive the
/// code it excuses.
pub fn apply_suppressions(rel_path: &str, source: &str, raw: Vec<Finding>) -> Vec<Finding> {
    let lines = classify(source);
    let (mut sups, mut out) = scan_directives(rel_path, &lines);
    for f in raw {
        let mut covered = false;
        for s in &mut sups {
            if s.rule == f.rule && (s.file_level || f.line == s.line || f.line == s.line + 1) {
                s.used = true;
                covered = true;
            }
        }
        if !covered {
            out.push(f);
        }
    }
    for s in &sups {
        if !s.used {
            let form = if s.file_level { "allow-file" } else { "allow" };
            out.push(Finding {
                rule: "stale-allow",
                file: rel_path.to_string(),
                line: s.line,
                msg: format!(
                    "psb-lint: {form}({}) suppresses nothing — the code it excused \
                     is gone; remove the comment",
                    s.rule,
                ),
            });
        }
    }
    out.sort_by_key(|f| f.line);
    out
}

/// Runs every source rule on one file and applies the suppression pass.
/// `check_docs` enables `missing-docs` (crates that opted in via
/// `#![warn(missing_docs)]`).
pub fn lint_file(rel_path: &str, source: &str, check_docs: bool) -> Vec<Finding> {
    let mut raw = Vec::new();
    raw.extend(lint_addr_arith(rel_path, source));
    raw.extend(lint_unwrap(rel_path, source));
    raw.extend(lint_hashmap_report(rel_path, source));
    raw.extend(lint_println(rel_path, source));
    raw.extend(lint_determinism(rel_path, source));
    raw.extend(lint_sync_shims(rel_path, source));
    if check_docs {
        raw.extend(lint_missing_docs(rel_path, source));
    }
    apply_suppressions(rel_path, source, raw)
}

fn word_boundary_contains(haystack: &str, needle: &str) -> bool {
    let bytes = haystack.as_bytes();
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let at = start + pos;
        let before_ok =
            at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
        let after = at + needle.len();
        let after_ok =
            after >= bytes.len() || !(bytes[after].is_ascii_alphanumeric() || bytes[after] == b'_');
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// Does this code line talk about an address? Matches the workspace's
/// vocabulary: `addr`/`Addr` anywhere in an identifier, `pc` as a
/// standalone word, or a `.raw()` accessor.
fn mentions_address(code: &str) -> bool {
    let lower = code.to_ascii_lowercase();
    lower.contains("addr") || word_boundary_contains(&lower, "pc") || code.contains(".raw()")
}

/// Rule `addr-arith`: wrapping or raw-cast arithmetic on addresses.
/// The sanctioned home of that arithmetic, `common/src/addr.rs`, is
/// not special-cased here — it carries a file-level
/// `psb-lint: allow-file(addr-arith)` directive like any other
/// exemption.
pub fn lint_addr_arith(rel_path: &str, source: &str) -> Vec<Finding> {
    let lines = classify(source);
    let mut out = Vec::new();
    for (i, li) in lines.iter().enumerate() {
        if li.in_test || li.comment_only || !mentions_address(&li.code) {
            continue;
        }
        let wrapping = li.code.contains("wrapping_add(") || li.code.contains("wrapping_sub(");
        let raw_cast_arith =
            li.code.contains(" as u64") && (li.code.contains(" + ") || li.code.contains(" - "));
        if wrapping || raw_cast_arith {
            out.push(Finding {
                rule: "addr-arith",
                file: rel_path.to_string(),
                line: i + 1,
                msg: "raw wrapping/cast arithmetic on an address; use Addr::offset \
                      / Addr::delta so overflow semantics live in addr.rs"
                    .to_string(),
            });
        }
    }
    out
}

/// Crates whose non-test code may not `.unwrap()` and must justify
/// `.expect(...)` with an invariant comment.
pub const HOT_PATH_CRATES: [&str; 3] = ["crates/mem/", "crates/core/", "crates/cpu/"];

/// Rule `unwrap`: panics in hot-path non-test code.
pub fn lint_unwrap(rel_path: &str, source: &str) -> Vec<Finding> {
    if !HOT_PATH_CRATES.iter().any(|c| rel_path.starts_with(c)) {
        return Vec::new();
    }
    let lines = classify(source);
    let mut out = Vec::new();
    for (i, li) in lines.iter().enumerate() {
        if li.in_test || li.comment_only {
            continue;
        }
        if li.code.contains(".unwrap()") {
            out.push(Finding {
                rule: "unwrap",
                file: rel_path.to_string(),
                line: i + 1,
                msg: ".unwrap() in hot-path non-test code; return a typed error or \
                      use .expect() with an invariant comment"
                    .to_string(),
            });
        }
        if li.code.contains(".expect(") {
            // Justified when an invariant comment appears nearby or the
            // message itself names the invariant. The raw line keeps the
            // string literal, so check it rather than the stripped code.
            let lo = i.saturating_sub(2);
            let justified =
                lines[lo..=i].iter().any(|l| l.raw.to_ascii_lowercase().contains("invariant"));
            if !justified {
                out.push(Finding {
                    rule: "unwrap",
                    file: rel_path.to_string(),
                    line: i + 1,
                    msg: ".expect() without an invariant justification; say why the \
                          invariant holds in the message or a nearby comment"
                        .to_string(),
                });
            }
        }
    }
    out
}

/// Rule `hashmap-report`: nondeterministic iteration feeding figures.
pub fn lint_hashmap_report(rel_path: &str, source: &str) -> Vec<Finding> {
    let name = Path::new(rel_path).file_name().and_then(|n| n.to_str()).unwrap_or("");
    if name != "stats.rs" && name != "report.rs" {
        return Vec::new();
    }
    let lines = classify(source);
    let mut out = Vec::new();
    for (i, li) in lines.iter().enumerate() {
        if li.in_test || li.comment_only {
            continue;
        }
        if li.code.contains("HashMap") {
            out.push(Finding {
                rule: "hashmap-report",
                file: rel_path.to_string(),
                line: i + 1,
                msg: "HashMap in stats/report code iterates in nondeterministic \
                      order; use BTreeMap or sort before emitting"
                    .to_string(),
            });
        }
    }
    out
}

/// Rule `println`: console output from library crate code. All
/// human-readable output belongs in the binaries (`src/bin`, the bench
/// `benches/` targets, xtask) or behind the report/obs layer, so
/// figure scripts never have to scrape stray prints out of stdout.
pub fn lint_println(rel_path: &str, source: &str) -> Vec<Finding> {
    let in_library = rel_path.starts_with("crates/")
        && rel_path.contains("/src/")
        && !rel_path.contains("/src/bin/");
    if !in_library {
        return Vec::new();
    }
    let lines = classify(source);
    let mut out = Vec::new();
    for (i, li) in lines.iter().enumerate() {
        if li.in_test || li.comment_only {
            continue;
        }
        if ["println!", "print!", "eprintln!", "eprint!"].iter().any(|m| li.code.contains(m)) {
            out.push(Finding {
                rule: "println",
                file: rel_path.to_string(),
                line: i + 1,
                msg: "console output in library code; route through the report/obs \
                      layer (or move it into a binary)"
                    .to_string(),
            });
        }
    }
    out
}

/// Crates whose library code feeds simulation results and must stay
/// bit-reproducible: no host wall-clock may flow into anything a result
/// artifact could carry.
pub const DETERMINISTIC_CRATES: [&str; 5] =
    ["crates/sim/", "crates/core/", "crates/mem/", "crates/cpu/", "crates/workloads/"];

/// Rule `determinism`: host time sources in simulation-result crates.
///
/// `Instant::now()` / `SystemTime` readings differ run to run, so a
/// value derived from one that leaks into a result path breaks the
/// sweep's byte-identical-across-`--threads` contract. Timing that is
/// *presentation only* (the sweep coordinator's progress/wall-clock
/// lines, which are kept out of the artifact by construction) carries a
/// `psb-lint: allow(determinism)` comment stating exactly that.
pub fn lint_determinism(rel_path: &str, source: &str) -> Vec<Finding> {
    if !DETERMINISTIC_CRATES.iter().any(|c| rel_path.starts_with(c)) {
        return Vec::new();
    }
    let lines = classify(source);
    let mut out = Vec::new();
    for (i, li) in lines.iter().enumerate() {
        if li.in_test || li.comment_only {
            continue;
        }
        let wall_clock = li.code.contains("Instant::now")
            || li.code.contains("SystemTime")
            || li.code.contains("UNIX_EPOCH");
        if wall_clock {
            out.push(Finding {
                rule: "determinism",
                file: rel_path.to_string(),
                line: i + 1,
                msg: "host wall-clock in a simulation-result crate; results must be \
                      bit-reproducible — derive times from simulated cycles, or mark \
                      presentation-only timing with psb-lint: allow(determinism)"
                    .to_string(),
            });
        }
    }
    out
}

/// Crates whose concurrency runs under the model checker: every
/// synchronization primitive must come from the `psb-model` shims so
/// `cargo xtask model` exercises the *same* code paths production runs.
pub const MODEL_CHECKED_CRATES: [&str; 3] = ["crates/serve/", "crates/sim/", "crates/workloads/"];

/// `std::sync`/`std::thread` items that have a `psb_model` shim and are
/// therefore banned in model-checked crates. `Arc` is exempt: it is pure
/// reference counting with no blocking or ordering decisions to explore.
const SHIMMED_SYNC: [&str; 10] = [
    "Mutex", "RwLock", "OnceLock", "Once", "Condvar", "Barrier", "mpsc", "atomic", "Atomic",
    "LazyLock",
];

/// Rule `sync-shims`: raw std synchronization in model-checked crates.
pub fn lint_sync_shims(rel_path: &str, source: &str) -> Vec<Finding> {
    if !MODEL_CHECKED_CRATES.iter().any(|c| rel_path.starts_with(c)) {
        return Vec::new();
    }
    let lines = classify(source);
    let mut out = Vec::new();
    for (i, li) in lines.iter().enumerate() {
        if li.in_test || li.comment_only {
            continue;
        }
        let raw_sync =
            li.code.contains("std::sync") && SHIMMED_SYNC.iter().any(|t| li.code.contains(t));
        let raw_thread = li.code.contains("std::thread");
        if raw_sync || raw_thread {
            out.push(Finding {
                rule: "sync-shims",
                file: rel_path.to_string(),
                line: i + 1,
                msg: "raw std synchronization in a model-checked crate; use the \
                      psb_model::{sync, thread} shims so `cargo xtask model` explores \
                      this code (Arc is exempt)"
                    .to_string(),
            });
        }
    }
    out
}

const DOC_ITEMS: [&str; 8] =
    ["fn ", "struct ", "enum ", "trait ", "type ", "const ", "static ", "mod "];

/// Rule `missing-docs`: public items without a doc comment in crates
/// that opted into `#![warn(missing_docs)]`. `pub use` re-exports and
/// restricted visibility (`pub(crate)`, `pub(super)`) are exempt, as
/// is anything inside a test region.
pub fn lint_missing_docs(rel_path: &str, source: &str) -> Vec<Finding> {
    let lines = classify(source);
    let mut out = Vec::new();
    for (i, li) in lines.iter().enumerate() {
        if li.in_test {
            continue;
        }
        let trimmed = li.raw.trim_start();
        let Some(rest) = trimmed.strip_prefix("pub ") else {
            continue;
        };
        if !DOC_ITEMS.iter().any(|kw| rest.starts_with(kw)) && !rest.starts_with("unsafe fn ") {
            continue;
        }
        // Walk backwards over attributes to the nearest doc comment.
        let mut j = i;
        let mut documented = false;
        while j > 0 {
            j -= 1;
            let prev = lines[j].raw.trim_start();
            if prev.starts_with("#[") || prev.ends_with("]") && prev.starts_with("#") {
                continue;
            }
            documented = prev.starts_with("///") || prev.starts_with("#[doc");
            break;
        }
        if !documented {
            let item: String = rest.chars().take(40).collect();
            out.push(Finding {
                rule: "missing-docs",
                file: rel_path.to_string(),
                line: i + 1,
                msg: format!("public item `pub {item}…` has no doc comment"),
            });
        }
    }
    out
}

/// Whether a crate's `lib.rs`/`main.rs` opts into `missing_docs`.
pub fn wants_missing_docs(lib_source: &str) -> bool {
    lib_source.contains("#![warn(missing_docs)]") || lib_source.contains("#![deny(missing_docs)]")
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- addr-arith -------------------------------------------------------

    #[test]
    fn addr_arith_fires_on_wrapping_pc_math() {
        let src = "fn f(pc: u64, prev_pc: u64) -> u64 {\n    pc.wrapping_sub(prev_pc)\n}\n";
        let f = lint_addr_arith("crates/workloads/src/serial.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn addr_arith_fires_on_raw_cast_sum() {
        let src = "let next = base_addr + delta as u64 + 4;\n";
        let f = lint_addr_arith("crates/core/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn addr_arith_exempted_by_file_directive_and_silent_on_non_address_math() {
        // addr.rs-style exemption: a file-level directive, not a path
        // list in this file.
        let addr_src = "// psb-lint: allow-file(addr-arith): home of address math\n\
                        fn offset(a: Addr, d: i64) -> Addr {\n    \
                        Addr(a.0.wrapping_add(d as u64))\n}\n";
        assert!(lint_file("crates/common/src/addr.rs", addr_src, false).is_empty());
        // Bit-mixing with no address vocabulary is fine.
        let rng_src = "z = z.wrapping_add(0x9e3779b97f4a7c15);\n";
        assert!(lint_addr_arith("crates/common/src/rng.rs", rng_src).is_empty());
    }

    #[test]
    fn addr_arith_respects_allow_comment() {
        let src = "// psb-lint: allow(addr-arith): hashing, not address math\n\
                   let h = pc.wrapping_add(seed);\n";
        assert!(lint_file("crates/cpu/src/x.rs", src, false).is_empty());
    }

    #[test]
    fn addr_arith_ignores_comments_and_strings() {
        let src = "// pc.wrapping_add(4) would be wrong\n\
                   let s = \"pc.wrapping_add(4)\";\n";
        assert!(lint_addr_arith("crates/cpu/src/x.rs", src).is_empty());
    }

    // -- unwrap -----------------------------------------------------------

    #[test]
    fn unwrap_fires_in_hot_path_non_test_code() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let f = lint_unwrap("crates/mem/src/mshr.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn unwrap_silent_outside_hot_path_crates() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_unwrap("crates/workloads/src/gen.rs", src).is_empty());
    }

    #[test]
    fn unwrap_silent_in_test_module() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { Some(1).unwrap(); }\n\
                   }\n";
        assert!(lint_unwrap("crates/mem/src/mshr.rs", src).is_empty());
    }

    #[test]
    fn expect_requires_invariant_justification() {
        let bare = "fn f(x: Option<u32>) -> u32 {\n    x.expect(\"present\")\n}\n";
        assert_eq!(lint_unwrap("crates/core/src/x.rs", bare).len(), 1);

        let justified = "fn f(x: Option<u32>) -> u32 {\n    \
                         // Invariant: caller checked is_some().\n    \
                         x.expect(\"checked by caller\")\n}\n";
        assert!(lint_unwrap("crates/core/src/x.rs", justified).is_empty());

        let in_message =
            "fn f(x: Option<u32>) -> u32 {\n    x.expect(\"invariant: caller checked\")\n}\n";
        assert!(lint_unwrap("crates/core/src/x.rs", in_message).is_empty());
    }

    // -- hashmap-report ---------------------------------------------------

    #[test]
    fn hashmap_fires_only_in_stats_or_report_files() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint_hashmap_report("crates/sim/src/stats.rs", src).len(), 1);
        assert_eq!(lint_hashmap_report("crates/sim/src/report.rs", src).len(), 1);
        assert!(lint_hashmap_report("crates/sim/src/memsys.rs", src).is_empty());
    }

    // -- println ----------------------------------------------------------

    #[test]
    fn println_fires_in_library_crate_code() {
        let src = "pub fn noisy() {\n    println!(\"hi\");\n}\n";
        let f = lint_println("crates/sim/src/memsys.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn println_silent_in_binaries_tests_and_comments() {
        let src = "pub fn noisy() { println!(\"hi\"); }\n";
        assert!(lint_println("src/bin/psbsim.rs", src).is_empty());
        assert!(lint_println("crates/sim/src/bin/tool.rs", src).is_empty());
        assert!(lint_println("xtask/src/main.rs", src).is_empty());

        let test_src = "#[cfg(test)]\nmod tests {\n    fn t() { println!(\"x\"); }\n}\n";
        assert!(lint_println("crates/sim/src/memsys.rs", test_src).is_empty());

        let doc_src = "//! println!(\"in a doc example\");\n";
        assert!(lint_println("crates/sim/src/lib.rs", doc_src).is_empty());
    }

    #[test]
    fn println_respects_allow_comment_above_or_on_the_line() {
        let above = "// psb-lint: allow(println): harness output\nprintln!(\"ok\");\n";
        assert!(lint_file("crates/bench/src/micro.rs", above, false).is_empty());
        let same_line = "println!(\"ok\"); // psb-lint: allow(println): harness output\n";
        assert!(lint_file("crates/bench/src/micro.rs", same_line, false).is_empty());
    }

    // -- determinism ------------------------------------------------------

    #[test]
    fn determinism_fires_on_wall_clock_in_result_crates() {
        let src = "let start = std::time::Instant::now();\n";
        assert_eq!(lint_determinism("crates/sim/src/runner.rs", src).len(), 1);
        let sys = "let stamp = SystemTime::now();\n";
        assert_eq!(lint_determinism("crates/core/src/x.rs", sys).len(), 1);
    }

    #[test]
    fn determinism_silent_outside_result_crates_tests_and_allows() {
        let src = "let start = std::time::Instant::now();\n";
        assert!(lint_determinism("crates/obs/src/trace.rs", src).is_empty());
        assert!(lint_determinism("src/bin/psbsweep.rs", src).is_empty());
        let allowed_src = "// psb-lint: allow(determinism): presentation only\n\
                           let start = std::time::Instant::now();\n";
        assert!(lint_file("crates/sim/src/sweep.rs", allowed_src, false).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    \
                        fn t() { let _ = std::time::Instant::now(); }\n}\n";
        assert!(lint_determinism("crates/sim/src/x.rs", test_src).is_empty());
    }

    // -- sync-shims -------------------------------------------------------

    #[test]
    fn sync_shims_fires_on_raw_std_primitives() {
        let m = "use std::sync::Mutex;\n";
        assert_eq!(lint_sync_shims("crates/sim/src/pool.rs", m).len(), 1);
        let grouped = "use std::sync::{Arc, OnceLock};\n";
        assert_eq!(lint_sync_shims("crates/workloads/src/cache.rs", grouped).len(), 1);
        let th = "std::thread::spawn(|| {});\n";
        assert_eq!(lint_sync_shims("crates/sim/src/sweep.rs", th).len(), 1);
    }

    #[test]
    fn sync_shims_exempts_arc_shims_tests_and_other_crates() {
        let arc = "use std::sync::Arc;\n";
        assert!(lint_sync_shims("crates/workloads/src/cache.rs", arc).is_empty());
        let shim = "use psb_model::sync::{mpsc, Mutex};\nuse psb_model::thread;\n";
        assert!(lint_sync_shims("crates/sim/src/pool.rs", shim).is_empty());
        let other = "use std::sync::Mutex;\n";
        assert!(lint_sync_shims("crates/mem/src/x.rs", other).is_empty());
        let test_src = "#[cfg(test)]\nmod tests {\n    \
                        fn t() { std::thread::spawn(|| {}); }\n}\n";
        assert!(lint_sync_shims("crates/sim/src/pool.rs", test_src).is_empty());
    }

    // -- missing-docs -----------------------------------------------------

    #[test]
    fn missing_docs_fires_on_undocumented_pub_item() {
        let src = "pub fn frob() {}\n";
        let f = lint_missing_docs("crates/common/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn missing_docs_accepts_doc_comment_above_attributes() {
        let src = "/// Frobnicates.\n#[inline]\npub fn frob() {}\n";
        assert!(lint_missing_docs("crates/common/src/x.rs", src).is_empty());
    }

    #[test]
    fn missing_docs_exempts_reexports_and_restricted_visibility() {
        let src = "pub use crate::foo::Bar;\npub(crate) fn helper() {}\n";
        assert!(lint_missing_docs("crates/common/src/x.rs", src).is_empty());
    }

    #[test]
    fn wants_missing_docs_detects_attribute() {
        assert!(wants_missing_docs("#![warn(missing_docs)]\n"));
        assert!(!wants_missing_docs("#![allow(dead_code)]\n"));
    }

    // -- stale-allow ------------------------------------------------------

    #[test]
    fn stale_allow_fires_when_a_directive_suppresses_nothing() {
        // The unwrap the directive excused is gone; the comment must go
        // with it.
        let src = "// psb-lint: allow(unwrap): length checked above\n\
                   let x = 1;\n";
        let f = lint_file("crates/mem/src/x.rs", src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "stale-allow");
        assert_eq!(f[0].line, 1);
        assert!(f[0].msg.contains("suppresses nothing"), "{}", f[0].msg);
    }

    #[test]
    fn stale_allow_fires_on_an_unused_file_directive() {
        let src = "// psb-lint: allow-file(addr-arith): home of address math\n\
                   let x = 1;\n";
        let f = lint_file("crates/common/src/other.rs", src, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "stale-allow");
    }

    #[test]
    fn used_directives_are_not_stale() {
        let src = "// psb-lint: allow(unwrap): length checked above\n\
                   let x = opt.unwrap();\n";
        assert!(lint_file("crates/mem/src/x.rs", src, false).is_empty());
        // A file-level directive used once anywhere is not stale.
        let file_src = "// psb-lint: allow-file(unwrap): fixture\n\
                        fn a(o: Option<u32>) -> u32 { o.unwrap() }\n\
                        fn b(o: Option<u32>) -> u32 { o.unwrap() }\n";
        assert!(lint_file("crates/mem/src/x.rs", file_src, false).is_empty());
    }

    #[test]
    fn unknown_rule_and_malformed_directives_are_flagged() {
        let unknown = "// psb-lint: allow(no-such-rule): typo\n";
        let f = lint_file("crates/mem/src/x.rs", unknown, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("unknown rule"), "{}", f[0].msg);

        let malformed = "// psb-lint: alow(unwrap)\n";
        let f = lint_file("crates/mem/src/x.rs", malformed, false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].msg.contains("malformed"), "{}", f[0].msg);
    }

    #[test]
    fn prose_mentions_strings_and_test_regions_are_not_directives() {
        // Mid-comment prose about the syntax is not a directive.
        let prose = "// suppress with psb-lint: allow(unwrap) if justified\n";
        assert!(lint_file("crates/mem/src/x.rs", prose, false).is_empty());
        // Directive text inside a string literal is not a comment.
        let in_str = "let s = \"// psb-lint: allow(unwrap)\";\n";
        assert!(lint_file("crates/workloads/src/x.rs", in_str, false).is_empty());
        // Directives in test code are inert, never stale.
        let in_test = "#[cfg(test)]\nmod tests {\n    \
                       // psb-lint: allow(unwrap): test-only\n    \
                       fn t() { Some(1).unwrap(); }\n}\n";
        assert!(lint_file("crates/mem/src/x.rs", in_test, false).is_empty());
    }

    #[test]
    fn doc_comment_directives_work() {
        let src = "/// psb-lint: allow(unwrap): doc-comment directive\n\
                   pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
        assert!(lint_file("crates/mem/src/x.rs", src, false).is_empty());
    }

    // -- region tracking --------------------------------------------------

    #[test]
    fn code_after_test_module_is_linted_again() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { Some(1).unwrap(); }\n\
                   }\n\
                   pub fn hot(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let f = lint_unwrap("crates/mem/src/x.rs", src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }
}
