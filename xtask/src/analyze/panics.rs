//! Pass 1: hot-path panic-freedom.
//!
//! Builds the conservative call graph over the hot-path crates
//! (`common`, `core`, `mem`, `sim`), roots it at every registry
//! engine's `Prefetcher` entry points plus the `SimMemory`/`MemSystem`
//! entry points, and flags every potentially-panicking construct in a
//! reachable function:
//!
//! * `.unwrap()` / `.expect(..)` (kinds `unwrap`, `expect`)
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!` (kind
//!   `panic`)
//! * slice/array index expressions, which can be out of bounds (kind
//!   `index`)
//! * integer `/` and `%` with a non-literal divisor, which can divide
//!   by zero (kind `div`)
//!
//! Findings are grouped per (file, function, kind) — the granularity of
//! a `PANICS.toml` baseline entry — so line churn inside a function
//! never invalidates its justification, while a *new* kind of panic
//! sneaking into a clean function always trips the gate.

use super::callgraph::CallGraph;
use super::tokentree::CallKind;
use super::{Finding, Workspace};
use std::collections::BTreeMap;

/// The crates whose non-test library code forms the panic universe.
pub const PANIC_CRATES: &[&str] = &["common", "core", "mem", "sim"];

/// Bare names of the analysis roots: the `Prefetcher` trait surface
/// every registry engine implements, plus the `MemSystem` surface
/// `SimMemory` exposes to the CPU model.
pub const ROOT_METHODS: &[&str] =
    &["tick", "lookup", "train", "quiescent", "load", "store", "fetch", "fetched_load"];

/// Files whose [`ROOT_METHODS`] definitions count as roots: every
/// engine file in `psb-core`, and the memory-system front end.
fn is_root_file(rel: &str) -> bool {
    rel.starts_with("crates/core/src/") || rel == "crates/sim/src/memsys.rs"
}

/// What the pass computed, for the report and the gate.
pub struct PanicsReport {
    /// Number of root functions.
    pub roots: usize,
    /// Number of reachable functions (roots included).
    pub reachable: usize,
    /// One finding per (file, fn, kind), source order.
    pub findings: Vec<Finding>,
}

/// Runs the pass over the workspace.
pub fn run(ws: &Workspace) -> PanicsReport {
    let graph = CallGraph::build(ws, |f| PANIC_CRATES.contains(&f.krate.as_str()));
    let roots: Vec<usize> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, r)| {
            let f = &ws.files[r.file];
            let item = &f.tree.fns[r.item];
            is_root_file(&f.rel) && ROOT_METHODS.contains(&item.name.as_str())
        })
        .map(|(n, _)| n)
        .collect();
    let reachable = graph.reachable(&roots);

    // (file, qual, kind) -> lines.
    let mut grouped: BTreeMap<(String, String, &'static str), Vec<usize>> = BTreeMap::new();
    for &n in &reachable {
        let r = graph.nodes[n];
        let f = &ws.files[r.file];
        let item = &f.tree.fns[r.item];
        let (lo, hi) = item.body;
        let mut add = |kind: &'static str, line: usize| {
            grouped.entry((f.rel.clone(), item.qual.clone(), kind)).or_default().push(line);
        };
        for call in f.tree.calls_in(lo, hi) {
            match (call.kind, call.name.as_str()) {
                (CallKind::Method, "unwrap") => add("unwrap", call.line),
                (CallKind::Method, "expect") => add("expect", call.line),
                (CallKind::Macro, "panic" | "unreachable" | "todo" | "unimplemented") => {
                    add("panic", call.line)
                }
                _ => {}
            }
        }
        for tok in f.tree.index_sites_in(lo, hi) {
            add("index", f.tree.toks[tok].line);
        }
        for tok in f.tree.div_sites_in(lo, hi) {
            add("div", f.tree.toks[tok].line);
        }
    }

    let mut findings: Vec<Finding> = grouped
        .into_iter()
        .map(|((file, qual, kind), mut lines)| {
            lines.sort_unstable();
            lines.dedup();
            Finding { id: format!("panics:{file}:{qual}:{kind}"), file, qual, kind, lines }
        })
        .collect();
    findings.sort_by(|a, b| {
        (&a.file, a.lines.first(), &a.qual, a.kind).cmp(&(
            &b.file,
            b.lines.first(),
            &b.qual,
            b.kind,
        ))
    });
    PanicsReport { roots: roots.len(), reachable: reachable.len(), findings }
}

#[cfg(test)]
mod tests {
    use super::super::Workspace;
    use super::*;

    /// Teeth: a seeded unwrap reachable from `tick` through two layers
    /// of calls is found, with the right id and line.
    #[test]
    fn seeded_reachable_unwrap_is_found() {
        let w = Workspace::from_sources(&[(
            "crates/core/src/predictor/x.rs",
            "impl Engine {\n\
                 fn tick(&mut self) { self.advance(); }\n\
                 fn advance(&mut self) { helper(self.v); }\n\
             }\n\
             fn helper(v: Option<u32>) -> u32 { v.unwrap() }\n",
        )]);
        let r = run(&w);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        let f = &r.findings[0];
        assert_eq!(f.id, "panics:crates/core/src/predictor/x.rs:helper:unwrap");
        assert_eq!(f.lines, [5]);
    }

    /// Teeth: an unreachable panic is NOT flagged — the pass is rooted.
    #[test]
    fn unreachable_panics_are_not_flagged() {
        let w = Workspace::from_sources(&[(
            "crates/core/src/x.rs",
            "impl E { fn tick(&mut self) {} }\n\
             fn cold_constructor() { assert_helper(); }\n\
             fn assert_helper() { panic!(\"construction-time\"); }\n",
        )]);
        let r = run(&w);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    /// Index expressions and integer division in a reachable fn are
    /// flagged with their own kinds; float division is not.
    #[test]
    fn index_and_div_kinds_fire() {
        let w = Workspace::from_sources(&[(
            "crates/core/src/x.rs",
            "impl Cache {\n\
                 fn lookup(&self, i: usize, d: u64) -> u64 {\n\
                     let x = self.sets[i];\n\
                     let _f = x as f64 / 2.0;\n\
                     x / d\n\
                 }\n\
             }\n",
        )]);
        let r = run(&w);
        let kinds: Vec<&str> = r.findings.iter().map(|f| f.kind).collect();
        assert_eq!(kinds, ["index", "div"], "{:?}", r.findings);
    }

    /// Roots outside root files do not root the graph: a `tick` in the
    /// workloads crate is not a hot-path entry point.
    #[test]
    fn root_names_outside_root_files_do_not_root() {
        let w = Workspace::from_sources(&[(
            "crates/sim/src/sweep.rs",
            "fn tick() { boom(); }\nfn boom() { panic!() }\n",
        )]);
        let r = run(&w);
        assert_eq!(r.roots, 0);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    /// Panic macros in all four spellings map to kind `panic`, and
    /// several sites of one kind in one fn fold into one finding.
    #[test]
    fn panic_macros_fold_into_one_finding_per_fn() {
        let w = Workspace::from_sources(&[(
            "crates/core/src/x.rs",
            "fn quiescent() -> bool {\n\
                 if bad() { panic!(\"a\") }\n\
                 if worse() { unreachable!() }\n\
                 true\n\
             }\n\
             fn bad() -> bool { false }\nfn worse() -> bool { false }\n",
        )]);
        let r = run(&w);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].kind, "panic");
        assert_eq!(r.findings[0].lines, [2, 3]);
    }
}
