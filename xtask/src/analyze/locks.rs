//! Pass 2: static lock-order.
//!
//! Extracts every `.lock()` acquisition in the threaded crates
//! (`model`, `serve`, `sim`, `bench`), assigns it a **lock class**
//! `{crate}/{receiver}` (so `self.state.lock()` in psb-model is
//! `model/state`), computes how long each guard is *held* —
//!
//! * a `let`-bound guard lives to the end of its enclosing block,
//! * a temporary (`self.state.lock().unwrap().push(x)`) dies at the
//!   end of its statement —
//!
//! and records an order edge `A -> B` whenever `B` is acquired while
//! `A` is held, either directly or through a call chain (a transitive
//! acquisition-set fixpoint over the conservative call graph). A cycle
//! in the resulting class graph is a potential deadlock and **fails the
//! run outright** — lock inversions are never baselineable, unlike
//! panic findings.
//!
//! `.wait()` on a condvar is recorded but creates no edges: waiting
//! releases and re-acquires the *same* lock, which cannot invert an
//! order. A `self.lock()` call (no field receiver) is treated as a call
//! to a locking helper — the KeyedOnce pattern — and resolves through
//! the call graph to the helper's acquisition set.

use super::callgraph::CallGraph;
use super::tokentree::{CallKind, Tree, NO_MATCH};
use super::Workspace;
use crate::lexer::Kind;
use std::collections::{BTreeMap, BTreeSet};

/// The crates whose locking code forms the analysis universe.
pub const LOCK_CRATES: &[&str] = &["model", "serve", "sim", "bench"];

/// One direct lock acquisition inside a function body.
#[derive(Clone, Debug)]
pub struct Acquisition {
    /// Lock class `{crate}/{receiver}`.
    pub class: String,
    /// Significant-token index of the `lock` method name.
    pub tok: usize,
    /// 1-based source line.
    pub line: usize,
    /// Token range over which the guard is held (inclusive).
    pub hold: (usize, usize),
}

/// One lock-order edge with provenance.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Held class.
    pub from: String,
    /// Class acquired under it.
    pub to: String,
    /// Repo-relative file of the outer acquisition.
    pub file: String,
    /// Line of the *inner* acquisition or the mediating call.
    pub line: usize,
    /// `Some(callee)` when the edge is call-mediated.
    pub via: Option<String>,
}

/// What the pass computed.
pub struct LocksReport {
    /// Every lock class seen.
    pub classes: BTreeSet<String>,
    /// Deduplicated order edges (first provenance kept).
    pub edges: Vec<Edge>,
    /// Condvar wait sites (informational).
    pub waits: usize,
    /// Cycles in the class graph, each a closed class path. Non-empty
    /// means the gate fails.
    pub cycles: Vec<Vec<String>>,
}

/// Runs the pass over the workspace.
pub fn run(ws: &Workspace) -> LocksReport {
    let graph = CallGraph::build(ws, |f| LOCK_CRATES.contains(&f.krate.as_str()));

    // Per node: direct acquisitions, wait count, and the call sites that
    // remain once acquisition/wait method names are excluded (those
    // must not resolve to helper fns that happen to be named `lock`).
    let mut acqs: Vec<Vec<Acquisition>> = Vec::with_capacity(graph.nodes.len());
    let mut calls: Vec<Vec<(String, usize, usize)>> = Vec::with_capacity(graph.nodes.len());
    let mut waits = 0usize;
    for n in &graph.nodes {
        let f = &ws.files[n.file];
        let item = &f.tree.fns[n.item];
        let (lo, hi) = item.body;
        let mut direct = Vec::new();
        let mut kept = Vec::new();
        for call in f.tree.calls_in(lo, hi) {
            if call.kind == CallKind::Macro {
                continue;
            }
            if call.kind == CallKind::Method && call.name == "wait" {
                waits += 1;
                continue;
            }
            if call.kind == CallKind::Method && call.name == "lock" {
                if let Some(recv) = field_receiver(&f.tree, call.tok) {
                    let hold = hold_range(&f.tree, call.tok, lo, hi);
                    direct.push(Acquisition {
                        class: format!("{}/{recv}", f.krate),
                        tok: call.tok,
                        line: call.line,
                        hold,
                    });
                    continue; // not a call edge
                }
                // `self.lock()` / bare `lock()`: a helper call — keep it
                // as a call site so the fixpoint pulls in the helper's
                // own acquisitions.
            }
            kept.push((call.name, call.tok, call.line));
        }
        acqs.push(direct);
        calls.push(kept);
    }

    // Transitive acquisition sets: star[n] = classes fn n may acquire,
    // directly or through any call chain.
    let mut star: Vec<BTreeSet<String>> =
        acqs.iter().map(|a| a.iter().map(|q| q.class.clone()).collect()).collect();
    loop {
        let mut changed = false;
        for n in 0..star.len() {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for (name, _, _) in &calls[n] {
                for &callee in graph.named(name) {
                    if callee != n {
                        add.extend(star[callee].iter().cloned());
                    }
                }
            }
            for c in add {
                changed |= star[n].insert(c);
            }
        }
        if !changed {
            break;
        }
    }

    // Order edges: for each held guard, everything acquired inside its
    // hold range — direct nested acquisitions and call-mediated ones.
    let mut classes: BTreeSet<String> = BTreeSet::new();
    let mut edges: Vec<Edge> = Vec::new();
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    let mut push = |edges: &mut Vec<Edge>, e: Edge| {
        if seen.insert((e.from.clone(), e.to.clone())) {
            edges.push(e);
        }
    };
    for (n, node) in graph.nodes.iter().enumerate() {
        let f = &ws.files[node.file];
        for a in &acqs[n] {
            classes.insert(a.class.clone());
            for b in &acqs[n] {
                if b.tok > a.tok && b.tok <= a.hold.1 {
                    push(
                        &mut edges,
                        Edge {
                            from: a.class.clone(),
                            to: b.class.clone(),
                            file: f.rel.clone(),
                            line: b.line,
                            via: None,
                        },
                    );
                }
            }
            for (name, tok, line) in &calls[n] {
                if *tok <= a.tok || *tok > a.hold.1 {
                    continue;
                }
                let mut inner: BTreeSet<String> = BTreeSet::new();
                for &callee in graph.named(name) {
                    if callee != n {
                        inner.extend(star[callee].iter().cloned());
                    }
                }
                for to in inner {
                    push(
                        &mut edges,
                        Edge {
                            from: a.class.clone(),
                            to,
                            file: f.rel.clone(),
                            line: *line,
                            via: Some(name.clone()),
                        },
                    );
                }
            }
        }
    }
    for e in &edges {
        classes.insert(e.to.clone());
    }

    let cycles = find_cycles(&classes, &edges);
    LocksReport { classes, edges, waits, cycles }
}

/// The field receiver of a `.lock()` method call at `name_tok`, when
/// there is one: `self.state.lock()` -> `state`, `ctl.lock()` -> `ctl`,
/// `self.inner().lock()` -> `inner`. `self.lock()` and bare forms
/// return `None` (helper call, not a direct acquisition).
fn field_receiver(tree: &Tree, name_tok: usize) -> Option<String> {
    let r = name_tok.checked_sub(2)?;
    if !tree.is_punct(name_tok - 1, ".") {
        return None;
    }
    match tree.toks[r].kind {
        Kind::Ident if tree.is_ident(r, "self") => None,
        Kind::Ident => Some(tree.text(r).to_string()),
        Kind::Punct if tree.text(r) == ")" => {
            // Method-call receiver: take the method's own name.
            let open = tree.match_of[r];
            if open != NO_MATCH && open >= 1 && tree.toks[open - 1].kind == Kind::Ident {
                Some(tree.text(open - 1).to_string())
            } else {
                None
            }
        }
        _ => None,
    }
}

/// The token range over which the guard produced at `call_tok` is held.
fn hold_range(tree: &Tree, call_tok: usize, body_lo: usize, body_hi: usize) -> (usize, usize) {
    let start = stmt_start(tree, call_tok, body_lo);
    let end = if tree.is_ident(start, "let") {
        block_end(tree, call_tok, body_hi)
    } else {
        stmt_end(tree, call_tok, body_hi)
    };
    (call_tok, end)
}

/// Walks backward from `from` to the start of its statement, jumping
/// over closed delimiter groups.
fn stmt_start(tree: &Tree, from: usize, body_lo: usize) -> usize {
    let mut j = from;
    while j > body_lo {
        let p = j - 1;
        if tree.toks[p].kind == Kind::Punct {
            match tree.text(p) {
                ")" | "]" | "}" => {
                    let m = tree.match_of[p];
                    if m != NO_MATCH && m < p {
                        j = m;
                        continue;
                    }
                    return j;
                }
                ";" | "{" | "(" | "[" => return j,
                _ => {}
            }
        }
        j = p;
    }
    j
}

/// Walks forward from `from` to the end of its statement (the next `;`
/// at this nesting level, or the enclosing block's `}`).
fn stmt_end(tree: &Tree, from: usize, body_hi: usize) -> usize {
    let mut j = from;
    while j <= body_hi {
        if tree.toks[j].kind == Kind::Punct {
            match tree.text(j) {
                "(" | "[" | "{" => {
                    let m = tree.match_of[j];
                    if m != NO_MATCH && m > j {
                        j = m;
                    }
                }
                ";" | "}" => return j,
                _ => {}
            }
        }
        j += 1;
    }
    body_hi
}

/// Walks forward from `from` to the `}` closing the enclosing block.
fn block_end(tree: &Tree, from: usize, body_hi: usize) -> usize {
    let mut j = from;
    while j <= body_hi {
        if tree.toks[j].kind == Kind::Punct {
            match tree.text(j) {
                "(" | "[" | "{" => {
                    let m = tree.match_of[j];
                    if m != NO_MATCH && m > j {
                        j = m;
                    }
                }
                "}" => return j,
                _ => {}
            }
        }
        j += 1;
    }
    body_hi
}

/// Finds cycles in the class digraph by depth-first search. Each cycle
/// is reported once as the class path along its back edge.
fn find_cycles(classes: &BTreeSet<String>, edges: &[Edge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().push(e.to.as_str());
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for start in classes {
        let mut path: Vec<&str> = Vec::new();
        let mut on_path: BTreeSet<&str> = BTreeSet::new();
        dfs(start.as_str(), &adj, &mut path, &mut on_path, &mut done, &mut cycles);
    }
    cycles.sort();
    cycles.dedup();
    cycles
}

fn dfs<'a>(
    v: &'a str,
    adj: &BTreeMap<&str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    on_path: &mut BTreeSet<&'a str>,
    done: &mut BTreeSet<&'a str>,
    cycles: &mut Vec<Vec<String>>,
) {
    if done.contains(v) {
        return;
    }
    path.push(v);
    on_path.insert(v);
    for &w in adj.get(v).map(Vec::as_slice).unwrap_or(&[]) {
        if on_path.contains(w) {
            // Back edge: the cycle is the path suffix from w, rotated to
            // start at its lexicographically smallest class so duplicate
            // discoveries dedup.
            let pos = path.iter().position(|&x| x == w).unwrap_or(0);
            let mut cycle: Vec<String> = path[pos..].iter().map(|s| s.to_string()).collect();
            let min = cycle
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| a.cmp(b))
                .map(|(i, _)| i)
                .unwrap_or(0);
            cycle.rotate_left(min);
            cycles.push(cycle);
        } else {
            dfs(w, adj, path, on_path, done, cycles);
        }
    }
    on_path.remove(v);
    path.pop();
    done.insert(v);
}

#[cfg(test)]
mod tests {
    use super::super::Workspace;
    use super::*;

    /// Consistent A-then-B ordering across two fns: edges, no cycle.
    #[test]
    fn consistent_order_has_no_cycle() {
        let w = Workspace::from_sources(&[(
            "crates/model/src/x.rs",
            "impl S {\n\
                 fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
                 fn g(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
             }\n",
        )]);
        let r = run(&w);
        assert_eq!(r.edges.len(), 1, "{:?}", r.edges);
        assert_eq!(r.edges[0].from, "model/alpha");
        assert_eq!(r.edges[0].to, "model/beta");
        assert!(r.cycles.is_empty(), "{:?}", r.cycles);
    }

    /// Teeth: a seeded inversion (A->B in one fn, B->A in another) is a
    /// cycle.
    #[test]
    fn seeded_inversion_is_a_cycle() {
        let w = Workspace::from_sources(&[(
            "crates/model/src/x.rs",
            "impl S {\n\
                 fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
                 fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }\n\
             }\n",
        )]);
        let r = run(&w);
        assert_eq!(r.cycles.len(), 1, "{:?}", r.cycles);
        assert_eq!(r.cycles[0], ["model/alpha", "model/beta"]);
    }

    /// Teeth: a call-mediated inversion is found through the
    /// acquisition-set fixpoint, across crates.
    #[test]
    fn call_mediated_inversion_is_a_cycle() {
        let w = Workspace::from_sources(&[
            (
                "crates/serve/src/x.rs",
                "impl P {\n\
                     fn publish(&self) { let s = self.slot.lock(); self.deep_notify(); }\n\
                     fn deep_notify(&self) { notify_all(); }\n\
                 }\n\
                 pub fn grab_slot() { let s = SLOTS.slot.lock(); }\n",
            ),
            (
                "crates/model/src/y.rs",
                "fn notify_all() { let st = GLOBAL.state.lock(); }\n\
                 fn drain() { let st = GLOBAL.state.lock(); grab_slot(); }\n",
            ),
        ]);
        let r = run(&w);
        assert!(
            r.cycles
                .iter()
                .any(|c| c.contains(&"serve/slot".to_string())
                    && c.contains(&"model/state".to_string())),
            "{:?}",
            r.cycles
        );
        let via: Vec<_> = r.edges.iter().filter(|e| e.via.is_some()).collect();
        assert!(!via.is_empty(), "call-mediated edge expected: {:?}", r.edges);
    }

    /// A temporary guard dies at its statement: no edge to the next
    /// statement's acquisition.
    #[test]
    fn temporary_guard_does_not_span_statements() {
        let w = Workspace::from_sources(&[(
            "crates/sim/src/x.rs",
            "impl S {\n\
                 fn f(&self) {\n\
                     self.alpha.lock().unwrap().push(1);\n\
                     self.beta.lock().unwrap().push(2);\n\
                 }\n\
             }\n",
        )]);
        let r = run(&w);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
        assert_eq!(r.classes.len(), 2);
    }

    /// A let-bound guard holds to the end of its block and orders a
    /// later acquisition.
    #[test]
    fn let_bound_guard_spans_its_block() {
        let w = Workspace::from_sources(&[(
            "crates/sim/src/x.rs",
            "impl S {\n\
                 fn f(&self) {\n\
                     let g = self.alpha.lock();\n\
                     self.beta.lock().unwrap().push(2);\n\
                 }\n\
             }\n",
        )]);
        let r = run(&w);
        assert_eq!(r.edges.len(), 1, "{:?}", r.edges);
        assert_eq!((r.edges[0].from.as_str(), r.edges[0].to.as_str()), ("sim/alpha", "sim/beta"));
    }

    /// `.wait()` is not an acquisition and makes no edges — the sched
    /// pattern `let st = self.state.lock(); self.cv.wait(st)` is clean.
    #[test]
    fn condvar_wait_makes_no_edges() {
        let w = Workspace::from_sources(&[(
            "crates/model/src/x.rs",
            "impl S {\n\
                 fn park(&self) { let st = self.state.lock(); let st = self.cv.wait(st); }\n\
             }\n",
        )]);
        let r = run(&w);
        assert!(r.edges.is_empty(), "{:?}", r.edges);
        assert_eq!(r.waits, 1);
        assert!(r.cycles.is_empty());
    }

    /// The KeyedOnce pattern: `self.lock()` resolves through the call
    /// graph to the helper's acquisition, creating a mediated edge.
    #[test]
    fn self_lock_helper_resolves_through_the_call_graph() {
        let w = Workspace::from_sources(&[(
            "crates/model/src/x.rs",
            "impl Cache {\n\
                 fn lock(&self) { let m = self.map.lock(); }\n\
                 fn busy(&self) { let g = self.gate.lock(); self.lock(); }\n\
             }\n",
        )]);
        let r = run(&w);
        assert_eq!(r.edges.len(), 1, "{:?}", r.edges);
        assert_eq!(r.edges[0].from, "model/gate");
        assert_eq!(r.edges[0].to, "model/map");
        assert_eq!(r.edges[0].via.as_deref(), Some("lock"));
    }

    /// A double acquisition of the same class under itself is a
    /// self-cycle (std mutexes are not re-entrant).
    #[test]
    fn reentrant_acquisition_is_a_self_cycle() {
        let w = Workspace::from_sources(&[(
            "crates/model/src/x.rs",
            "impl S { fn f(&self) { let a = self.alpha.lock(); let b = self.alpha.lock(); } }\n",
        )]);
        let r = run(&w);
        assert_eq!(r.cycles, [["model/alpha"]], "{:?}", r.cycles);
    }
}
