//! `cargo xtask analyze` — token-tree semantic analysis over the whole
//! workspace.
//!
//! Three passes, all built on the shared [`crate::lexer`] and the
//! [`tokentree`] layer (no rustc, no syn — xtask stays zero-dep and
//! offline):
//!
//! 1. [`panics`] — hot-path panic-freedom: an approximate call graph
//!    rooted at the prefetcher-engine and memory-system entry points,
//!    flagging every reachable `unwrap`/`expect`/`panic!`/indexing/
//!    division site.
//! 2. [`locks`] — static lock-order: acquisition orders across the
//!    threaded crates, failing outright on any cycle.
//! 3. [`casts`] — cast/unit safety: truncating `as` casts and raw-unit
//!    arithmetic outside the `Addr`/cycle newtype boundary.
//!
//! Panic and cast findings are gated against a committed baseline
//! (`PANICS.toml`, schema `psb-analyze-v1`, `[[allow]]` stanzas with
//! mandatory reasons — same discipline as `MUTANTS.toml`): new findings
//! fail the run with paste-ready stanzas, stale entries warn. Lock
//! cycles are never baselineable.
//!
//! `--report FILE` writes a `psb-analyze-v1` JSON report that
//! `cargo xtask validate-artifacts` knows how to shape-check.

pub mod callgraph;
pub mod casts;
pub mod locks;
pub mod panics;
pub mod tokentree;

use crate::baseline::{self, BaselineFile};
use psb_obs::json::Json;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tokentree::Tree;

/// The report/baseline schema identifier.
pub const SCHEMA: &str = "psb-analyze-v1";

/// Default baseline file name at the repo root.
pub const BASELINE_FILE: &str = "PANICS.toml";

/// One parsed workspace source file.
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub rel: String,
    /// Short crate name (`crates/<name>/…`), `xtask`, or `root`.
    pub krate: String,
    /// The token tree.
    pub tree: Tree,
}

/// Every parsed source file of the workspace.
pub struct Workspace {
    /// Files in path order.
    pub files: Vec<SourceFile>,
}

/// One gateable finding: a (file, function, kind) group of sites.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Stable baseline ID: `<pass>:<file>:<qual>:<kind>`.
    pub id: String,
    /// Repo-relative file.
    pub file: String,
    /// Qualified function name (`Type::name` or bare name).
    pub qual: String,
    /// Site kind within the pass (`unwrap`, `index`, `trunc`, …).
    pub kind: &'static str,
    /// 1-based lines of the individual sites, sorted, deduplicated.
    pub lines: Vec<usize>,
}

impl Workspace {
    /// Builds a workspace from in-memory `(path, source)` pairs — the
    /// fixture entry point every pass test uses.
    #[cfg(test)]
    pub fn from_sources(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files
                .iter()
                .map(|(rel, source)| SourceFile {
                    rel: rel.to_string(),
                    krate: krate_of(rel),
                    tree: Tree::parse(source),
                })
                .collect(),
        }
    }

    /// Loads and parses every `src/**/*.rs` of every workspace crate.
    pub fn load(root: &Path) -> Workspace {
        let mut files = Vec::new();
        for crate_dir in crate::crate_dirs(root) {
            for file in crate::rust_files(&crate_dir.join("src")) {
                let Ok(source) = std::fs::read_to_string(&file) else {
                    continue;
                };
                let rel =
                    file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
                files.push(SourceFile { krate: krate_of(&rel), rel, tree: Tree::parse(&source) });
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Workspace { files }
    }
}

/// The short crate name of a repo-relative path.
fn krate_of(rel: &str) -> String {
    let mut parts = rel.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name.to_string(),
        (Some("xtask"), _) => "xtask".to_string(),
        _ => "root".to_string(),
    }
}

/// Which passes a run executes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Pass {
    /// Hot-path panic-freedom.
    Panics,
    /// Static lock-order.
    Locks,
    /// Cast/unit safety.
    Casts,
}

impl Pass {
    /// All passes, in run order.
    pub const ALL: [Pass; 3] = [Pass::Panics, Pass::Locks, Pass::Casts];

    /// The CLI / finding-ID name.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Panics => "panics",
            Pass::Locks => "locks",
            Pass::Casts => "casts",
        }
    }

    fn parse(s: &str) -> Option<Pass> {
        Pass::ALL.into_iter().find(|p| p.name() == s)
    }
}

/// Everything one analysis run computed — separated from the CLI so the
/// gate logic is testable on fixture workspaces.
pub struct Outcome {
    /// Pass 1 results, when run.
    pub panics: Option<panics::PanicsReport>,
    /// Pass 2 results, when run.
    pub locks: Option<locks::LocksReport>,
    /// Pass 3 results, when run.
    pub casts: Option<casts::CastsReport>,
    /// Findings not covered by the baseline (gate failures).
    pub new: Vec<Finding>,
    /// Findings covered by the baseline.
    pub baselined: usize,
    /// Baseline IDs (of executed passes) with no matching finding.
    pub stale: Vec<String>,
}

impl Outcome {
    /// True when the gate passes: no new findings, no lock cycles.
    pub fn ok(&self) -> bool {
        self.new.is_empty() && self.locks.as_ref().is_none_or(|l| l.cycles.is_empty())
    }
}

/// Runs `passes` over `ws` and gates panic/cast findings against
/// `baseline`.
pub fn evaluate(ws: &Workspace, passes: &[Pass], baseline: &BaselineFile) -> Outcome {
    let panics = passes.contains(&Pass::Panics).then(|| panics::run(ws));
    let locks = passes.contains(&Pass::Locks).then(|| locks::run(ws));
    let casts = passes.contains(&Pass::Casts).then(|| casts::run(ws));

    let findings: Vec<&Finding> = panics
        .iter()
        .flat_map(|p| p.findings.iter())
        .chain(casts.iter().flat_map(|c| c.findings.iter()))
        .collect();
    let ids: BTreeSet<&str> = findings.iter().map(|f| f.id.as_str()).collect();
    let mut new = Vec::new();
    let mut baselined = 0usize;
    for f in &findings {
        if baseline.entries.contains_key(&f.id) {
            baselined += 1;
        } else {
            new.push((*f).clone());
        }
    }
    // A baseline entry is stale only when the pass that owns it ran and
    // did not produce it — a casts-only run must not call panic entries
    // stale.
    let ran: Vec<&str> = passes.iter().map(|p| p.name()).collect();
    let stale: Vec<String> = baseline
        .entries
        .keys()
        .filter(|id| {
            ran.iter().any(|p| id.starts_with(&format!("{p}:"))) && !ids.contains(id.as_str())
        })
        .cloned()
        .collect();
    Outcome { panics, locks, casts, new, baselined, stale }
}

/// `cargo xtask analyze` entry point.
pub fn analyze(args: &[String]) -> ExitCode {
    let Some(opts) = Opts::parse(args) else {
        eprintln!(
            "usage: cargo xtask analyze [--pass panics|locks|casts] [--baseline FILE] \
             [--report FILE]"
        );
        return ExitCode::from(2);
    };
    let root = crate::repo_root();
    let baseline = match BaselineFile::load(&opts.baseline, SCHEMA, "allow") {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xtask analyze: baseline: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ws = Workspace::load(&root);
    println!(
        "xtask analyze: {} file(s), passes: {}",
        ws.files.len(),
        opts.passes.iter().map(|p| p.name()).collect::<Vec<_>>().join(", ")
    );
    let out = evaluate(&ws, &opts.passes, &baseline);

    if let Some(p) = &out.panics {
        println!(
            "xtask analyze: panics: {} root(s), {} reachable fn(s), {} finding(s)",
            p.roots,
            p.reachable,
            p.findings.len()
        );
    }
    if let Some(l) = &out.locks {
        println!(
            "xtask analyze: locks: {} class(es), {} edge(s), {} wait(s), {} cycle(s)",
            l.classes.len(),
            l.edges.len(),
            l.waits,
            l.cycles.len()
        );
        for e in &l.edges {
            let via = e.via.as_deref().map(|v| format!(" via {v}()")).unwrap_or_default();
            println!("  order {} -> {}{via}  ({}:{})", e.from, e.to, e.file, e.line);
        }
        for c in &l.cycles {
            eprintln!("xtask analyze: LOCK CYCLE: {} -> {}", c.join(" -> "), c[0]);
        }
    }
    if let Some(c) = &out.casts {
        println!(
            "xtask analyze: casts: {} fn(s) scanned, {} finding(s)",
            c.scanned,
            c.findings.len()
        );
    }
    if out.baselined > 0 {
        println!("xtask analyze: {} finding(s) covered by the baseline", out.baselined);
    }
    for id in &out.stale {
        eprintln!("xtask analyze: warning: stale baseline entry {id} (no such finding)");
    }
    if !out.new.is_empty() {
        eprintln!();
        eprintln!(
            "xtask analyze: {} new finding(s) — fix them or add justified entries to {}:",
            out.new.len(),
            opts.baseline.display()
        );
        eprintln!();
        for f in &out.new {
            let lines: Vec<String> = f.lines.iter().map(|l| l.to_string()).collect();
            eprintln!("# {} line(s) {}", f.file, lines.join(", "));
            eprintln!("{}", baseline::stanza("allow", &f.id, "TODO: why this cannot fire"));
        }
    }

    if let Some(path) = &opts.report {
        let json = report_json(&ws, &opts.passes, &out);
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("xtask analyze: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("xtask analyze: report written to {}", path.display());
    }

    if out.ok() {
        println!("xtask analyze: ok");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask analyze: FAIL");
        ExitCode::FAILURE
    }
}

struct Opts {
    passes: Vec<Pass>,
    baseline: PathBuf,
    report: Option<PathBuf>,
}

impl Opts {
    fn parse(args: &[String]) -> Option<Opts> {
        let mut passes = Vec::new();
        let mut baseline = None;
        let mut report = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--pass" => {
                    let p = Pass::parse(it.next()?)?;
                    if !passes.contains(&p) {
                        passes.push(p);
                    }
                }
                "--baseline" => baseline = Some(PathBuf::from(it.next()?)),
                "--report" => report = Some(PathBuf::from(it.next()?)),
                _ => return None,
            }
        }
        if passes.is_empty() {
            passes = Pass::ALL.to_vec();
        }
        Some(Opts {
            passes,
            baseline: baseline.unwrap_or_else(|| crate::repo_root().join(BASELINE_FILE)),
            report,
        })
    }
}

/// Builds the `psb-analyze-v1` report.
fn report_json(ws: &Workspace, passes: &[Pass], out: &Outcome) -> Json {
    let finding_json = |f: &Finding, baselined: bool| {
        Json::obj([
            ("id", Json::str(&*f.id)),
            ("file", Json::str(&*f.file)),
            ("fn", Json::str(&*f.qual)),
            ("kind", Json::str(f.kind)),
            ("lines", Json::arr(f.lines.iter().map(|&l| Json::u64(l as u64)))),
            ("baselined", Json::Bool(baselined)),
        ])
    };
    let is_new = |f: &Finding| out.new.iter().any(|n| n.id == f.id);
    let mut fields: Vec<(&str, Json)> = vec![
        ("schema", Json::str(SCHEMA)),
        ("passes", Json::arr(passes.iter().map(|p| Json::str(p.name())))),
        ("files", Json::u64(ws.files.len() as u64)),
    ];
    if let Some(p) = &out.panics {
        fields.push((
            "panics",
            Json::obj([
                ("roots", Json::u64(p.roots as u64)),
                ("reachable", Json::u64(p.reachable as u64)),
                ("findings", Json::arr(p.findings.iter().map(|f| finding_json(f, !is_new(f))))),
            ]),
        ));
    }
    if let Some(l) = &out.locks {
        fields.push((
            "locks",
            Json::obj([
                ("classes", Json::arr(l.classes.iter().map(|c| Json::str(&**c)))),
                (
                    "edges",
                    Json::arr(l.edges.iter().map(|e| {
                        Json::obj([
                            ("from", Json::str(&*e.from)),
                            ("to", Json::str(&*e.to)),
                            ("file", Json::str(&*e.file)),
                            ("line", Json::u64(e.line as u64)),
                            ("via", e.via.as_deref().map_or(Json::Null, Json::str)),
                        ])
                    })),
                ),
                ("waits", Json::u64(l.waits as u64)),
                (
                    "cycles",
                    Json::arr(
                        l.cycles.iter().map(|c| Json::arr(c.iter().map(|s| Json::str(&**s)))),
                    ),
                ),
            ]),
        ));
    }
    if let Some(c) = &out.casts {
        fields.push((
            "casts",
            Json::obj([
                ("scanned", Json::u64(c.scanned as u64)),
                ("findings", Json::arr(c.findings.iter().map(|f| finding_json(f, !is_new(f))))),
            ]),
        ));
    }
    fields.push(("new", Json::u64(out.new.len() as u64)));
    fields.push(("baselined", Json::u64(out.baselined as u64)));
    fields.push(("stale", Json::arr(out.stale.iter().map(|s| Json::str(&**s)))));
    fields.push(("ok", Json::Bool(out.ok())));
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEEDED_PANIC: (&str, &str) = (
        "crates/core/src/x.rs",
        "impl E {\n    fn tick(&mut self) { step(self.v); }\n}\n\
         fn step(v: Option<u32>) -> u32 { v.unwrap() }\n",
    );

    fn base(entries: &[(&str, &str)]) -> BaselineFile {
        let mut text = format!("schema = \"{SCHEMA}\"\n");
        for (id, reason) in entries {
            text.push_str(&baseline::stanza("allow", id, reason));
        }
        BaselineFile::parse(&text, SCHEMA, "allow").unwrap()
    }

    /// Teeth: a seeded defect with an empty baseline fails the gate.
    #[test]
    fn seeded_defect_fails_the_gate() {
        let ws = Workspace::from_sources(&[SEEDED_PANIC]);
        let out = evaluate(&ws, &Pass::ALL, &BaselineFile::default());
        assert!(!out.ok());
        assert_eq!(out.new.len(), 1);
        assert_eq!(out.new[0].id, "panics:crates/core/src/x.rs:step:unwrap");
    }

    /// The same defect with a justified baseline entry passes, and the
    /// entry is not stale.
    #[test]
    fn baselined_finding_passes_the_gate() {
        let ws = Workspace::from_sources(&[SEEDED_PANIC]);
        let b = base(&[("panics:crates/core/src/x.rs:step:unwrap", "fixture invariant")]);
        let out = evaluate(&ws, &Pass::ALL, &b);
        assert!(out.ok(), "{:?}", out.new);
        assert_eq!(out.baselined, 1);
        assert!(out.stale.is_empty(), "{:?}", out.stale);
    }

    /// An entry with no matching finding is stale — but only when its
    /// pass actually ran.
    #[test]
    fn stale_entries_are_scoped_to_executed_passes() {
        let ws = Workspace::from_sources(&[("crates/core/src/x.rs", "fn quiet() {}\n")]);
        let b = base(&[("panics:crates/core/src/x.rs:gone:unwrap", "was fixed")]);
        let out = evaluate(&ws, &Pass::ALL, &b);
        assert_eq!(out.stale, ["panics:crates/core/src/x.rs:gone:unwrap"]);
        assert!(out.ok(), "stale warns, never fails");
        let casts_only = evaluate(&ws, &[Pass::Casts], &b);
        assert!(casts_only.stale.is_empty(), "{:?}", casts_only.stale);
    }

    /// Teeth: a lock cycle fails the gate even with an empty-new run —
    /// cycles are not baselineable.
    #[test]
    fn lock_cycle_fails_regardless_of_baseline() {
        let ws = Workspace::from_sources(&[(
            "crates/model/src/x.rs",
            "impl S {\n\
                 fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
                 fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }\n\
             }\n",
        )]);
        let out = evaluate(&ws, &[Pass::Locks], &BaselineFile::default());
        assert!(out.new.is_empty());
        assert!(!out.ok());
    }

    /// Teeth: a seeded truncating cast fails via the casts pass.
    #[test]
    fn seeded_cast_defect_fails_the_gate() {
        let ws = Workspace::from_sources(&[(
            "crates/mem/src/x.rs",
            "fn set_of(addr: u64) -> usize { addr as usize }\n",
        )]);
        let out = evaluate(&ws, &[Pass::Casts], &BaselineFile::default());
        assert_eq!(out.new.len(), 1, "{:?}", out.new);
        assert_eq!(out.new[0].id, "casts:crates/mem/src/x.rs:set_of:trunc");
        assert!(!out.ok());
    }

    /// The report round-trips through the psb-obs parser and carries
    /// the gate verdict.
    #[test]
    fn report_round_trips_and_carries_the_verdict() {
        let ws = Workspace::from_sources(&[SEEDED_PANIC]);
        let out = evaluate(&ws, &Pass::ALL, &BaselineFile::default());
        let text = report_json(&ws, &Pass::ALL, &out).to_string();
        let back = psb_obs::json::parse(&text).unwrap();
        assert_eq!(back.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(back.get("ok"), Some(&Json::Bool(false)));
        let findings =
            back.get("panics").and_then(|p| p.get("findings")).and_then(Json::as_arr).unwrap();
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].get("baselined"), Some(&Json::Bool(false)));
    }

    /// Crate names derive from the path layout.
    #[test]
    fn krate_names_follow_the_layout() {
        assert_eq!(krate_of("crates/core/src/lib.rs"), "core");
        assert_eq!(krate_of("xtask/src/main.rs"), "xtask");
        assert_eq!(krate_of("src/main.rs"), "root");
    }
}
