//! An approximate intra-workspace call graph over [`Tree`] items.
//!
//! Resolution is **name-based and deliberately conservative**: a call
//! to `foo(...)` or `.foo(...)` edges to *every* workspace function
//! named `foo`, regardless of receiver type. Trait-object dispatch,
//! same-name methods on different types and free-fn/method punning all
//! collapse onto the union of candidates. The approximation can only
//! over-report reachability — a seeded panic behind a dynamic call is
//! never missed (the teeth tests below pin exactly that) — at the cost
//! of the occasional extra baseline entry for a function that shares a
//! name with hot-path code.
//!
//! Macro invocations are not call edges (their bodies are opaque at the
//! token level); the panic pass inspects macro *names* directly.

use super::tokentree::CallKind;
use super::{SourceFile, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// One graph node: a function item in a workspace file.
#[derive(Copy, Clone, Debug)]
pub struct FnRef {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Index into that file's [`Tree::fns`](super::tokentree::Tree::fns).
    pub item: usize,
}

/// The call graph over every non-test function of a workspace subset.
pub struct CallGraph {
    /// All nodes, in (file, source) order.
    pub nodes: Vec<FnRef>,
    /// `edges[n]` = indices of the nodes `n` may call, deduplicated.
    pub edges: Vec<Vec<usize>>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over the files of `ws` accepted by `in_scope`
    /// (a predicate on the repo-relative path).
    pub fn build(ws: &Workspace, in_scope: impl Fn(&SourceFile) -> bool) -> CallGraph {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, f) in ws.files.iter().enumerate() {
            if !in_scope(f) {
                continue;
            }
            for (ii, item) in f.tree.fns.iter().enumerate() {
                if item.in_test {
                    continue;
                }
                by_name.entry(item.name.clone()).or_default().push(nodes.len());
                nodes.push(FnRef { file: fi, item: ii });
            }
        }
        let mut edges = Vec::with_capacity(nodes.len());
        for n in &nodes {
            let f = &ws.files[n.file];
            let item = &f.tree.fns[n.item];
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for call in f.tree.calls_in(item.body.0, item.body.1) {
                if call.kind == CallKind::Macro {
                    continue;
                }
                if let Some(cands) = by_name.get(&call.name) {
                    out.extend(cands.iter().copied());
                }
            }
            edges.push(out.into_iter().collect());
        }
        CallGraph { nodes, edges, by_name }
    }

    /// Node indices whose bare fn name is `name`.
    pub fn named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every node reachable from `roots` (inclusive), breadth-first.
    pub fn reachable(&self, roots: &[usize]) -> BTreeSet<usize> {
        let mut seen: BTreeSet<usize> = roots.iter().copied().collect();
        let mut queue: Vec<usize> = roots.to_vec();
        while let Some(n) = queue.pop() {
            for &m in &self.edges[n] {
                if seen.insert(m) {
                    queue.push(m);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::super::Workspace;
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::from_sources(files)
    }

    fn graph(ws: &Workspace) -> CallGraph {
        CallGraph::build(ws, |_| true)
    }

    fn reach_quals(ws: &Workspace, g: &CallGraph, roots: &[usize]) -> Vec<String> {
        g.reachable(roots)
            .into_iter()
            .map(|n| {
                let r = g.nodes[n];
                ws.files[r.file].tree.fns[r.item].qual.clone()
            })
            .collect()
    }

    /// Teeth: a panic behind a trait-object call must stay reachable.
    /// `run` calls `step` through `&dyn Engine`; name-based resolution
    /// must edge to *both* impls, so the panicking one is never missed.
    #[test]
    fn trait_object_dispatch_is_conservative() {
        let w = ws(&[(
            "crates/core/src/x.rs",
            "trait Engine { fn step(&self); }\n\
             struct Safe;\n\
             impl Engine for Safe { fn step(&self) {} }\n\
             struct Bad;\n\
             impl Engine for Bad { fn step(&self) { seeded_panic(); } }\n\
             fn seeded_panic() { panic!(\"seeded\"); }\n\
             fn run(e: &dyn Engine) { e.step(); }\n",
        )]);
        let g = graph(&w);
        let roots = g.named("run").to_vec();
        let reached = reach_quals(&w, &g, &roots);
        assert!(reached.contains(&"Bad::step".to_string()), "{reached:?}");
        assert!(reached.contains(&"Safe::step".to_string()), "{reached:?}");
        assert!(reached.contains(&"seeded_panic".to_string()), "{reached:?}");
    }

    /// Teeth: same-name methods on different types resolve to the
    /// union — a receiver the token layer cannot type still reaches
    /// every candidate, across files.
    #[test]
    fn same_name_methods_across_types_resolve_to_the_union() {
        let w = ws(&[
            (
                "crates/core/src/a.rs",
                "pub struct Table;\n\
                 impl Table { pub fn probe(&self) {} }\n\
                 pub fn drive(t: &Table) { t.probe(); }\n",
            ),
            (
                "crates/mem/src/b.rs",
                "pub struct Cache;\n\
                 impl Cache { pub fn probe(&self) { danger(); } }\n\
                 fn danger() { unreachable!() }\n",
            ),
        ]);
        let g = graph(&w);
        let roots = g.named("drive").to_vec();
        let reached = reach_quals(&w, &g, &roots);
        assert!(reached.contains(&"Cache::probe".to_string()), "{reached:?}");
        assert!(reached.contains(&"danger".to_string()), "{reached:?}");
    }

    /// Test-only fns are not nodes: a helper called solely from
    /// `#[cfg(test)]` code neither roots nor extends reachability.
    #[test]
    fn test_fns_are_excluded() {
        let w = ws(&[(
            "crates/core/src/x.rs",
            "fn live() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::live(); }\n}\n",
        )]);
        let g = graph(&w);
        assert_eq!(g.nodes.len(), 1);
        assert!(g.named("t").is_empty());
    }

    /// Unreached code stays unreached: reachability is rooted, not
    /// whole-universe.
    #[test]
    fn unrooted_fns_are_not_reachable() {
        let w = ws(&[(
            "crates/core/src/x.rs",
            "fn root() { used(); }\nfn used() {}\nfn dead() { panic!() }\n",
        )]);
        let g = graph(&w);
        let roots = g.named("root").to_vec();
        let reached = reach_quals(&w, &g, &roots);
        assert_eq!(reached, ["root", "used"], "{reached:?}");
    }

    /// Recursion terminates and self-edges are fine.
    #[test]
    fn recursion_is_handled() {
        let w = ws(&[("crates/core/src/x.rs", "fn f(n: u32) { if n > 0 { f(n - 1); } }\n")]);
        let g = graph(&w);
        let roots = g.named("f").to_vec();
        assert_eq!(g.reachable(&roots).len(), 1);
    }
}
