//! Pass 3: cast/unit safety.
//!
//! The address (`Addr`) and cycle newtypes exist so raw `u64`s never
//! carry unit meaning around the workspace. Two constructs erode that
//! boundary and are flagged outside the annotated boundary files
//! (`crates/common/src/addr.rs`, `crates/common/src/cycle.rs`, where
//! the newtypes themselves live):
//!
//! * **Truncating casts** (kind `trunc`): an `as` cast to a narrower
//!   integer type (`usize`, `u32`, …, `i8`) applied in address/cycle
//!   context — the few preceding tokens mention the unit vocabulary
//!   (`addr`, `pc`, `cycle`, `block`, …) or a `.raw()` extraction.
//!   Silent truncation of a 64-bit address is exactly the bug class the
//!   newtypes were introduced to kill.
//! * **Raw-unit arithmetic** (kind `raw`): a `.raw()` call whose result
//!   immediately feeds an arithmetic operator or another `as` cast —
//!   unit-typed math should happen on the newtype (which checks
//!   alignment and wrap), not on the escaped integer.
//!
//! Findings are grouped per (file, fn, kind) like the panic pass and
//! gated against the same committed baseline; a justified boundary
//! (e.g. an arena index derived from a set-mapped PC) earns a reasoned
//! entry, an accidental one earns a fix.

use super::tokentree::{CallKind, Tree, NO_MATCH};
use super::{Finding, Workspace};
use crate::lexer::Kind;
use std::collections::BTreeMap;

/// The crates whose code is checked.
pub const CAST_CRATES: &[&str] = &["common", "core", "mem", "sim"];

/// Files allowed to handle raw units: the newtype definitions.
pub const BOUNDARY_FILES: &[&str] = &["crates/common/src/addr.rs", "crates/common/src/cycle.rs"];

/// Narrower-than-`u64` integer targets whose `as` casts can truncate.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize"];

/// Identifier vocabulary marking address/cycle context.
const UNIT_VOCAB: &[&str] =
    &["addr", "address", "vaddr", "paddr", "pc", "cycle", "cycles", "block", "line_addr", "raw"];

/// How many significant tokens before an `as` to scan for vocabulary.
const LOOKBACK: usize = 6;

/// What the pass computed.
pub struct CastsReport {
    /// Functions scanned.
    pub scanned: usize,
    /// One finding per (file, fn, kind), source order.
    pub findings: Vec<Finding>,
}

/// Runs the pass over the workspace.
pub fn run(ws: &Workspace) -> CastsReport {
    let mut grouped: BTreeMap<(String, String, &'static str), Vec<usize>> = BTreeMap::new();
    let mut scanned = 0usize;
    for f in &ws.files {
        if !CAST_CRATES.contains(&f.krate.as_str()) || BOUNDARY_FILES.contains(&f.rel.as_str()) {
            continue;
        }
        for item in &f.tree.fns {
            if item.in_test {
                continue;
            }
            scanned += 1;
            let (lo, hi) = item.body;
            let mut add = |kind: &'static str, line: usize| {
                grouped.entry((f.rel.clone(), item.qual.clone(), kind)).or_default().push(line);
            };
            for i in trunc_sites(&f.tree, lo, hi) {
                add("trunc", f.tree.toks[i].line);
            }
            for i in raw_arith_sites(&f.tree, lo, hi) {
                add("raw", f.tree.toks[i].line);
            }
        }
    }
    let mut findings: Vec<Finding> = grouped
        .into_iter()
        .map(|((file, qual, kind), mut lines)| {
            lines.sort_unstable();
            lines.dedup();
            Finding { id: format!("casts:{file}:{qual}:{kind}"), file, qual, kind, lines }
        })
        .collect();
    findings.sort_by(|a, b| {
        (&a.file, a.lines.first(), &a.qual, a.kind).cmp(&(
            &b.file,
            b.lines.first(),
            &b.qual,
            b.kind,
        ))
    });
    CastsReport { scanned, findings }
}

/// Token indices of `as` keywords casting unit-context values to a
/// narrower integer type within `[lo, hi]`.
fn trunc_sites(tree: &Tree, lo: usize, hi: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for i in lo..=hi.min(tree.toks.len().saturating_sub(1)) {
        if !tree.is_ident(i, "as") {
            continue;
        }
        let Some(next) = tree.toks.get(i + 1) else { continue };
        if next.kind != Kind::Ident || !NARROW_INTS.contains(&tree.text(i + 1)) {
            continue;
        }
        let from = i.saturating_sub(LOOKBACK).max(lo);
        let in_unit_context = (from..i).any(|j| {
            tree.toks[j].kind == Kind::Ident
                && UNIT_VOCAB.contains(&tree.text(j).to_ascii_lowercase().as_str())
        });
        if in_unit_context {
            out.push(i);
        }
    }
    out
}

/// Token indices of `.raw()` calls whose result immediately feeds
/// arithmetic or an `as` cast within `[lo, hi]`.
fn raw_arith_sites(tree: &Tree, lo: usize, hi: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for call in tree.calls_in(lo, hi) {
        if call.kind != CallKind::Method || call.name != "raw" {
            continue;
        }
        // `.raw ( )` — find the close paren, then look at what follows.
        let open = call.tok + 1;
        if open >= tree.toks.len() || !tree.is_punct(open, "(") {
            continue;
        }
        let close = tree.match_of[open];
        if close == NO_MATCH {
            continue;
        }
        let Some(after) = tree.toks.get(close + 1) else { continue };
        let feeds_arith = match after.kind {
            Kind::Punct => {
                matches!(tree.text(close + 1), "+" | "-" | "*" | "/" | "%" | "<<" | ">>")
            }
            Kind::Ident => tree.text(close + 1) == "as",
            _ => false,
        };
        // Also catch the operand position: `x + a.raw()`.
        let before_recv = receiver_start(tree, call.tok).and_then(|s| s.checked_sub(1));
        let preceded_by_arith = before_recv.is_some_and(|p| {
            tree.toks[p].kind == Kind::Punct
                && matches!(tree.text(p), "+" | "-" | "*" | "/" | "%" | "<<" | ">>")
        });
        if feeds_arith || preceded_by_arith {
            out.push(call.tok);
        }
    }
    out
}

/// The first token of the receiver chain of the method call at
/// `name_tok`: walks `a.b.c` / `f(x).c` chains backward.
fn receiver_start(tree: &Tree, name_tok: usize) -> Option<usize> {
    let mut j = name_tok.checked_sub(1)?; // the `.`
    if !tree.is_punct(j, ".") {
        return None;
    }
    loop {
        let p = j.checked_sub(1)?;
        match tree.toks[p].kind {
            Kind::Ident | Kind::Number => {
                j = p;
                let Some(pp) = p.checked_sub(1) else { return Some(j) };
                if tree.is_punct(pp, ".") {
                    j = pp;
                    continue;
                }
                return Some(j);
            }
            Kind::Punct if matches!(tree.text(p), ")" | "]") => {
                let m = tree.match_of[p];
                if m == NO_MATCH {
                    return Some(p);
                }
                j = m;
                let Some(pp) = m.checked_sub(1) else { return Some(j) };
                if tree.toks[pp].kind == Kind::Ident {
                    j = pp;
                    let Some(ppp) = pp.checked_sub(1) else { return Some(j) };
                    if tree.is_punct(ppp, ".") {
                        j = ppp;
                        continue;
                    }
                }
                return Some(j);
            }
            _ => return Some(j),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::Workspace;
    use super::*;

    fn kinds_and_lines(w: &Workspace) -> Vec<(String, Vec<usize>)> {
        run(w).findings.into_iter().map(|f| (f.id, f.lines)).collect()
    }

    /// Teeth: the stride-table pattern `(pc.raw() >> 2) as usize` is
    /// flagged as both a raw-arith site and a truncating cast.
    #[test]
    fn stride_set_mapping_is_flagged() {
        let w = Workspace::from_sources(&[(
            "crates/core/src/predictor/x.rs",
            "impl T {\n\
                 fn set_of(&self, pc: Addr) -> usize {\n\
                     (pc.raw() >> 2) as usize & self.mask\n\
                 }\n\
             }\n",
        )]);
        let got = kinds_and_lines(&w);
        let ids: Vec<&str> = got.iter().map(|(id, _)| id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "casts:crates/core/src/predictor/x.rs:T::set_of:raw",
                "casts:crates/core/src/predictor/x.rs:T::set_of:trunc",
            ],
            "{got:?}"
        );
    }

    /// A widening cast (`u32 as u64`) and a unit-free narrowing cast
    /// (`len as u32`) are both clean.
    #[test]
    fn widening_and_unit_free_casts_are_clean() {
        let w = Workspace::from_sources(&[(
            "crates/mem/src/x.rs",
            "fn f(n: u32, len: usize) -> u64 {\n\
                 let wide = n as u64;\n\
                 let small = len as u32;\n\
                 wide + small as u64\n\
             }\n",
        )]);
        assert!(kinds_and_lines(&w).is_empty(), "{:?}", run(&w).findings);
    }

    /// `.raw()` used for display or comparison (no arithmetic) is not
    /// flagged — only escaped-unit *math* is.
    #[test]
    fn raw_without_arithmetic_is_clean() {
        let w = Workspace::from_sources(&[(
            "crates/sim/src/x.rs",
            "fn f(a: Addr, b: Addr) -> bool {\n\
                 log(a.raw());\n\
                 a.raw() == b.raw()\n\
             }\n\
             fn log(_: u64) {}\n",
        )]);
        assert!(kinds_and_lines(&w).is_empty(), "{:?}", run(&w).findings);
    }

    /// Operand position is caught too: `base + off.raw()`.
    #[test]
    fn raw_as_right_operand_is_flagged() {
        let w = Workspace::from_sources(&[(
            "crates/sim/src/x.rs",
            "fn f(base: u64, off: Addr) -> u64 { base + off.raw() }\n",
        )]);
        let got = kinds_and_lines(&w);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].0, "casts:crates/sim/src/x.rs:f:raw");
    }

    /// The boundary files themselves are exempt: the newtype may
    /// manipulate its own representation.
    #[test]
    fn boundary_files_are_exempt() {
        let w = Workspace::from_sources(&[(
            "crates/common/src/addr.rs",
            "impl Addr {\n\
                 fn block_index(self) -> usize { (self.raw() >> 6) as usize }\n\
             }\n",
        )]);
        assert!(kinds_and_lines(&w).is_empty(), "{:?}", run(&w).findings);
    }

    /// Crates outside the cast universe (xtask-adjacent tooling) are
    /// not scanned.
    #[test]
    fn out_of_scope_crates_are_not_scanned() {
        let w = Workspace::from_sources(&[(
            "crates/bench/src/x.rs",
            "fn f(pc: u64) -> usize { pc as usize }\n",
        )]);
        let r = run(&w);
        assert_eq!(r.scanned, 0);
        assert!(r.findings.is_empty());
    }
}
