//! The token-tree layer: structure on top of the flat [`crate::lexer`]
//! stream.
//!
//! The lexer gives a total, byte-covering token stream; this module
//! adds the three structural facts the analysis passes need and a full
//! parser cannot be afforded for (xtask is zero-dep and offline):
//!
//! * **Significant tokens** — whitespace and comments dropped, each
//!   surviving token annotated with its 1-based line and whether it sits
//!   inside a `#[cfg(test)]` / `#[test]` region.
//! * **Delimiter matching** — every `(`/`[`/`{` knows its closer and
//!   vice versa, so scans can jump over nested groups.
//! * **Item extraction** — every `fn` with its bare name, its
//!   `Type::name` qualification (from the enclosing `impl`/`trait`
//!   header), and its body's token range; plus recognition of the
//!   expression forms the passes care about: path calls, method calls,
//!   macro invocations, index expressions, and division operators.
//!
//! Everything here is a deliberate approximation. It never needs to be
//! *right* about Rust, only *conservative* for the passes built on it:
//! over-reporting a call edge or an index site costs a baseline entry,
//! while under-reporting would hide a latent panic. The teeth tests in
//! [`crate::analyze::callgraph`] pin that direction.

use crate::lexer::{lex, Kind};

/// One significant token: classification, byte span, source position.
#[derive(Clone, Debug)]
pub struct SigTok {
    /// Lexer classification (never whitespace or a comment).
    pub kind: Kind,
    /// Byte offset of the first byte in the source.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: usize,
    /// Inside a `#[cfg(test)]`-attributed item or a `#[test]` fn.
    pub in_test: bool,
}

/// One extracted function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The bare function name.
    pub name: String,
    /// `Type::name` when the fn sits in an `impl`/`trait` block, else
    /// just the name.
    pub qual: String,
    /// Significant-token indices of the body's `{` and matching `}`.
    /// Declarations without a body (trait methods, extern fns) are not
    /// extracted.
    pub body: (usize, usize),
    /// The fn is test-only code.
    pub in_test: bool,
}

/// What a recognized call site invokes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `name(...)` or `path::name(...)`.
    Path,
    /// `.name(...)`.
    Method,
    /// `name!(...)`, `name![...]` or `name! {...}`.
    Macro,
}

/// One recognized call site.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// The invoked name (last path segment, method name, or macro name).
    pub name: String,
    /// The syntactic form.
    pub kind: CallKind,
    /// Significant-token index of the name.
    pub tok: usize,
    /// 1-based source line.
    pub line: usize,
}

/// The parsed file: significant tokens, delimiter matching, functions.
pub struct Tree {
    /// The significant-token stream.
    pub toks: Vec<SigTok>,
    /// `match_of[i]` is the partner index of a delimiter token (closer
    /// for an opener and vice versa), `usize::MAX` when unmatched or not
    /// a delimiter.
    pub match_of: Vec<usize>,
    /// Every function with a body, in source order.
    pub fns: Vec<FnItem>,
    source: String,
}

/// Sentinel for "no matching delimiter".
pub const NO_MATCH: usize = usize::MAX;

impl Tree {
    /// Lexes and structures one source file.
    pub fn parse(source: &str) -> Tree {
        let toks = significant(source);
        let match_of = match_delims(source, &toks);
        let mut tree = Tree { toks, match_of, fns: Vec::new(), source: source.to_string() };
        tree.fns = tree.extract_fns();
        tree
    }

    /// The text of significant token `i`.
    pub fn text(&self, i: usize) -> &str {
        &self.source[self.toks[i].start..self.toks[i].end]
    }

    /// True when token `i` is punctuation spelled `p`.
    pub fn is_punct(&self, i: usize, p: &str) -> bool {
        self.toks[i].kind == Kind::Punct && self.text(i) == p
    }

    /// True when token `i` is the identifier `id`.
    pub fn is_ident(&self, i: usize, id: &str) -> bool {
        self.toks[i].kind == Kind::Ident && self.text(i) == id
    }

    /// All call sites (path, method, macro) within the token range
    /// `[lo, hi]`, in source order.
    pub fn calls_in(&self, lo: usize, hi: usize) -> Vec<CallSite> {
        let mut out = Vec::new();
        for i in lo..=hi.min(self.toks.len().saturating_sub(1)) {
            if self.toks[i].kind != Kind::Ident {
                continue;
            }
            let Some(next) = self.toks.get(i + 1) else { continue };
            let name = self.text(i).to_string();
            if next.kind == Kind::Punct && self.text(i + 1) == "!" {
                // `name!` followed by any delimiter is a macro call;
                // `name != x` is not (the lexer makes `!=` one token).
                if let Some(open) = self.toks.get(i + 2) {
                    if open.kind == Kind::Punct && matches!(self.text(i + 2), "(" | "[" | "{") {
                        out.push(CallSite {
                            name,
                            kind: CallKind::Macro,
                            tok: i,
                            line: self.toks[i].line,
                        });
                    }
                }
                continue;
            }
            if !(next.kind == Kind::Punct && self.text(i + 1) == "(") {
                continue;
            }
            let kind = match i.checked_sub(1) {
                Some(p) if self.is_punct(p, ".") => CallKind::Method,
                // `fn name(` is a definition, not a call.
                Some(p) if self.is_ident(p, "fn") => continue,
                _ => CallKind::Path,
            };
            out.push(CallSite { name, kind, tok: i, line: self.toks[i].line });
        }
        out
    }

    /// Significant-token indices of every `[` opening an *index
    /// expression* within `[lo, hi]`: the `[` directly follows a value
    /// (identifier, literal, `)`, `]` or `?`), which distinguishes
    /// `sets[i]` from array literals, types and attributes.
    pub fn index_sites_in(&self, lo: usize, hi: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for i in lo.max(1)..=hi.min(self.toks.len().saturating_sub(1)) {
            if !self.is_punct(i, "[") {
                continue;
            }
            let prev = &self.toks[i - 1];
            let is_value_end = match prev.kind {
                Kind::Ident => !matches!(self.text(i - 1), "mut" | "dyn" | "ref" | "return"),
                Kind::Number | Kind::Str | Kind::RawStr => true,
                Kind::Punct => matches!(self.text(i - 1), ")" | "]" | "?"),
                _ => false,
            };
            if is_value_end {
                out.push(i);
            }
        }
        out
    }

    /// Significant-token indices of `/` and `%` operators within
    /// `[lo, hi]` that look like *integer* division: float operands
    /// (an `f32`/`f64` token or a float literal within three tokens on
    /// either side) and division by a nonzero integer literal are
    /// excluded — neither can panic.
    pub fn div_sites_in(&self, lo: usize, hi: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for i in lo..=hi.min(self.toks.len().saturating_sub(1)) {
            if !(self.is_punct(i, "/") || self.is_punct(i, "%")) {
                continue;
            }
            // Divisor is a nonzero integer literal: cannot panic.
            if let Some(next) = self.toks.get(i + 1) {
                if next.kind == Kind::Number {
                    let t = self.text(i + 1);
                    if !is_float_literal(t) && !is_zero_literal(t) {
                        continue;
                    }
                }
            }
            // Float context within three tokens on either side, without
            // crossing a statement boundary (`;`, `{`, `}`).
            let is_float_tok = |j: usize| {
                (self.toks[j].kind == Kind::Ident && matches!(self.text(j), "f32" | "f64"))
                    || (self.toks[j].kind == Kind::Number && is_float_literal(self.text(j)))
            };
            let is_stmt_edge = |j: usize| {
                self.toks[j].kind == Kind::Punct && matches!(self.text(j), ";" | "{" | "}")
            };
            let mut float_near = false;
            for j in (i.saturating_sub(3)..i).rev() {
                if is_stmt_edge(j) {
                    break;
                }
                float_near |= is_float_tok(j);
            }
            for j in (i + 1)..=(i + 3).min(self.toks.len() - 1) {
                if is_stmt_edge(j) {
                    break;
                }
                float_near |= is_float_tok(j);
            }
            if !float_near {
                out.push(i);
            }
        }
        out
    }

    /// Walks the significant stream and extracts every `fn` that has a
    /// body, qualified by the innermost enclosing `impl`/`trait` type.
    fn extract_fns(&self) -> Vec<FnItem> {
        let mut fns = Vec::new();
        // Stack of (body-close token, type name) for impl/trait blocks.
        let mut ctx: Vec<(usize, String)> = Vec::new();
        let mut i = 0;
        while i < self.toks.len() {
            while let Some(&(end, _)) = ctx.last() {
                if i > end {
                    ctx.pop();
                } else {
                    break;
                }
            }
            if self.toks[i].kind != Kind::Ident {
                i += 1;
                continue;
            }
            match self.text(i) {
                "impl" | "trait" => {
                    if let Some((open, name)) = self.impl_header(i) {
                        let close = self.match_of[open];
                        if close != NO_MATCH {
                            ctx.push((close, name));
                        }
                        i = open + 1;
                        continue;
                    }
                }
                "fn" => {
                    if let Some(item) = self.fn_item(i, ctx.last().map(|(_, n)| n.as_str())) {
                        // Recurse *into* the body: nested fns and
                        // closures still belong to the stream.
                        i += 1;
                        fns.push(item);
                        continue;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        fns
    }

    /// Parses an `impl`/`trait` header starting at token `at`; returns
    /// the body's `{` index and the self-type / trait name.
    ///
    /// For `impl Trait for Type` the name is `Type`; for `impl Type`
    /// and `trait Name` it is the last path segment before the body or
    /// a generic-argument list.
    fn impl_header(&self, at: usize) -> Option<(usize, String)> {
        let mut angle = 0i64;
        let mut after_for = None;
        let mut j = at + 1;
        while j < self.toks.len() {
            if self.toks[j].kind == Kind::Punct {
                match self.text(j) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "<<" => angle += 2,
                    ">>" => angle -= 2,
                    "{" if angle <= 0 => {
                        let seg_start = after_for.unwrap_or(at + 1);
                        let name = self.last_path_ident(seg_start, j)?;
                        return Some((j, name));
                    }
                    ";" => return None, // `impl Trait for Type;` form is not real Rust; bail.
                    _ => {}
                }
            } else if angle == 0 && self.is_ident(j, "for") {
                after_for = Some(j + 1);
            } else if angle == 0 && self.is_ident(j, "where") {
                // The self-type segment ends here; remember it by
                // resolving against the where-clause start.
                let seg_start = after_for.unwrap_or(at + 1);
                let name = self.last_path_ident(seg_start, j)?;
                // Continue scanning for the `{`.
                let mut k = j;
                while k < self.toks.len() {
                    if self.is_punct(k, "{") {
                        return Some((k, name));
                    }
                    if self.is_punct(k, ";") {
                        return None;
                    }
                    k += 1;
                }
                return None;
            }
            j += 1;
        }
        None
    }

    /// The last plain identifier of the path spelled in `[lo, hi)`,
    /// ignoring generic arguments — `psb_core::StreamBuffer<'a, T>`
    /// yields `StreamBuffer`.
    fn last_path_ident(&self, lo: usize, hi: usize) -> Option<String> {
        let mut angle = 0i64;
        let mut name = None;
        for j in lo..hi {
            if self.toks[j].kind == Kind::Punct {
                match self.text(j) {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "<<" => angle += 2,
                    ">>" => angle -= 2,
                    _ => {}
                }
            } else if angle <= 0 && self.toks[j].kind == Kind::Ident {
                let t = self.text(j);
                if !matches!(t, "for" | "where" | "dyn" | "mut" | "const" | "unsafe") {
                    name = Some(t.to_string());
                }
            }
        }
        name
    }

    /// Parses one `fn` item starting at the `fn` keyword; returns the
    /// item when a body follows (skipping bodyless declarations and
    /// `fn(..)` pointer types).
    fn fn_item(&self, at: usize, ctx: Option<&str>) -> Option<FnItem> {
        let name_tok = self.toks.get(at + 1)?;
        if name_tok.kind != Kind::Ident {
            return None; // `fn(` — a function-pointer type.
        }
        let name = self.text(at + 1).to_string();
        // Scan the signature for the body `{`, jumping over delimited
        // groups and tracking angle depth for generics / where clauses.
        let mut angle = 0i64;
        let mut j = at + 2;
        while j < self.toks.len() {
            if self.toks[j].kind == Kind::Punct {
                match self.text(j) {
                    "(" | "[" => {
                        let m = self.match_of[j];
                        if m == NO_MATCH {
                            return None;
                        }
                        j = m;
                    }
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "<<" => angle += 2,
                    ">>" => angle -= 2,
                    "->" => {} // return-type arrow, not an angle close
                    ";" if angle <= 0 => return None, // declaration only
                    "{" if angle <= 0 => {
                        let close = self.match_of[j];
                        if close == NO_MATCH {
                            return None;
                        }
                        let qual = match ctx {
                            Some(t) => format!("{t}::{name}"),
                            None => name.clone(),
                        };
                        return Some(FnItem {
                            name,
                            qual,
                            body: (j, close),
                            in_test: self.toks[at].in_test,
                        });
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        None
    }
}

/// True for numeric-literal text that lexes as a float (`1.5`, `2e3`).
fn is_float_literal(t: &str) -> bool {
    !t.starts_with("0x") && !t.starts_with("0b") && (t.contains('.') || t.contains('e'))
}

/// True for numeric-literal text whose value is zero.
fn is_zero_literal(t: &str) -> bool {
    let t = t.replace('_', "");
    let digits = t
        .strip_prefix("0x")
        .or_else(|| t.strip_prefix("0b"))
        .or_else(|| t.strip_prefix("0o"))
        .unwrap_or(&t);
    let digits: String = digits.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
    !digits.is_empty() && digits.chars().all(|c| c == '0')
}

/// Lexes `source` and keeps the significant tokens, annotating each
/// with its line and test-region membership.
///
/// Test regions are tracked the same way the source lints do: a
/// `#[cfg(test)]` or `#[test]` attribute arms a pending flag, and the
/// next `{` opens a region that lasts until its matching `}`.
fn significant(source: &str) -> Vec<SigTok> {
    // Byte offset -> 1-based line.
    let mut line_starts = vec![0usize];
    for (i, b) in source.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |off: usize| match line_starts.binary_search(&off) {
        Ok(i) => i + 1,
        Err(i) => i,
    };

    let raw = lex(source);
    let mut toks: Vec<SigTok> = Vec::new();
    for t in &raw {
        if matches!(t.kind, Kind::Whitespace | Kind::LineComment | Kind::BlockComment) {
            continue;
        }
        toks.push(SigTok {
            kind: t.kind,
            start: t.start,
            end: t.end,
            line: line_of(t.start),
            in_test: false,
        });
    }

    // Test-region pass over the significant stream.
    let mut depth = 0i64;
    let mut test_depth: Option<i64> = None;
    let mut pending = false;
    let text = |t: &SigTok| &source[t.start..t.end];
    let mut i = 0;
    while i < toks.len() {
        let t = text(&toks[i]);
        let kind = toks[i].kind;
        // `#[cfg(test)]`-shaped and `#[test]`-shaped attributes.
        if kind == Kind::Punct && t == "#" && i + 2 < toks.len() && text(&toks[i + 1]) == "[" {
            let is_cfg_test = text(&toks[i + 2]) == "cfg"
                && i + 4 < toks.len()
                && text(&toks[i + 3]) == "("
                && text(&toks[i + 4]) == "test";
            let is_test = text(&toks[i + 2]) == "test" && i + 3 < toks.len()
                // `#[test]` exactly, not `#[test_case::...]`.
                && text(&toks[i + 3]) == "]";
            if is_cfg_test || is_test {
                pending = true;
            }
        }
        if kind == Kind::Punct {
            match t {
                "{" => {
                    if pending && test_depth.is_none() {
                        test_depth = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                "}" => {
                    depth -= 1;
                    if let Some(td) = test_depth {
                        if depth <= td {
                            test_depth = None;
                        }
                    }
                }
                _ => {}
            }
        }
        toks[i].in_test = test_depth.is_some();
        i += 1;
    }
    toks
}

/// One stack pass matching `(`/`[`/`{` to their closers. Mismatched
/// closers are tolerated (left at [`NO_MATCH`]) — a lexer-level
/// approximation must survive macro-heavy code it cannot fully parse.
fn match_delims(source: &str, toks: &[SigTok]) -> Vec<usize> {
    let mut match_of = vec![NO_MATCH; toks.len()];
    let mut stack: Vec<(usize, u8)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != Kind::Punct {
            continue;
        }
        let b = source.as_bytes()[t.start];
        match b {
            b'(' | b'[' | b'{' => stack.push((i, b)),
            b')' | b']' | b'}' => {
                let open = match b {
                    b')' => b'(',
                    b']' => b'[',
                    _ => b'{',
                };
                if let Some(&(j, ob)) = stack.last() {
                    if ob == open {
                        stack.pop();
                        match_of[j] = i;
                        match_of[i] = j;
                    }
                }
            }
            _ => {}
        }
    }
    match_of
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_free_and_impl_fns_with_bodies() {
        let src = "fn free() { helper(); }\n\
                   impl StrideTable {\n    pub fn train(&mut self) { self.find(); }\n}\n\
                   impl Prefetcher for PsbPrefetcher {\n    fn tick(&mut self) {}\n}\n\
                   trait Obs {\n    fn hook(&self);\n    fn with_default(&self) { self.hook(); }\n}\n";
        let tree = Tree::parse(src);
        let quals: Vec<&str> = tree.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            ["free", "StrideTable::train", "PsbPrefetcher::tick", "Obs::with_default"],
            "{quals:?}"
        );
        // `fn hook(&self);` has no body and is not extracted.
        assert!(!tree.fns.iter().any(|f| f.name == "hook"));
    }

    #[test]
    fn generic_headers_and_where_clauses_resolve() {
        let src = "impl<'a, T: Ord> Wrapper<'a, T> {\n    fn get(&self) -> &T { &self.0 }\n}\n\
                   impl<K> Store<K> where K: Clone {\n    fn put(&mut self) {}\n}\n\
                   fn generic<T: Into<Vec<u8>>>(t: T) where T: Send { t.into(); }\n";
        let tree = Tree::parse(src);
        let quals: Vec<&str> = tree.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["Wrapper::get", "Store::put", "generic"], "{quals:?}");
    }

    #[test]
    fn call_kinds_are_distinguished() {
        let src = "fn f() { helper(); x.method(); path::call(); panic!(\"boom\"); \
                   let v = vec![1]; assert_eq!(1, 1); }";
        let tree = Tree::parse(src);
        let (lo, hi) = tree.fns[0].body;
        let calls = tree.calls_in(lo, hi);
        let get = |n: &str| calls.iter().find(|c| c.name == n).map(|c| c.kind);
        assert_eq!(get("helper"), Some(CallKind::Path));
        assert_eq!(get("method"), Some(CallKind::Method));
        assert_eq!(get("call"), Some(CallKind::Path));
        assert_eq!(get("panic"), Some(CallKind::Macro));
        assert_eq!(get("vec"), Some(CallKind::Macro));
        assert_eq!(get("assert_eq"), Some(CallKind::Macro));
    }

    #[test]
    fn ne_operator_is_not_a_macro() {
        let src = "fn f(a: u32, b: u32) -> bool { a != b }";
        let tree = Tree::parse(src);
        let (lo, hi) = tree.fns[0].body;
        assert!(tree.calls_in(lo, hi).is_empty());
    }

    #[test]
    fn index_sites_exclude_literals_types_and_attributes() {
        let src = "#[derive(Clone)]\nstruct S;\n\
                   fn f(xs: &[u32], i: usize) -> u32 {\n\
                       let a: [u32; 4] = [0, 1, 2, 3];\n\
                       let t = (xs,);\n\
                       a[i] + xs[i + 1] + t.0[0]\n\
                   }";
        let tree = Tree::parse(src);
        let (lo, hi) = tree.fns[0].body;
        let sites = tree.index_sites_in(lo, hi);
        let lines: Vec<usize> = sites.iter().map(|&i| tree.toks[i].line).collect();
        // Exactly the three real index expressions, all on line 6.
        assert_eq!(lines, [6, 6, 6], "{lines:?}");
    }

    #[test]
    fn div_sites_skip_floats_and_literal_divisors() {
        let src = "fn f(a: u64, b: u64, x: f64) -> u64 {\n\
                       let _ratio = x / 2.0;\n\
                       let _avg = a as f64 / b as f64;\n\
                       let _half = a / 2;\n\
                       let _rem = a % 4;\n\
                       a / b\n\
                   }";
        let tree = Tree::parse(src);
        let (lo, hi) = tree.fns[0].body;
        let sites = tree.div_sites_in(lo, hi);
        let lines: Vec<usize> = sites.iter().map(|&i| tree.toks[i].line).collect();
        assert_eq!(lines, [6], "only `a / b` can panic: {lines:?}");
    }

    #[test]
    fn division_by_zero_literal_is_kept() {
        let src = "fn f(a: u64) -> u64 { a / 0 }";
        let tree = Tree::parse(src);
        let (lo, hi) = tree.fns[0].body;
        assert_eq!(tree.div_sites_in(lo, hi).len(), 1);
    }

    #[test]
    fn test_regions_mark_fns() {
        let src = "fn live() {}\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { live(); }\n}\n\
                   fn also_live() {}\n";
        let tree = Tree::parse(src);
        let flags: Vec<(String, bool)> =
            tree.fns.iter().map(|f| (f.name.clone(), f.in_test)).collect();
        assert_eq!(
            flags,
            [
                ("live".to_string(), false),
                ("t".to_string(), true),
                ("also_live".to_string(), false)
            ],
            "{flags:?}"
        );
    }

    #[test]
    fn delimiters_match_across_nesting() {
        let src = "fn f() { g(h(1, [2, 3]), k()); }";
        let tree = Tree::parse(src);
        for (i, t) in tree.toks.iter().enumerate() {
            if t.kind == Kind::Punct && matches!(tree.text(i), "(" | "[" | "{") {
                let m = tree.match_of[i];
                assert_ne!(m, NO_MATCH, "unmatched opener at {i}");
                assert_eq!(tree.match_of[m], i, "partner symmetry");
            }
        }
    }
}
