//! The committed survivor baseline: `MUTANTS.toml`.
//!
//! Same lock-in pattern as the bench-gate's `BENCH_psb.json`: the file
//! records every mutant that is *known* to survive the kill suite, each
//! with a one-line justification (equivalent mutant, observability
//! limit, accepted gap with a tracking note). A run fails when a
//! survivor is missing from the baseline — new survivors must be either
//! killed with a test or consciously admitted here, never silently
//! accumulated.
//!
//! Parsing is the shared TOML subset in [`crate::baseline`], with
//! schema `psb-mutants-v1` and `[[survivor]]` stanzas:
//!
//! ```toml
//! schema = "psb-mutants-v1"
//!
//! [[survivor]]
//! id = "crates/core/src/stream/buffer.rs:41:17:lit-inc"
//! reason = "capacity +1 only changes allocation, not behavior"
//! ```

use crate::baseline::BaselineFile;
use std::collections::BTreeMap;
use std::path::Path;

/// The schema string this baseline requires.
pub const SCHEMA: &str = "psb-mutants-v1";

/// One baseline entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Survivor {
    /// Mutant ID (`file:line:col:op`).
    pub id: String,
    /// Why this mutant is allowed to survive.
    pub reason: String,
}

/// The parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Survivors keyed by mutant ID.
    pub survivors: BTreeMap<String, Survivor>,
}

impl Baseline {
    /// Loads and parses the baseline. A missing file is an empty
    /// baseline (first run of the gate); a malformed file is an error.
    pub fn load(path: &Path) -> Result<Self, String> {
        if !path.exists() {
            return Ok(Self::default());
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Self, String> {
        Ok(Self::from(BaselineFile::parse(text, SCHEMA, "survivor")?))
    }

    fn from(file: BaselineFile) -> Self {
        let survivors = file
            .entries
            .into_iter()
            .map(|(id, e)| (id, Survivor { id: e.id, reason: e.reason }))
            .collect();
        Baseline { survivors }
    }

    /// A paste-ready stanza for a new survivor.
    pub fn stanza(id: &str, reason: &str) -> String {
        crate::baseline::stanza("survivor", id, reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_format() {
        let text = r#"
# Survivor baseline for cargo xtask mutants.
schema = "psb-mutants-v1"

[[survivor]]
id = "crates/core/src/stream/buffer.rs:41:17:lit-inc"
reason = "capacity +1 only changes allocation, not behavior"

[[survivor]]
id = "crates/mem/src/cache.rs:9:3:cmp-lt-le" # trailing comment
reason = "equivalent: bound is never reached"
"#;
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.survivors.len(), 2);
        let s = &b.survivors["crates/core/src/stream/buffer.rs:41:17:lit-inc"];
        assert_eq!(s.reason, "capacity +1 only changes allocation, not behavior");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "schema = \"psb-mutants-v2\"",             // wrong schema
            "[[survivor]]\nid = \"x\"\nreason = \"r\"", // missing schema
            "schema = \"psb-mutants-v1\"\nid = \"x\"", // key outside stanza
            "schema = \"psb-mutants-v1\"\n[[survivor]]\nid = \"x\"", // no reason
            "schema = \"psb-mutants-v1\"\n[[survivor]]\nid = \"x\"\nreason = \"\"", // empty reason
            "schema = \"psb-mutants-v1\"\n[[survivor]]\nid = \"x\"\nreason = \"r\"\n[[survivor]]\nid = \"x\"\nreason = \"r\"", // duplicate
            "schema = \"psb-mutants-v1\"\nnot a kv line",
            "schema = \"psb-mutants-v1\"\n[[survivor]]\nid = \"x\" junk\nreason = \"r\"",
        ] {
            assert!(Baseline::parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let text =
            "schema = \"psb-mutants-v1\"\n[[survivor]]\nid = \"a\\\"b\\\\c\"\nreason = \"r\"\n";
        let b = Baseline::parse(text).unwrap();
        assert!(b.survivors.contains_key("a\"b\\c"));
    }

    #[test]
    fn missing_file_is_an_empty_baseline() {
        let b = Baseline::load(Path::new("/nonexistent/MUTANTS.toml")).unwrap();
        assert!(b.survivors.is_empty());
    }

    #[test]
    fn stanza_round_trips_through_parse() {
        let s = Baseline::stanza("crates/mem/src/x.rs:1:2:op", "equivalent");
        let b = Baseline::parse(&format!("schema = \"psb-mutants-v1\"\n{s}")).unwrap();
        assert!(b.survivors.contains_key("crates/mem/src/x.rs:1:2:op"));
    }
}
