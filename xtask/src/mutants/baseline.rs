//! The committed survivor baseline: `MUTANTS.toml`.
//!
//! Same lock-in pattern as the bench-gate's `BENCH_psb.json`: the file
//! records every mutant that is *known* to survive the kill suite, each
//! with a one-line justification (equivalent mutant, observability
//! limit, accepted gap with a tracking note). A run fails when a
//! survivor is missing from the baseline — new survivors must be either
//! killed with a test or consciously admitted here, never silently
//! accumulated.
//!
//! The format is a deliberately tiny TOML subset (xtask is zero-dep):
//!
//! ```toml
//! schema = "psb-mutants-v1"
//!
//! [[survivor]]
//! id = "crates/core/src/stream/buffer.rs:41:17:lit-inc"
//! reason = "capacity +1 only changes allocation, not behavior"
//! ```
//!
//! Parsed forms: `key = "value"` pairs, `[[survivor]]` stanza headers,
//! comments and blank lines. Anything else is a parse error — strict
//! beats lenient for a gate input.

use std::collections::BTreeMap;
use std::path::Path;

/// One baseline entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Survivor {
    /// Mutant ID (`file:line:col:op`).
    pub id: String,
    /// Why this mutant is allowed to survive.
    pub reason: String,
}

/// The parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Survivors keyed by mutant ID.
    pub survivors: BTreeMap<String, Survivor>,
}

impl Baseline {
    /// Loads and parses the baseline. A missing file is an empty
    /// baseline (first run of the gate); a malformed file is an error.
    pub fn load(path: &Path) -> Result<Self, String> {
        if !path.exists() {
            return Ok(Self::default());
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut survivors = BTreeMap::new();
        let mut schema_seen = false;
        // Fields of the stanza currently being parsed; None outside one.
        let mut current: Option<BTreeMap<String, String>> = None;

        let mut flush = |fields: BTreeMap<String, String>| -> Result<(), String> {
            let id = fields.get("id").ok_or("a [[survivor]] stanza is missing `id`")?.clone();
            let reason = fields
                .get("reason")
                .ok_or_else(|| format!("survivor {id:?} is missing `reason`"))?
                .clone();
            if reason.trim().is_empty() {
                return Err(format!("survivor {id:?} has an empty `reason`"));
            }
            if survivors.insert(id.clone(), Survivor { id: id.clone(), reason }).is_some() {
                return Err(format!("duplicate survivor {id:?}"));
            }
            Ok(())
        };

        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[survivor]]" {
                if let Some(fields) = current.take() {
                    flush(fields)?;
                }
                current = Some(BTreeMap::new());
                continue;
            }
            let Some((key, value)) = parse_kv(line) else {
                return Err(format!("line {}: cannot parse {line:?}", n + 1));
            };
            match (&mut current, key.as_str()) {
                (None, "schema") => {
                    if value != "psb-mutants-v1" {
                        return Err(format!("unsupported schema {value:?}"));
                    }
                    schema_seen = true;
                }
                (None, _) => {
                    return Err(format!("line {}: key {key:?} outside a stanza", n + 1));
                }
                (Some(fields), _) => {
                    if fields.insert(key.clone(), value).is_some() {
                        return Err(format!("line {}: duplicate key {key:?}", n + 1));
                    }
                }
            }
        }
        if let Some(fields) = current.take() {
            flush(fields)?;
        }
        if !schema_seen {
            return Err("missing `schema = \"psb-mutants-v1\"` header".to_string());
        }
        Ok(Self { survivors })
    }

    /// Serializes back to the canonical file format (used to print
    /// paste-ready stanzas for new survivors).
    pub fn stanza(id: &str, reason: &str) -> String {
        format!("[[survivor]]\nid = \"{id}\"\nreason = \"{reason}\"\n")
    }
}

/// Parses one `key = "value"` line. Values are double-quoted strings
/// with `\"` and `\\` escapes; keys are bare identifiers.
fn parse_kv(line: &str) -> Option<(String, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-') {
        return None;
    }
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?;
    let mut value = String::new();
    let mut chars = inner.chars();
    loop {
        match chars.next()? {
            '"' => break,
            '\\' => match chars.next()? {
                '"' => value.push('"'),
                '\\' => value.push('\\'),
                _ => return None,
            },
            c => value.push(c),
        }
    }
    // Only a comment may follow the closing quote.
    let tail = chars.as_str().trim();
    if !tail.is_empty() && !tail.starts_with('#') {
        return None;
    }
    Some((key.to_string(), value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_format() {
        let text = r#"
# Survivor baseline for cargo xtask mutants.
schema = "psb-mutants-v1"

[[survivor]]
id = "crates/core/src/stream/buffer.rs:41:17:lit-inc"
reason = "capacity +1 only changes allocation, not behavior"

[[survivor]]
id = "crates/mem/src/cache.rs:9:3:cmp-lt-le" # trailing comment
reason = "equivalent: bound is never reached"
"#;
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.survivors.len(), 2);
        let s = &b.survivors["crates/core/src/stream/buffer.rs:41:17:lit-inc"];
        assert_eq!(s.reason, "capacity +1 only changes allocation, not behavior");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "schema = \"psb-mutants-v2\"",             // wrong schema
            "[[survivor]]\nid = \"x\"\nreason = \"r\"", // missing schema
            "schema = \"psb-mutants-v1\"\nid = \"x\"", // key outside stanza
            "schema = \"psb-mutants-v1\"\n[[survivor]]\nid = \"x\"", // no reason
            "schema = \"psb-mutants-v1\"\n[[survivor]]\nid = \"x\"\nreason = \"\"", // empty reason
            "schema = \"psb-mutants-v1\"\n[[survivor]]\nid = \"x\"\nreason = \"r\"\n[[survivor]]\nid = \"x\"\nreason = \"r\"", // duplicate
            "schema = \"psb-mutants-v1\"\nnot a kv line",
            "schema = \"psb-mutants-v1\"\n[[survivor]]\nid = \"x\" junk\nreason = \"r\"",
        ] {
            assert!(Baseline::parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let text =
            "schema = \"psb-mutants-v1\"\n[[survivor]]\nid = \"a\\\"b\\\\c\"\nreason = \"r\"\n";
        let b = Baseline::parse(text).unwrap();
        assert!(b.survivors.contains_key("a\"b\\c"));
    }

    #[test]
    fn missing_file_is_an_empty_baseline() {
        let b = Baseline::load(Path::new("/nonexistent/MUTANTS.toml")).unwrap();
        assert!(b.survivors.is_empty());
    }
}
