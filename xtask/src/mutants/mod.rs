//! `cargo xtask mutants` — zero-dependency mutation testing.
//!
//! The bench-gate asks "did the numbers regress?"; this gate asks "do
//! the tests actually *check* anything?". The engine lexes the hot-path
//! arena files of `psb-core` and `psb-mem` (see [`TARGETS`]), generates
//! deterministic, stably-numbered mutants (see [`ops`]), applies each
//! in a scratch copy of the workspace and runs that crate's test suite
//! per mutant (see [`runner`]). A mutant the suite fails to kill is a
//! survivor; survivors must appear, with a one-line justification, in
//! the committed `MUTANTS.toml` baseline (see [`baseline`]) or the run
//! exits nonzero. New blind spots therefore cannot land silently — the
//! same lock-in pattern the bench gate uses for performance.
//!
//! Everything is plain `std`: the workspace's minimal Rust lexer
//! ([`crate::lexer`], shared with `cargo xtask analyze`) instead of a
//! parser crate, `std::thread` instead of a job-queue dependency, a tiny
//! TOML subset reader for the baseline. The engine runs fully offline.

pub mod baseline;
pub mod ops;
pub mod runner;

use baseline::Baseline;
use ops::Mutant;
use psb_obs::json::Json;
use runner::{Config, KillSuite, MutantResult, Outcome};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// The mutated files: the hot-path arenas flattened in PR 6, keyed by
/// the package whose suite forms the kill suite. `psb-core` and
/// `psb-mem` are independent crates (see the layering table), so a
/// mutant in one never needs the other's tests.
pub const TARGETS: &[(&str, &str)] = &[
    ("psb-core", "crates/core/src/predictor/stride.rs"),
    ("psb-core", "crates/core/src/predictor/markov.rs"),
    ("psb-core", "crates/core/src/predictor/pangloss.rs"),
    ("psb-core", "crates/core/src/predictor/dspatch.rs"),
    ("psb-core", "crates/core/src/stream/buffer.rs"),
    ("psb-mem", "crates/mem/src/cache.rs"),
];

/// Parsed command line.
struct Opts {
    krate: Option<String>,
    filter: Vec<String>,
    sample: Option<usize>,
    seed: u64,
    timeout: Duration,
    jobs: usize,
    list: bool,
    baseline: PathBuf,
    report: Option<PathBuf>,
}

/// Entry point for `cargo xtask mutants`.
pub fn mutants(args: &[String]) -> ExitCode {
    let root = crate::repo_root();
    let opts = match parse_opts(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask mutants: {e}");
            return ExitCode::from(2);
        }
    };

    // Generate the full deterministic mutant set for the selected
    // crates. IDs and order depend only on the committed sources.
    let mut all: Vec<Mutant> = Vec::new();
    for &(krate, rel) in TARGETS {
        if opts.krate.as_deref().is_some_and(|k| k != krate) {
            continue;
        }
        let path = root.join(rel);
        let source = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask mutants: {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        all.extend(ops::generate(rel, krate, &source));
    }
    if all.is_empty() {
        eprintln!("xtask mutants: no mutants generated (unknown --crate?)");
        return ExitCode::FAILURE;
    }

    // Optional substring filter, then optional seeded sample (CI smoke
    // mode): pick N, keep source order.
    let pool: Vec<usize> = (0..all.len())
        .filter(|&i| {
            opts.filter.is_empty() || opts.filter.iter().any(|f| all[i].id().contains(f.as_str()))
        })
        .collect();
    let selected: Vec<usize> = match opts.sample {
        Some(n) => sample_indices(pool.len(), n, opts.seed).into_iter().map(|i| pool[i]).collect(),
        None => pool,
    };
    if selected.is_empty() {
        eprintln!("xtask mutants: no mutants match the filter");
        return ExitCode::FAILURE;
    }

    if opts.list {
        println!("{:<4} {:<58} mutation", "#", "id");
        for &i in &selected {
            let m = &all[i];
            println!("{:<4} {:<58} {}", i, m.id(), m.describe());
        }
        println!(
            "xtask mutants: {} of {} mutant(s) selected across {} file(s)",
            selected.len(),
            all.len(),
            TARGETS
                .iter()
                .filter(|(k, _)| opts.krate.as_deref().is_none_or(|sel| sel == *k))
                .count(),
        );
        return ExitCode::SUCCESS;
    }

    let base = match Baseline::load(&opts.baseline) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("xtask mutants: baseline: {e}");
            return ExitCode::FAILURE;
        }
    };

    let chosen: Vec<Mutant> = selected.iter().map(|&i| all[i].clone()).collect();
    println!(
        "xtask mutants: running {} mutant(s), {} job(s), {}s timeout",
        chosen.len(),
        opts.jobs,
        opts.timeout.as_secs(),
    );
    let cfg = Config {
        root: root.clone(),
        timeout: opts.timeout,
        jobs: opts.jobs,
        suite: KillSuite::Cargo,
        verbose: true,
    };
    let results = match runner::run(&cfg, &chosen) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask mutants: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Tally per crate and collect survivors.
    let mut tally: BTreeMap<&str, [usize; 4]> = BTreeMap::new();
    let mut survivors: Vec<&Mutant> = Vec::new();
    let mut in_order: Vec<(&Mutant, Outcome, f64)> =
        results.iter().map(|r: &MutantResult| (&chosen[r.index], r.outcome, r.secs)).collect();
    in_order.sort_by_key(|(m, ..)| (m.file.clone(), m.start, m.op));
    for &(m, outcome, _) in &in_order {
        let slot = match outcome {
            Outcome::Killed => 0,
            Outcome::Timeout => 1,
            Outcome::Survived => 2,
            Outcome::Unviable => 3,
        };
        tally.entry(m.krate.as_str()).or_default()[slot] += 1;
        if outcome == Outcome::Survived {
            survivors.push(m);
        }
    }

    println!();
    println!("{:<9} {:>7}  {:<58} mutation", "outcome", "secs", "id");
    for (m, outcome, secs) in &in_order {
        println!("{:<9} {:>7.1}  {:<58} {}", outcome.name(), secs, m.id(), m.describe());
    }
    println!();
    println!(
        "{:<10} {:>7} {:>8} {:>9} {:>9} {:>7}",
        "crate", "killed", "timeout", "survived", "unviable", "score"
    );
    for (krate, [k, t, s, u]) in &tally {
        println!(
            "{:<10} {:>7} {:>8} {:>9} {:>9} {:>6.1}%",
            krate,
            k,
            t,
            s,
            u,
            score(*k, *t, *s) * 100.0,
        );
    }
    let (tk, tt, ts, tu) = tally
        .values()
        .fold((0, 0, 0, 0), |(a, b, c, d), [k, t, s, u]| (a + k, b + t, c + s, d + u));
    println!(
        "{:<10} {:>7} {:>8} {:>9} {:>9} {:>6.1}%",
        "total",
        tk,
        tt,
        ts,
        tu,
        score(tk, tt, ts) * 100.0,
    );

    if let Some(path) = &opts.report {
        let json = report_json(&opts, &in_order, &tally);
        if let Err(e) = std::fs::write(path, format!("{json}\n")) {
            eprintln!("xtask mutants: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("xtask mutants: report written to {}", path.display());
    }

    gate(&base, &survivors, &all, &results, &chosen, opts.krate.as_deref())
}

/// Kill rate: killed and timed-out mutants over all viable mutants.
fn score(killed: usize, timeout: usize, survived: usize) -> f64 {
    let viable = killed + timeout + survived;
    if viable == 0 {
        1.0
    } else {
        (killed + timeout) as f64 / viable as f64
    }
}

/// Applies the survivor baseline: fail on survivors missing from it,
/// warn about stale entries (mutant no longer generated, or no longer
/// surviving).
fn gate(
    base: &Baseline,
    survivors: &[&Mutant],
    all: &[Mutant],
    results: &[MutantResult],
    chosen: &[Mutant],
    krate_filter: Option<&str>,
) -> ExitCode {
    let mut failed = false;
    let new: Vec<&&Mutant> =
        survivors.iter().filter(|m| !base.survivors.contains_key(&m.id())).collect();
    let known = survivors.len() - new.len();
    if known > 0 {
        println!("xtask mutants: {known} survivor(s) covered by the baseline");
    }
    if !new.is_empty() {
        failed = true;
        eprintln!();
        eprintln!(
            "xtask mutants: {} NEW survivor(s) not in the baseline — either add a \
             killing test or admit each one with a justification:",
            new.len(),
        );
        eprintln!();
        for m in &new {
            eprintln!(
                "{}",
                Baseline::stanza(&m.id(), &format!("TODO: justify ({})", m.describe()))
            );
        }
    }

    // Staleness: baseline entries that no longer match a generated
    // mutant, or that were executed this run and did not survive.
    let generated: std::collections::BTreeSet<String> = all.iter().map(Mutant::id).collect();
    let survived_ids: std::collections::BTreeSet<String> =
        survivors.iter().map(|m| m.id()).collect();
    let executed: std::collections::BTreeSet<String> =
        results.iter().map(|r| chosen[r.index].id()).collect();
    for id in base.survivors.keys() {
        if generated.contains(id) {
            if executed.contains(id) && !survived_ids.contains(id) {
                eprintln!(
                    "xtask mutants: warning: stale baseline entry {id} (killed this run — \
                     remove it from the baseline)"
                );
            }
            continue;
        }
        // The entry matches no generated mutant. Under --crate, entries
        // belonging to the other crates' files are simply out of scope;
        // everything else is stale (the source moved, or the file is
        // not mutation-tested at all).
        let file = id.split(':').next().unwrap_or("");
        match TARGETS.iter().find(|(_, rel)| *rel == file) {
            Some((krate, _)) if krate_filter.is_some_and(|sel| sel != *krate) => {}
            _ => eprintln!("xtask mutants: warning: stale baseline entry {id} (no such mutant)"),
        }
    }

    if failed {
        eprintln!("xtask mutants: FAIL (new survivors)");
        ExitCode::FAILURE
    } else {
        println!("xtask mutants: ok");
        ExitCode::SUCCESS
    }
}

/// Builds the `psb-mutants-v1` report artifact.
fn report_json(
    opts: &Opts,
    in_order: &[(&Mutant, Outcome, f64)],
    tally: &BTreeMap<&str, [usize; 4]>,
) -> Json {
    Json::obj([
        ("schema", Json::str("psb-mutants-v1")),
        ("seed", Json::u64(opts.seed)),
        ("sample", opts.sample.map_or(Json::Null, |n| Json::u64(n as u64))),
        ("crate", opts.krate.as_deref().map_or(Json::Null, Json::str)),
        (
            "results",
            Json::arr(in_order.iter().map(|(m, outcome, secs)| {
                Json::obj([
                    ("id", Json::str(m.id())),
                    ("file", Json::str(&*m.file)),
                    ("crate", Json::str(&*m.krate)),
                    ("op", Json::str(m.op)),
                    ("line", Json::u64(m.line as u64)),
                    ("outcome", Json::str(outcome.name())),
                    ("secs", Json::f64((secs * 10.0).round() / 10.0)),
                    ("mutation", Json::str(m.describe())),
                ])
            })),
        ),
        (
            "summary",
            Json::arr(tally.iter().map(|(krate, [k, t, s, u])| {
                Json::obj([
                    ("crate", Json::str(*krate)),
                    ("killed", Json::u64(*k as u64)),
                    ("timeout", Json::u64(*t as u64)),
                    ("survived", Json::u64(*s as u64)),
                    ("unviable", Json::u64(*u as u64)),
                    ("score", Json::f64((score(*k, *t, *s) * 1000.0).round() / 1000.0)),
                ])
            })),
        ),
    ])
}

/// Parses the subcommand flags (see the `COMMANDS` table for the
/// synopsis; `--help` is handled by the dispatcher).
fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        krate: None,
        filter: Vec::new(),
        sample: None,
        seed: 1,
        timeout: Duration::from_secs(300),
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get().min(4)),
        list: false,
        baseline: crate::repo_root().join("MUTANTS.toml"),
        report: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |flag: &str| it.next().cloned().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--crate" => {
                let k = value("--crate")?;
                if !TARGETS.iter().any(|(krate, _)| *krate == k) {
                    return Err(format!(
                        "--crate {k:?} is not mutation-tested (try: {})",
                        targets_crates().join(", "),
                    ));
                }
                opts.krate = Some(k);
            }
            "--filter" => opts.filter.push(value("--filter")?),
            "--sample" => {
                opts.sample =
                    Some(value("--sample")?.parse().map_err(|_| "--sample needs a number")?)
            }
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|_| "--seed needs a number")?
            }
            "--timeout" => {
                opts.timeout = Duration::from_secs(
                    value("--timeout")?.parse().map_err(|_| "--timeout needs seconds")?,
                )
            }
            "--jobs" => {
                opts.jobs = value("--jobs")?.parse().map_err(|_| "--jobs needs a number")?;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".to_string());
                }
            }
            "--list" => opts.list = true,
            "--baseline" => opts.baseline = PathBuf::from(value("--baseline")?),
            "--report" => opts.report = Some(PathBuf::from(value("--report")?)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

/// The distinct crate names in [`TARGETS`].
fn targets_crates() -> Vec<&'static str> {
    let mut v: Vec<&str> = TARGETS.iter().map(|(k, _)| *k).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// SplitMix64 — the same tiny deterministic generator the workloads
/// crate uses for trace synthesis, inlined here because xtask may only
/// depend on `psb-obs` (layering rule).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Picks `n` distinct indices out of `len` with a seeded partial
/// Fisher–Yates shuffle, returned in ascending order so sampled runs
/// print in source order.
fn sample_indices(len: usize, n: usize, seed: u64) -> Vec<usize> {
    let n = n.min(len);
    let mut pool: Vec<usize> = (0..len).collect();
    let mut state = seed;
    for i in 0..n {
        let j = i + (splitmix64(&mut state) as usize) % (len - i);
        pool.swap(i, j);
    }
    let mut picked = pool[..n].to_vec();
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let a = sample_indices(100, 25, 1);
        let b = sample_indices(100, 25, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 25);
        let mut c = a.clone();
        c.dedup();
        assert_eq!(c.len(), 25, "indices must be distinct");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "ascending order");
        let d = sample_indices(100, 25, 2);
        assert_ne!(a, d, "different seeds pick different samples");
        assert_eq!(sample_indices(10, 99, 1), (0..10).collect::<Vec<_>>());
    }

    /// The lexer must cover every byte of every real source file: the
    /// engine edits files by byte span, so a lexer that drops or
    /// duplicates bytes would corrupt a scratch. Round-trip the entire
    /// workspace.
    #[test]
    fn lexer_round_trips_every_workspace_source_file() {
        let root = crate::repo_root();
        let mut checked = 0usize;
        for dir in crate::crate_dirs(&root) {
            for file in crate::rust_files(&dir.join("src")) {
                let Ok(source) = std::fs::read_to_string(&file) else {
                    continue;
                };
                let tokens = crate::lexer::lex(&source);
                let rebuilt: String = tokens.iter().map(|t| t.text(&source)).collect();
                assert_eq!(rebuilt, source, "lexer dropped bytes in {}", file.display());
                let mut pos = 0;
                for t in &tokens {
                    assert_eq!(t.start, pos, "gap in {}", file.display());
                    pos = t.end;
                }
                checked += 1;
            }
        }
        assert!(checked > 30, "expected to lex the whole workspace, got {checked} files");
    }

    /// Mutant IDs over the real targets are stable across generation
    /// runs and unique — the property MUTANTS.toml depends on.
    #[test]
    fn target_mutants_have_stable_unique_ids() {
        let root = crate::repo_root();
        let mut once: Vec<String> = Vec::new();
        let mut twice: Vec<String> = Vec::new();
        for &(krate, rel) in TARGETS {
            let source = std::fs::read_to_string(root.join(rel)).unwrap();
            once.extend(ops::generate(rel, krate, &source).iter().map(Mutant::id));
            twice.extend(ops::generate(rel, krate, &source).iter().map(Mutant::id));
        }
        assert_eq!(once, twice, "generation must be deterministic");
        assert!(!once.is_empty());
        let mut sorted = once.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), once.len(), "IDs must be unique");
    }
}
