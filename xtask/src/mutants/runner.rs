//! Mutant execution: scratch workspaces, kill-suite runs, timeouts.
//!
//! Each worker thread owns one scratch copy of the workspace under
//! `target/mutants/scratch-N` (the copy skips `.git` and `target`, so
//! it is a few MB of sources). The worker first runs the kill suite
//! unmutated — a sanity check that the suite is green *and* a warm-up
//! of the scratch's incremental build cache, which is what makes the
//! per-mutant cycle cheap (one file changed → ~seconds to rebuild).
//! Then it loops: claim a mutant from the shared cursor, splice it into
//! the scratch, run the suite under a deadline, restore the original
//! bytes, record the outcome.
//!
//! Outcomes:
//!
//! * **killed** — the suite failed: a test caught the mutation.
//! * **survived** — the suite passed: nothing noticed. Gate material.
//! * **timeout** — the suite ran past `--timeout`; mutations that hang
//!   a loop count as caught (the suite *would* fail, just not quickly).
//! * **unviable** — the mutated crate did not compile. Excluded from
//!   the score: it says nothing about test strength.

use super::ops::Mutant;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What happened to one mutant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The kill suite failed — the mutation was detected.
    Killed,
    /// The kill suite passed — the mutation went unnoticed.
    Survived,
    /// The kill suite exceeded the deadline (counts as caught).
    Timeout,
    /// The mutated crate failed to compile (excluded from scoring).
    Unviable,
}

impl Outcome {
    /// Lower-case name used in tables, reports and the baseline.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Killed => "killed",
            Outcome::Survived => "survived",
            Outcome::Timeout => "timeout",
            Outcome::Unviable => "unviable",
        }
    }
}

/// One executed mutant.
#[derive(Clone, Debug)]
pub struct MutantResult {
    /// Index into the caller's mutant list.
    pub index: usize,
    /// What happened.
    pub outcome: Outcome,
    /// Wall-clock seconds the kill suite ran.
    pub secs: f64,
}

/// How to decide whether a mutant survives.
pub enum KillSuite {
    /// The real thing: `cargo test --no-run -p <crate>` (compile step —
    /// failure means unviable) then `cargo test -q -p <crate>` with
    /// `PSB_FORCE_TICK=1`.
    Cargo,
    /// A shell command run in the scratch root (`sh -c <cmd>`); exit 0
    /// means survived, nonzero killed. No compile step, so nothing is
    /// ever unviable. Used by the engine's own tests, which must not
    /// cost a cargo build per mutant.
    #[cfg_attr(not(test), allow(dead_code))]
    Custom(String),
}

/// Execution parameters.
pub struct Config {
    /// The workspace to copy into scratches.
    pub root: PathBuf,
    /// Per-mutant deadline across compile + test.
    pub timeout: Duration,
    /// Worker thread count (each owns one scratch).
    pub jobs: usize,
    /// The kill suite.
    pub suite: KillSuite,
    /// Print one line per completed mutant.
    pub verbose: bool,
}

/// Runs every mutant and returns results in completion order. Fails
/// fast (with `Err`) when a scratch cannot be built or the unmutated
/// kill suite is not green — running mutants against a red suite would
/// classify everything as killed and report a fantasy score.
pub fn run(cfg: &Config, mutants: &[Mutant]) -> Result<Vec<MutantResult>, String> {
    let scratch_base = cfg.root.join("target").join("mutants");
    std::fs::create_dir_all(&scratch_base)
        .map_err(|e| format!("{}: {e}", scratch_base.display()))?;

    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let results: Mutex<Vec<MutantResult>> = Mutex::new(Vec::with_capacity(mutants.len()));
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let done = AtomicUsize::new(0);
    let jobs = cfg.jobs.max(1).min(mutants.len().max(1));

    std::thread::scope(|scope| {
        for worker in 0..jobs {
            let scratch = scratch_base.join(format!("scratch-{worker}"));
            let cursor = &cursor;
            let failed = &failed;
            let results = &results;
            let errors = &errors;
            let done = &done;
            scope.spawn(move || {
                if let Err(e) = worker_loop(cfg, mutants, &scratch, cursor, failed, results, done) {
                    failed.store(true, Ordering::SeqCst);
                    errors.lock().unwrap().push(e);
                }
            });
        }
    });

    let errors = errors.into_inner().unwrap();
    if !errors.is_empty() {
        return Err(errors.join("; "));
    }
    Ok(results.into_inner().unwrap())
}

/// One worker: build the scratch, verify the suite is green, then drain
/// the cursor.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    cfg: &Config,
    mutants: &[Mutant],
    scratch: &Path,
    cursor: &AtomicUsize,
    failed: &AtomicBool,
    results: &Mutex<Vec<MutantResult>>,
    done: &AtomicUsize,
) -> Result<(), String> {
    make_scratch(&cfg.root, scratch)?;

    // Green check: the unmutated suite must pass for every crate we
    // will test in this run. Warm-up deadline is generous — a cold
    // build is much slower than the per-mutant incremental one.
    let mut krates: Vec<&str> = mutants.iter().map(|m| m.krate.as_str()).collect();
    krates.sort_unstable();
    krates.dedup();
    let warmup = Instant::now() + cfg.timeout.max(Duration::from_secs(600)) * 4;
    for krate in &krates {
        match run_suite(cfg, scratch, krate, warmup) {
            Some(Outcome::Survived) => {} // suite green on pristine code
            Some(o) => {
                return Err(format!(
                    "unmutated kill suite for {krate} is not green in {} ({}); \
                     fix the tests before mutation-scoring them",
                    scratch.display(),
                    o.name(),
                ));
            }
            None => return Err(format!("unmutated kill suite for {krate} timed out")),
        }
    }

    loop {
        if failed.load(Ordering::SeqCst) {
            return Ok(());
        }
        let i = cursor.fetch_add(1, Ordering::SeqCst);
        let Some(mutant) = mutants.get(i) else {
            return Ok(());
        };
        let target = scratch.join(&mutant.file);
        let original =
            std::fs::read_to_string(&target).map_err(|e| format!("{}: {e}", target.display()))?;
        let mutated = mutant.apply(&original);
        std::fs::write(&target, &mutated).map_err(|e| format!("{}: {e}", target.display()))?;
        let started = Instant::now();
        let outcome = run_suite(cfg, scratch, &mutant.krate, started + cfg.timeout)
            .unwrap_or(Outcome::Timeout);
        let secs = started.elapsed().as_secs_f64();
        // Restore before anything can observe the scratch again.
        std::fs::write(&target, &original).map_err(|e| format!("{}: {e}", target.display()))?;
        let finished = done.fetch_add(1, Ordering::SeqCst) + 1;
        if cfg.verbose {
            println!(
                "[{finished}/{}] {:<8} {:>6.1}s  {}  {}",
                mutants.len(),
                outcome.name(),
                secs,
                mutant.id(),
                mutant.describe(),
            );
        }
        results.lock().unwrap().push(MutantResult { index: i, outcome, secs });
    }
}

/// Copies the workspace sources into `scratch`, skipping `.git`, any
/// `target` directory, and prior scratches. The scratch is reused
/// across runs (it is inside `target/`), so stale files from a previous
/// invocation are overwritten but never deleted — harmless, since only
/// files present in the current tree are compiled via the workspace
/// manifest.
fn make_scratch(root: &Path, scratch: &Path) -> Result<(), String> {
    std::fs::create_dir_all(scratch).map_err(|e| format!("{}: {e}", scratch.display()))?;
    let mut stack = vec![PathBuf::new()];
    while let Some(rel) = stack.pop() {
        let src_dir = root.join(&rel);
        let entries =
            std::fs::read_dir(&src_dir).map_err(|e| format!("{}: {e}", src_dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("{}: {e}", src_dir.display()))?;
            let name = entry.file_name();
            let name_str = name.to_string_lossy();
            if name_str == ".git" || name_str == "target" {
                continue;
            }
            let rel_child = rel.join(&name);
            let src = root.join(&rel_child);
            let dst = scratch.join(&rel_child);
            let ty = entry.file_type().map_err(|e| format!("{}: {e}", src.display()))?;
            if ty.is_dir() {
                std::fs::create_dir_all(&dst).map_err(|e| format!("{}: {e}", dst.display()))?;
                stack.push(rel_child);
            } else if ty.is_file() {
                // Skip unchanged files so incremental compilation sees
                // stable mtimes across runs.
                if !same_contents(&src, &dst) {
                    std::fs::copy(&src, &dst)
                        .map_err(|e| format!("{} -> {}: {e}", src.display(), dst.display()))?;
                }
            }
        }
    }
    Ok(())
}

/// True when both files exist with identical bytes.
fn same_contents(a: &Path, b: &Path) -> bool {
    match (std::fs::read(a), std::fs::read(b)) {
        (Ok(x), Ok(y)) => x == y,
        _ => false,
    }
}

/// Runs the kill suite in `scratch` for `krate` under `deadline`.
/// `None` means the deadline expired; otherwise the outcome.
fn run_suite(cfg: &Config, scratch: &Path, krate: &str, deadline: Instant) -> Option<Outcome> {
    match &cfg.suite {
        KillSuite::Custom(cmd) => {
            let mut c = Command::new("sh");
            c.args(["-c", cmd]).current_dir(scratch);
            match run_to_deadline(c, deadline)? {
                true => Some(Outcome::Survived),
                false => Some(Outcome::Killed),
            }
        }
        KillSuite::Cargo => {
            // Compile step first: a mutant that does not build is
            // unviable, not killed.
            let mut build = Command::new("cargo");
            build.args(["test", "-q", "--no-run", "-p", krate]).current_dir(scratch);
            build.env("PSB_FORCE_TICK", "1").env_remove("CARGO_TARGET_DIR");
            if !run_to_deadline(build, deadline)? {
                return Some(Outcome::Unviable);
            }
            let mut test = Command::new("cargo");
            test.args(["test", "-q", "-p", krate]).current_dir(scratch);
            test.env("PSB_FORCE_TICK", "1").env_remove("CARGO_TARGET_DIR");
            match run_to_deadline(test, deadline)? {
                true => Some(Outcome::Survived),
                false => Some(Outcome::Killed),
            }
        }
    }
}

/// Spawns the command with discarded output and polls it against the
/// deadline. `Some(success)` on exit, `None` on timeout (the child is
/// killed).
fn run_to_deadline(mut cmd: Command, deadline: Instant) -> Option<bool> {
    cmd.stdout(Stdio::null()).stderr(Stdio::null()).stdin(Stdio::null());
    let Ok(mut child) = cmd.spawn() else {
        return Some(false);
    };
    loop {
        match child.try_wait() {
            Ok(Some(status)) => return Some(status.success()),
            Ok(None) => {
                if Instant::now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    return None;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                return Some(false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutants::ops::generate;

    /// Builds a throwaway "workspace": one source file in a temp dir.
    fn fixture_tree(source: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "psb-mutants-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let src = dir.join("src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("fix.rs"), source).unwrap();
        dir
    }

    const FIXTURE: &str = "\
pub fn saturate(x: u64, max: u64) -> u64 {
    if x < max {
        x + 1
    } else {
        max
    }
}
";

    /// The teeth test: a deliberately broken comparator must be caught.
    /// The custom suite stands in for a real test run — it fails
    /// exactly when `x < max` is no longer present, i.e. it "tests" the
    /// comparator and nothing else. The comparison-flip mutant must
    /// come back killed, and mutants the suite cannot see must survive.
    #[test]
    fn broken_comparator_is_killed_and_unwatched_mutants_survive() {
        let root = fixture_tree(FIXTURE);
        let mutants = generate("src/fix.rs", "fixture", FIXTURE);
        assert!(mutants.iter().any(|m| m.op == "cmp-lt-le"), "{mutants:?}");
        let cfg = Config {
            root: root.clone(),
            timeout: Duration::from_secs(30),
            jobs: 2,
            suite: KillSuite::Custom("grep -q 'if x < max' src/fix.rs".to_string()),
            verbose: false,
        };
        let results = run(&cfg, &mutants).unwrap();
        assert_eq!(results.len(), mutants.len());
        for r in &results {
            let m = &mutants[r.index];
            let expected = if m.op == "cmp-lt-le" { Outcome::Killed } else { Outcome::Survived };
            assert_eq!(r.outcome, expected, "{}", m.id());
        }
        // The scratch restored every file: pristine source afterwards.
        let scratch = root.join("target/mutants/scratch-0/src/fix.rs");
        assert_eq!(std::fs::read_to_string(scratch).unwrap(), FIXTURE);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn hanging_suite_times_out() {
        let root = fixture_tree(FIXTURE);
        let mutants = generate("src/fix.rs", "fixture", FIXTURE);
        let one = &mutants[..1];
        let cfg = Config {
            root: root.clone(),
            timeout: Duration::from_millis(300),
            jobs: 1,
            // Survive instantly on pristine code (green check), hang on
            // any mutant.
            suite: KillSuite::Custom(
                "grep -q 'if x < max' src/fix.rs && grep -q 'x + 1' src/fix.rs || sleep 60"
                    .to_string(),
            ),
            verbose: false,
        };
        let results = run(&cfg, one).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].outcome, Outcome::Timeout);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn red_suite_aborts_the_run() {
        let root = fixture_tree(FIXTURE);
        let mutants = generate("src/fix.rs", "fixture", FIXTURE);
        let cfg = Config {
            root: root.clone(),
            timeout: Duration::from_secs(5),
            jobs: 1,
            suite: KillSuite::Custom("false".to_string()),
            verbose: false,
        };
        let err = run(&cfg, &mutants).unwrap_err();
        assert!(err.contains("not green"), "{err}");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
