//! Mutation operators over the token stream.
//!
//! Each operator produces [`Mutant`]s: byte-span replacements with a
//! stable identity (`file:line:col:op`). Generation is purely a
//! function of the source text, so two runs over the same tree produce
//! the same mutants in the same order — the property that makes the
//! committed `MUTANTS.toml` survivor baseline meaningful.
//!
//! The operator set:
//!
//! * comparison flips — `<`↔`<=`, `>`↔`>=`, `==`↔`!=`
//! * arithmetic swaps — `+`↔`-`, `*`↔`/`
//! * bitwise swaps — `&`↔`|`, `<<`↔`>>`
//! * logic swaps — `&&`↔`||`
//! * boundary constants — `0`↔`1`, `n`→`n±1` on decimal literals
//! * delete-stmt — remove a `continue;` / `break;` / `return …;`
//! * delete-arm — remove one arm of a `match` with two or more arms
//!
//! Binary operators are only mutated when whitespace surrounds the
//! token: the workspace is rustfmt-formatted, so `a < b` is a
//! comparison while `Vec<u64>`, `&mut x`, `|x| x` and `-1` never carry
//! spaces on both sides. This keeps the engine lexical (no type
//! information) while generating almost no uncompilable operator
//! mutants; anything that still fails to build is classified unviable
//! and excluded from the score rather than miscounted.
//!
//! Test regions (`#[cfg(test)]` items) are skipped: mutating a test
//! can only ever make the suite stricter-looking, never reveals a gap.

use crate::lexer::{lex, Kind, Token};

/// One generated mutant: a byte-span splice into a known file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mutant {
    /// Repo-relative path of the mutated file.
    pub file: String,
    /// Workspace package the file belongs to (kill-suite target).
    pub krate: String,
    /// Operator code, e.g. `cmp-lt-le`.
    pub op: &'static str,
    /// 1-based line of the mutation site.
    pub line: usize,
    /// 1-based column (in bytes) of the mutation site.
    pub col: usize,
    /// Byte span replaced in the original source.
    pub start: usize,
    /// End of the replaced span (exclusive).
    pub end: usize,
    /// The original text of the span.
    pub original: String,
    /// The replacement text.
    pub replacement: String,
}

impl Mutant {
    /// Stable identity: file, position and operator. Survivor baselines
    /// key on this, so it must not depend on generation order.
    pub fn id(&self) -> String {
        format!("{}:{}:{}:{}", self.file, self.line, self.col, self.op)
    }

    /// The mutated source text.
    pub fn apply(&self, source: &str) -> String {
        let mut out = String::with_capacity(source.len() + self.replacement.len());
        out.push_str(&source[..self.start]);
        out.push_str(&self.replacement);
        out.push_str(&source[self.end..]);
        out
    }

    /// One-line human description for tables and reports.
    pub fn describe(&self) -> String {
        let orig = compress(&self.original);
        let repl = compress(&self.replacement);
        if self.replacement.is_empty() {
            format!("delete `{orig}`")
        } else {
            format!("`{orig}` -> `{repl}`")
        }
    }
}

/// Collapses a (possibly multi-line) span to a short single-line form.
fn compress(s: &str) -> String {
    let joined: String = s.split_whitespace().collect::<Vec<_>>().join(" ");
    if joined.len() > 36 {
        format!("{}…", &joined[..joined.char_indices().take_while(|(i, _)| *i < 33).count()])
    } else {
        joined
    }
}

/// Operator-swap table: token text, replacement, operator code.
const SWAPS: &[(&str, &str, &str)] = &[
    ("<", "<=", "cmp-lt-le"),
    ("<=", "<", "cmp-le-lt"),
    (">", ">=", "cmp-gt-ge"),
    (">=", ">", "cmp-ge-gt"),
    ("==", "!=", "cmp-eq-ne"),
    ("!=", "==", "cmp-ne-eq"),
    ("+", "-", "arith-add-sub"),
    ("-", "+", "arith-sub-add"),
    ("*", "/", "arith-mul-div"),
    ("/", "*", "arith-div-mul"),
    ("&", "|", "bit-and-or"),
    ("|", "&", "bit-or-and"),
    ("<<", ">>", "shift-shl-shr"),
    (">>", "<<", "shift-shr-shl"),
    ("&&", "||", "logic-and-or"),
    ("||", "&&", "logic-or-and"),
];

/// Generates every mutant for one file. `file` is the repo-relative
/// path recorded in IDs; `krate` the package whose tests form the kill
/// suite.
pub fn generate(file: &str, krate: &str, source: &str) -> Vec<Mutant> {
    let tokens = lex(source);
    let excluded = test_regions(source, &tokens);
    let line_starts = line_starts(source);
    let mut out = Vec::new();

    let mk = |start: usize, end: usize, op: &'static str, replacement: String| {
        let (line, col) = position(&line_starts, start);
        Mutant {
            file: file.to_string(),
            krate: krate.to_string(),
            op,
            line,
            col,
            start,
            end,
            original: source[start..end].to_string(),
            replacement,
        }
    };
    let in_excluded = |start: usize| excluded.iter().any(|r| r.contains(&start));

    for (ti, t) in tokens.iter().enumerate() {
        if in_excluded(t.start) {
            continue;
        }
        match t.kind {
            Kind::Punct => {
                let text = t.text(source);
                if let Some(&(_, repl, op)) = SWAPS.iter().find(|(from, ..)| *from == text) {
                    if spaced(source, t) {
                        out.push(mk(t.start, t.end, op, repl.to_string()));
                    }
                }
            }
            Kind::Number => {
                let text = t.text(source);
                // Decimal literals only; skip tuple indexes (`pair.0`).
                if !text.bytes().all(|b| b.is_ascii_digit())
                    || prev_code_token(&tokens, ti)
                        .is_some_and(|p| p.kind == Kind::Punct && p.text(source) == ".")
                {
                    continue;
                }
                match text {
                    "0" => out.push(mk(t.start, t.end, "lit-0-1", "1".to_string())),
                    "1" => out.push(mk(t.start, t.end, "lit-1-0", "0".to_string())),
                    _ => {
                        if let Ok(n) = text.parse::<u64>() {
                            out.push(mk(t.start, t.end, "lit-inc", (n + 1).to_string()));
                            out.push(mk(t.start, t.end, "lit-dec", (n - 1).to_string()));
                        }
                    }
                }
            }
            Kind::Ident => match t.text(source) {
                kw @ ("continue" | "break") => {
                    if let Some(semi) = next_code_token(&tokens, ti)
                        .filter(|n| n.kind == Kind::Punct && n.text(source) == ";")
                    {
                        let op = if kw == "continue" { "delete-continue" } else { "delete-break" };
                        out.push(mk(t.start, semi.end, op, String::new()));
                    }
                }
                "return" => {
                    if let Some(end) = statement_end(source, &tokens, ti) {
                        out.push(mk(t.start, end, "delete-return", String::new()));
                    }
                }
                "match" => {
                    for (start, end) in match_arms(source, &tokens, ti) {
                        if !in_excluded(start) {
                            out.push(mk(start, end, "delete-arm", String::new()));
                        }
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }

    // Disambiguate mutants that share a position and operator (two
    // `delete-arm`s can start on one line only in pathological layouts,
    // but IDs must be unique unconditionally).
    dedupe_ids(&mut out);
    out
}

/// True when whitespace or a comment directly precedes *and* follows
/// the token — the rustfmt signature of a binary operator.
fn spaced(source: &str, t: &Token) -> bool {
    let before = source[..t.start].chars().next_back();
    let after = source[t.end..].chars().next();
    before.is_some_and(char::is_whitespace) && after.is_some_and(char::is_whitespace)
}

/// The previous non-whitespace, non-comment token.
fn prev_code_token(tokens: &[Token], i: usize) -> Option<&Token> {
    tokens[..i].iter().rev().find(|t| code_token(t))
}

/// The next non-whitespace, non-comment token.
fn next_code_token(tokens: &[Token], i: usize) -> Option<&Token> {
    tokens[i + 1..].iter().find(|t| code_token(t))
}

fn code_token(t: &Token) -> bool {
    !matches!(t.kind, Kind::Whitespace | Kind::LineComment | Kind::BlockComment)
}

/// Byte offset one past the `;` ending the statement opened at token
/// `i`, tracking nesting so `;` inside closures or blocks is skipped.
fn statement_end(source: &str, tokens: &[Token], i: usize) -> Option<usize> {
    let mut depth = 0i64;
    for t in &tokens[i + 1..] {
        if t.kind != Kind::Punct {
            continue;
        }
        match t.text(source) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return None; // `return x` in tail position, no `;`
                }
            }
            ";" if depth == 0 => return Some(t.end),
            _ => {}
        }
    }
    None
}

/// The arms of the `match` whose keyword is at token `i`, as deletable
/// byte spans (arm start through its trailing comma or block). Returns
/// an empty list for matches with fewer than two arms — deleting the
/// only arm can never compile.
fn match_arms(source: &str, tokens: &[Token], i: usize) -> Vec<(usize, usize)> {
    // Find the match-block `{`: the first opening brace with all
    // bracket kinds balanced (the scrutinee may contain calls/indexing
    // but, per Rust's grammar, no bare struct literals).
    let mut depth = 0i64;
    let mut ti = i + 1;
    let open = loop {
        let Some(t) = tokens.get(ti) else {
            return Vec::new();
        };
        if t.kind == Kind::Punct {
            match t.text(source) {
                "{" if depth == 0 => break ti,
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                _ => {}
            }
        }
        ti += 1;
    };
    let mut arms = Vec::new();
    let mut ti = open + 1;
    loop {
        // Skip to the start of the next arm.
        while tokens.get(ti).is_some_and(|t| !code_token(t)) {
            ti += 1;
        }
        let start_tok = match tokens.get(ti) {
            None => return Vec::new(), // unbalanced — give up quietly
            Some(t) if t.kind == Kind::Punct && t.text(source) == "}" => break,
            Some(t) => t,
        };
        let arm_start = start_tok.start;
        // Scan the pattern (and any guard) to the `=>` at depth 0.
        let mut depth = 0i64;
        let arrow = loop {
            let t = match tokens.get(ti) {
                None => return Vec::new(),
                Some(t) => t,
            };
            if t.kind == Kind::Punct {
                match t.text(source) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => break ti,
                    _ => {}
                }
            }
            ti += 1;
        };
        // The body: a braced block (optional trailing comma) or an
        // expression ending at a depth-0 comma / the match's `}`.
        ti = arrow + 1;
        while tokens.get(ti).is_some_and(|t| !code_token(t)) {
            ti += 1;
        }
        let mut arm_end;
        if tokens.get(ti).is_some_and(|t| t.kind == Kind::Punct && t.text(source) == "{") {
            let mut depth = 0i64;
            loop {
                let t = match tokens.get(ti) {
                    None => return Vec::new(),
                    Some(t) => t,
                };
                if t.kind == Kind::Punct {
                    match t.text(source) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => {
                            depth -= 1;
                            if depth == 0 {
                                arm_end = t.end;
                                ti += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                ti += 1;
            }
            // Optional comma after a block body.
            let mut tj = ti;
            while tokens.get(tj).is_some_and(|t| !code_token(t)) {
                tj += 1;
            }
            if tokens.get(tj).is_some_and(|t| t.kind == Kind::Punct && t.text(source) == ",") {
                arm_end = tokens[tj].end;
                ti = tj + 1;
            }
        } else {
            let mut depth = 0i64;
            loop {
                let t = match tokens.get(ti) {
                    None => return Vec::new(),
                    Some(t) => t,
                };
                if t.kind == Kind::Punct {
                    match t.text(source) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" if depth > 0 => depth -= 1,
                        "}" => {
                            // The match's own closing brace: the arm has
                            // no trailing comma.
                            arm_end = t.start;
                            arms.push((arm_start, arm_end));
                            return finish_arms(arms);
                        }
                        "," if depth == 0 => {
                            arm_end = t.end;
                            ti += 1;
                            break;
                        }
                        _ => {}
                    }
                }
                ti += 1;
            }
        }
        arms.push((arm_start, arm_end));
    }
    finish_arms(arms)
}

/// Drops degenerate cases: a single-arm match is never mutated.
fn finish_arms(arms: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    if arms.len() < 2 {
        Vec::new()
    } else {
        arms
    }
}

/// Byte ranges covered by `#[cfg(test)]`-attributed items: from the
/// attribute to the close of the following brace block.
fn test_regions(source: &str, tokens: &[Token]) -> Vec<std::ops::Range<usize>> {
    let mut regions = Vec::new();
    let mut search = 0;
    while let Some(pos) = source[search..].find("#[cfg(test)]") {
        let attr_start = search + pos;
        search = attr_start + 1;
        // Only honor real attribute tokens (`#` Punct), not occurrences
        // inside strings or comments.
        let Some(hash) = tokens.iter().find(|t| t.start == attr_start && t.kind == Kind::Punct)
        else {
            continue;
        };
        // Find the opening brace of the attributed item, then balance.
        let mut depth = 0i64;
        let mut end = source.len();
        let mut opened = false;
        for t in tokens.iter().filter(|t| t.start >= hash.start && t.kind == Kind::Punct) {
            match t.text(source) {
                "{" => {
                    depth += 1;
                    opened = true;
                }
                "}" => {
                    depth -= 1;
                    if opened && depth == 0 {
                        end = t.end;
                        break;
                    }
                }
                _ => {}
            }
        }
        regions.push(attr_start..end);
    }
    regions
}

/// Byte offsets at which each line starts.
fn line_starts(source: &str) -> Vec<usize> {
    std::iter::once(0)
        .chain(source.bytes().enumerate().filter(|(_, b)| *b == b'\n').map(|(i, _)| i + 1))
        .collect()
}

/// 1-based (line, column) of a byte offset.
fn position(line_starts: &[usize], offset: usize) -> (usize, usize) {
    let line = line_starts.partition_point(|&s| s <= offset);
    (line, offset - line_starts[line - 1] + 1)
}

/// Appends a discriminator to any IDs that would otherwise collide.
fn dedupe_ids(mutants: &mut [Mutant]) {
    use std::collections::BTreeMap;
    let mut by_id: BTreeMap<String, u32> = BTreeMap::new();
    for m in mutants.iter_mut() {
        let n = by_id.entry(m.id()).or_insert(0);
        *n += 1;
        if *n > 1 {
            // Shift the column marker so the formatted ID stays unique;
            // columns are 1-based so a synthetic 10_000+ column cannot
            // collide with a real site.
            m.col += 10_000 * (*n as usize - 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIXTURE: &str = "\
/// Clamps to the saturation ceiling.
pub fn saturate(x: u64, max: u64) -> u64 {
    if x < max {
        x + 1
    } else {
        max
    }
}

pub fn classify(x: u64) -> u64 {
    match x {
        0 => 1,
        n if n >= 10 => n * 2,
        n => n - 1,
    }
}

pub fn scan(xs: &[u64]) -> u64 {
    let mut total = 0;
    for &x in xs {
        if x == 0 {
            continue;
        }
        if x > 100 {
            return total;
        }
        total += x;
    }
    total
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        assert!(super::saturate(1, 3) < 4);
    }
}
";

    fn ops_of<'m>(ms: &'m [Mutant], op: &str) -> Vec<&'m Mutant> {
        ms.iter().filter(|m| m.op == op).collect()
    }

    #[test]
    fn comparison_flip_is_generated_at_the_comparator() {
        let ms = generate("fix.rs", "psb-core", FIXTURE);
        let lt = ops_of(&ms, "cmp-lt-le");
        assert_eq!(lt.len(), 1, "{lt:?}");
        assert_eq!(lt[0].original, "<");
        assert_eq!(lt[0].replacement, "<=");
        // Applying produces the deliberately broken comparator…
        let broken = lt[0].apply(FIXTURE);
        assert!(broken.contains("if x <= max {"), "{broken}");
        // …and the mutated file differs from the original exactly there.
        assert_eq!(FIXTURE.len() + 1, broken.len());
    }

    #[test]
    fn operators_inside_tests_strings_and_comments_are_skipped() {
        let ms = generate("fix.rs", "psb-core", FIXTURE);
        for m in &ms {
            assert!(!FIXTURE[..m.start].contains("#[cfg(test)]"), "mutant in test region: {m:?}");
        }
        let src = "// a < b\nlet s = \"x < y\";\n";
        assert!(generate("f.rs", "c", src).is_empty());
    }

    #[test]
    fn generics_and_unary_operators_are_not_mutated() {
        let src = "fn f(v: Vec<u64>) -> i64 {\n    let x: i64 = -1;\n    *v.first().unwrap_or(&0) as i64 * x\n}\n";
        let ms = generate("f.rs", "c", src);
        assert!(
            ms.iter().all(|m| !matches!(m.op, "cmp-lt-le" | "cmp-gt-ge" | "arith-sub-add")),
            "generic brackets / unary minus must not be flipped: {ms:?}"
        );
        // The spaced binary `*` is fair game.
        assert_eq!(ops_of(&ms, "arith-mul-div").len(), 1);
    }

    #[test]
    fn boundary_literals_and_increments() {
        let ms = generate("fix.rs", "psb-core", FIXTURE);
        assert!(!ops_of(&ms, "lit-0-1").is_empty());
        assert!(!ops_of(&ms, "lit-1-0").is_empty());
        let inc = ops_of(&ms, "lit-inc");
        assert!(inc.iter().any(|m| m.original == "100" && m.replacement == "101"), "{inc:?}");
        let dec = ops_of(&ms, "lit-dec");
        assert!(dec.iter().any(|m| m.original == "10" && m.replacement == "9"), "{dec:?}");
    }

    #[test]
    fn statement_and_arm_deletion() {
        let ms = generate("fix.rs", "psb-core", FIXTURE);
        let cont = ops_of(&ms, "delete-continue");
        assert_eq!(cont.len(), 1);
        assert!(cont[0].original.starts_with("continue"), "{cont:?}");
        assert!(cont[0].original.ends_with(';'));
        let ret = ops_of(&ms, "delete-return");
        assert_eq!(ret.len(), 1);
        assert_eq!(ret[0].original, "return total;");
        let arms = ops_of(&ms, "delete-arm");
        assert_eq!(arms.len(), 3, "{arms:?}");
        assert!(arms.iter().any(|m| m.original.trim() == "0 => 1,"));
        assert!(arms.iter().any(|m| m.original.trim() == "n => n - 1,"));
    }

    #[test]
    fn ids_are_stable_and_unique_across_runs() {
        let a = generate("fix.rs", "psb-core", FIXTURE);
        let b = generate("fix.rs", "psb-core", FIXTURE);
        assert_eq!(a, b, "generation must be deterministic");
        let mut ids: Vec<String> = a.iter().map(Mutant::id).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before, "IDs must be unique");
    }

    #[test]
    fn apply_then_revert_round_trips() {
        let ms = generate("fix.rs", "psb-core", FIXTURE);
        for m in &ms {
            let mutated = m.apply(FIXTURE);
            assert_ne!(mutated, FIXTURE, "a mutant must change the source: {m:?}");
            // Reverting = splicing the original back over the span.
            let mut reverted = String::new();
            reverted.push_str(&mutated[..m.start]);
            reverted.push_str(&m.original);
            reverted.push_str(&mutated[m.start + m.replacement.len()..]);
            assert_eq!(reverted, FIXTURE);
        }
    }
}
