//! `cargo xtask validate-artifacts` — offline shape checks for every
//! JSON artifact the workspace emits.
//!
//! Each file is parsed with the workspace's own [`psb_obs::json`]
//! parser, sniffed by its top-level keys, and checked against the
//! matching schema:
//!
//! * `psb-run-v1` — `psbsim --json`: aggregate stats, lifecycle
//!   counts, epochs, metrics registry.
//! * Chrome trace — `psbsim --trace-out`: a `traceEvents` array whose
//!   entries carry the keys Perfetto requires per phase.
//! * `psb-bench-v1` — the bench harness's `BENCH_psb.json`.
//! * `psb-sweep-v1` — `psbsweep --json`: one entry per grid cell with
//!   the cell's coordinates and aggregate statistics. A live `/report`
//!   body flagged `"partial":true` (subset of cells) also validates.
//! * `psb-sweep-journal-v1` — `psbsweep --journal`: line-oriented, one
//!   header plus one fsync'd record per completed cell. A torn final
//!   line (crash mid-append) is tolerated, exactly as `--resume`
//!   tolerates it; corruption anywhere else fails.
//! * `psb-sweep-progress-v1` — the `--serve` `/progress` body:
//!   aggregate counts, ETA and per-worker rows.
//! * `psb-analyze-v1` — `cargo xtask analyze --report`: per-pass
//!   finding lists (panic-freedom, lock-order, cast safety), the
//!   baseline accounting, and the gate verdict — which must agree with
//!   the finding lists it summarizes.

use psb_obs::json::{self, Json};
use std::process::ExitCode;

/// Entry point for the subcommand: validate every path given.
pub fn validate_artifacts(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("usage: cargo xtask validate-artifacts FILE...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in paths {
        match validate_file(path) {
            Ok(what) => println!("{path}: ok ({what})"),
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Parses one file and dispatches on its sniffed kind. Returns a short
/// human-readable description of what was validated.
fn validate_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    // Journals are line-oriented (one JSON document per line), so a
    // whole-file parse would fail; sniff the header line first.
    if let Ok(head) = json::parse(text.lines().next().unwrap_or("")) {
        if head.get("schema").and_then(Json::as_str) == Some("psb-sweep-journal-v1") {
            return validate_journal(&text);
        }
    }
    let doc = json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("psb-run-v1") => validate_run(&doc),
        Some("psb-bench-v1") => validate_bench(&doc),
        Some("psb-sweep-v1") => validate_sweep(&doc),
        Some("psb-sweep-progress-v1") => validate_progress(&doc),
        Some("psb-analyze-v1") => validate_analyze(&doc),
        Some(other) => Err(format!("unknown schema {other:?}")),
        None if doc.get("traceEvents").is_some() => validate_trace(&doc),
        None => Err("no `schema` key and no `traceEvents`: not a known artifact".to_string()),
    }
}

fn require<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing key `{key}`"))
}

fn require_u64(doc: &Json, key: &str) -> Result<u64, String> {
    require(doc, key)?.as_u64().ok_or_else(|| format!("`{key}` is not an unsigned integer"))
}

fn validate_run(doc: &Json) -> Result<String, String> {
    // A live `/report` polled mid-run is flagged partial and carries no
    // aggregate yet — only the run's identity keys.
    if matches!(doc.get("partial"), Some(Json::Bool(true)))
        && matches!(doc.get("aggregate"), Some(Json::Null))
    {
        for key in ["benchmark", "prefetcher"] {
            require(doc, key)?.as_str().ok_or_else(|| format!("`{key}` is not a string"))?;
        }
        return Ok("partial run report (mid-run /report)".to_string());
    }
    let agg = require(doc, "aggregate")?;
    let cycles = require_u64(agg, "cycles")?;
    if cycles == 0 {
        return Err("aggregate.cycles is zero — empty run?".to_string());
    }
    require(agg, "ipc")?.as_f64().ok_or("aggregate.ipc is not a number")?;
    for section in ["l1d", "l1i", "l2", "prefetch", "dtlb", "bus"] {
        require(agg, section)?;
    }
    // Lifecycle is either null (no obs attached) or carries the
    // used / evicted-unused / late accounting.
    let lifecycle = require(doc, "lifecycle")?;
    if !matches!(lifecycle, Json::Null) {
        for key in ["predicted", "issued", "filled", "used", "used_late", "evicted_unused"] {
            require_u64(lifecycle, key)?;
        }
    }
    let epochs = require(doc, "epochs")?.as_arr().ok_or("`epochs` is not an array")?;
    for (i, e) in epochs.iter().enumerate() {
        let start = require_u64(e, "start").map_err(|m| format!("epochs[{i}]: {m}"))?;
        let end = require_u64(e, "end").map_err(|m| format!("epochs[{i}]: {m}"))?;
        if end <= start {
            return Err(format!("epochs[{i}]: end {end} <= start {start}"));
        }
    }
    require(doc, "metrics")?;
    Ok(format!("run report, {} epoch(s)", epochs.len()))
}

fn validate_trace(doc: &Json) -> Result<String, String> {
    let events = require(doc, "traceEvents")?.as_arr().ok_or("`traceEvents` is not an array")?;
    for (i, e) in events.iter().enumerate() {
        let ph = require(e, "ph")
            .and_then(|p| p.as_str().ok_or_else(|| "`ph` is not a string".to_string()))
            .map_err(|m| format!("traceEvents[{i}]: {m}"))?;
        let needed: &[&str] = match ph {
            // Complete events also need a duration; counters a ts.
            "X" => &["name", "pid", "tid", "ts", "dur"],
            "i" | "C" => &["name", "pid", "tid", "ts"],
            "M" => &["name", "pid", "tid"],
            other => return Err(format!("traceEvents[{i}]: unexpected phase {other:?}")),
        };
        for key in needed {
            require(e, key).map_err(|m| format!("traceEvents[{i}] (ph {ph}): {m}"))?;
        }
    }
    Ok(format!("chrome trace, {} event(s)", events.len()))
}

fn validate_bench_rows(doc: &Json, key: &str, required: bool) -> Result<usize, String> {
    let rows = match doc.get(key) {
        Some(v) => v.as_arr().ok_or_else(|| format!("`{key}` is not an array"))?,
        None if required => return Err(format!("missing key `{key}`")),
        // `runs` only exists in artifacts written after the micro /
        // whole-run schema split; older files stay valid.
        None => return Ok(0),
    };
    for (i, r) in rows.iter().enumerate() {
        require(r, "name")
            .and_then(|n| n.as_str().ok_or_else(|| "`name` is not a string".to_string()))
            .map_err(|m| format!("{key}[{i}]: {m}"))?;
        require(r, "ns_per_iter")
            .and_then(|n| n.as_f64().ok_or_else(|| "`ns_per_iter` is not a number".to_string()))
            .map_err(|m| format!("{key}[{i}]: {m}"))?;
        require_u64(r, "iters").map_err(|m| format!("{key}[{i}]: {m}"))?;
    }
    Ok(rows.len())
}

fn validate_bench(doc: &Json) -> Result<String, String> {
    let micro = validate_bench_rows(doc, "results", true)?;
    let runs = validate_bench_rows(doc, "runs", false)?;
    Ok(format!("bench results, {micro} micro entry(ies), {runs} run entry(ies)"))
}

fn validate_sweep(doc: &Json) -> Result<String, String> {
    let cells = require(doc, "cells")?.as_arr().ok_or("`cells` is not an array")?;
    for (i, c) in cells.iter().enumerate() {
        require(c, "benchmark")
            .and_then(|b| b.as_str().ok_or_else(|| "`benchmark` is not a string".to_string()))
            .map_err(|m| format!("cells[{i}]: {m}"))?;
        require(c, "config")
            .and_then(|b| b.as_str().ok_or_else(|| "`config` is not a string".to_string()))
            .map_err(|m| format!("cells[{i}]: {m}"))?;
        require_u64(c, "scale").map_err(|m| format!("cells[{i}]: {m}"))?;
        let agg = require(c, "aggregate").map_err(|m| format!("cells[{i}]: {m}"))?;
        let cycles = require_u64(agg, "cycles").map_err(|m| format!("cells[{i}]: {m}"))?;
        if cycles == 0 {
            return Err(format!("cells[{i}]: aggregate.cycles is zero — empty cell?"));
        }
        require(agg, "ipc")
            .and_then(|v| v.as_f64().ok_or_else(|| "`ipc` is not a number".to_string()))
            .map_err(|m| format!("cells[{i}]: {m}"))?;
    }
    let partial =
        if matches!(doc.get("partial"), Some(Json::Bool(true))) { "partial " } else { "" };
    Ok(format!("{partial}sweep report, {} cell(s)", cells.len()))
}

/// Validates a line-oriented `psb-sweep-journal-v1` file: a header plus
/// complete records. The newline is the journal's commit marker, so an
/// unterminated final line — what a crash mid-append leaves behind — is
/// tolerated and reported; a torn line anywhere else, a duplicate or an
/// out-of-range index is an error.
fn validate_journal(text: &str) -> Result<String, String> {
    let mut offset = 0usize;
    let mut line_no = 0usize;
    let mut total = 0u64;
    let mut seen: Vec<u64> = Vec::new();
    let mut torn = false;
    while offset < text.len() {
        line_no += 1;
        let rest = &text[offset..];
        let Some(nl) = rest.find('\n') else {
            torn = true;
            break;
        };
        let line = &rest[..nl];
        offset += nl + 1;
        let doc = json::parse(line).map_err(|e| format!("line {line_no}: invalid JSON: {e}"))?;
        if line_no == 1 {
            total = require_u64(&doc, "total").map_err(|m| format!("line 1: {m}"))?;
            let grid = require(&doc, "grid")
                .and_then(|g| g.as_arr().ok_or_else(|| "`grid` is not an array".to_string()))
                .map_err(|m| format!("line 1: {m}"))?;
            if grid.len() as u64 != total {
                return Err(format!(
                    "line 1: grid has {} entries but total is {total}",
                    grid.len()
                ));
            }
            continue;
        }
        let index = require_u64(&doc, "index").map_err(|m| format!("line {line_no}: {m}"))?;
        if index >= total {
            return Err(format!("line {line_no}: index {index} out of range (total {total})"));
        }
        if seen.contains(&index) {
            return Err(format!("line {line_no}: duplicate record for index {index}"));
        }
        require(&doc, "cell").map_err(|m| format!("line {line_no}: {m}"))?;
        seen.push(index);
    }
    if line_no == 0 || (line_no == 1 && torn) {
        return Err("missing journal header line".to_string());
    }
    Ok(format!(
        "sweep journal, {}/{total} record(s){}",
        seen.len(),
        if torn { ", torn tail ignored" } else { "" }
    ))
}

/// Validates a `psb-analyze-v1` report: pass list, per-pass finding
/// shapes, baseline accounting, and that the `ok` verdict agrees with
/// the data (a report claiming `ok` may carry no new findings and no
/// lock cycles).
fn validate_analyze(doc: &Json) -> Result<String, String> {
    let passes = require(doc, "passes")?.as_arr().ok_or("`passes` is not an array")?;
    for (i, p) in passes.iter().enumerate() {
        match p.as_str() {
            Some("panics" | "locks" | "casts") => {}
            Some(other) => return Err(format!("passes[{i}]: unknown pass {other:?}")),
            None => return Err(format!("passes[{i}] is not a string")),
        }
    }
    if passes.is_empty() {
        return Err("`passes` is empty — the report validates nothing".to_string());
    }
    require_u64(doc, "files")?;

    let check_findings = |section: &Json, key: &str| -> Result<usize, String> {
        let findings = require(section, "findings")?.as_arr().ok_or("not an array")?;
        for (i, f) in findings.iter().enumerate() {
            for k in ["id", "file", "fn", "kind"] {
                require(f, k)
                    .and_then(|v| v.as_str().map(drop).ok_or_else(|| format!("`{k}` not a string")))
                    .map_err(|m| format!("{key}.findings[{i}]: {m}"))?;
            }
            let lines = require(f, "lines")
                .and_then(|v| v.as_arr().ok_or_else(|| "`lines` is not an array".to_string()))
                .map_err(|m| format!("{key}.findings[{i}]: {m}"))?;
            if lines.is_empty() {
                return Err(format!("{key}.findings[{i}]: empty `lines`"));
            }
            if !matches!(f.get("baselined"), Some(Json::Bool(_))) {
                return Err(format!("{key}.findings[{i}]: `baselined` is not a bool"));
            }
        }
        Ok(findings.len())
    };

    let mut total_findings = 0usize;
    if let Some(p) = doc.get("panics") {
        require_u64(p, "roots").map_err(|m| format!("panics: {m}"))?;
        require_u64(p, "reachable").map_err(|m| format!("panics: {m}"))?;
        total_findings += check_findings(p, "panics")?;
    }
    let mut cycles = 0usize;
    if let Some(l) = doc.get("locks") {
        require(l, "classes")?.as_arr().ok_or("locks.classes is not an array")?;
        let edges = require(l, "edges")?.as_arr().ok_or("locks.edges is not an array")?;
        for (i, e) in edges.iter().enumerate() {
            for k in ["from", "to", "file"] {
                require(e, k)
                    .and_then(|v| v.as_str().map(drop).ok_or_else(|| format!("`{k}` not a string")))
                    .map_err(|m| format!("locks.edges[{i}]: {m}"))?;
            }
            require_u64(e, "line").map_err(|m| format!("locks.edges[{i}]: {m}"))?;
        }
        require_u64(l, "waits").map_err(|m| format!("locks: {m}"))?;
        cycles = require(l, "cycles")?.as_arr().ok_or("locks.cycles is not an array")?.len();
    }
    if let Some(c) = doc.get("casts") {
        require_u64(c, "scanned").map_err(|m| format!("casts: {m}"))?;
        total_findings += check_findings(c, "casts")?;
    }

    let new = require_u64(doc, "new")?;
    require_u64(doc, "baselined")?;
    require(doc, "stale")?.as_arr().ok_or("`stale` is not an array")?;
    let ok = match require(doc, "ok")? {
        Json::Bool(b) => *b,
        _ => return Err("`ok` is not a bool".to_string()),
    };
    if ok && (new > 0 || cycles > 0) {
        return Err(format!(
            "verdict says ok but the report carries {new} new finding(s) and {cycles} cycle(s)"
        ));
    }
    Ok(format!(
        "analyze report, {} pass(es), {total_findings} finding(s), {new} new, verdict {}",
        passes.len(),
        if ok { "ok" } else { "FAIL" },
    ))
}

/// Validates a `psb-sweep-progress-v1` document: aggregate counts plus
/// one row per worker.
fn validate_progress(doc: &Json) -> Result<String, String> {
    let total = require_u64(doc, "total")?;
    let done = require_u64(doc, "done")?;
    if done > total {
        return Err(format!("done {done} exceeds total {total}"));
    }
    for key in ["replayed", "running", "workers_configured", "seq"] {
        require_u64(doc, key)?;
    }
    match require(doc, "eta_micros")? {
        Json::Null => {}
        v if v.as_u64().is_some() => {}
        _ => return Err("`eta_micros` is neither null nor an unsigned integer".to_string()),
    }
    let workers = require(doc, "workers")?.as_arr().ok_or("`workers` is not an array")?;
    for (i, w) in workers.iter().enumerate() {
        for key in ["id", "done", "heartbeats", "last_seq"] {
            require_u64(w, key).map_err(|m| format!("workers[{i}]: {m}"))?;
        }
        let state = require(w, "state")
            .and_then(|s| s.as_str().ok_or_else(|| "`state` is not a string".to_string()))
            .map_err(|m| format!("workers[{i}]: {m}"))?;
        if state != "running" && state != "idle" {
            return Err(format!("workers[{i}]: unexpected state {state:?}"));
        }
        require(w, "cell")
            .and_then(|s| s.as_str().ok_or_else(|| "`cell` is not a string".to_string()))
            .map_err(|m| format!("workers[{i}]: {m}"))?;
    }
    Ok(format!("progress snapshot, {done}/{total} done, {} worker row(s)", workers.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_report_shape_is_enforced() {
        let good = r#"{"schema":"psb-run-v1","benchmark":"health","prefetcher":"x",
            "aggregate":{"cycles":100,"ipc":0.5,"l1d":{},"l1i":{},"l2":{},
                         "prefetch":{},"dtlb":{},"bus":{}},
            "lifecycle":null,"epochs":[{"start":0,"end":10}],"metrics":null}"#;
        let doc = json::parse(good).unwrap();
        assert!(validate_run(&doc).is_ok());

        let bad = json::parse(&good.replace("\"end\":10", "\"end\":0")).unwrap();
        assert!(validate_run(&bad).unwrap_err().contains("end 0 <= start 0"));
    }

    #[test]
    fn trace_requires_phase_keys() {
        let good = r#"{"traceEvents":[
            {"ph":"M","name":"thread_name","pid":1,"tid":0,"args":{"name":"sb-0"}},
            {"ph":"X","name":"prefetch","pid":1,"tid":0,"ts":5,"dur":10}]}"#;
        assert!(validate_trace(&json::parse(good).unwrap()).is_ok());

        let missing_dur = r#"{"traceEvents":[{"ph":"X","name":"p","pid":1,"tid":0,"ts":5}]}"#;
        let err = validate_trace(&json::parse(missing_dur).unwrap()).unwrap_err();
        assert!(err.contains("dur"), "{err}");
    }

    #[test]
    fn bench_results_are_checked() {
        let good = r#"{"schema":"psb-bench-v1","results":[
            {"name":"a","ns_per_iter":12.5,"iters":100}]}"#;
        assert!(validate_bench(&json::parse(good).unwrap()).is_ok());

        let bad = r#"{"schema":"psb-bench-v1","results":[{"name":"a"}]}"#;
        assert!(validate_bench(&json::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn bench_runs_section_is_optional_but_checked() {
        // Post-split artifacts carry whole-run rows under `runs`.
        let split = r#"{"schema":"psb-bench-v1",
            "results":[{"name":"a","ns_per_iter":12.5,"iters":100}],
            "runs":[{"name":"Base","ns_per_iter":1.0e8,"iters":1}]}"#;
        let desc = validate_bench(&json::parse(split).unwrap()).unwrap();
        assert!(desc.contains("1 micro"), "{desc}");
        assert!(desc.contains("1 run"), "{desc}");

        let bad_runs = r#"{"schema":"psb-bench-v1","results":[],"runs":[{"name":"Base"}]}"#;
        let err = validate_bench(&json::parse(bad_runs).unwrap()).unwrap_err();
        assert!(err.contains("runs[0]"), "{err}");
    }

    #[test]
    fn sweep_cells_are_checked() {
        let good = r#"{"schema":"psb-sweep-v1","cells":[
            {"benchmark":"health","config":"Base","scale":1,
             "aggregate":{"cycles":100,"ipc":0.5}}]}"#;
        assert!(validate_sweep(&json::parse(good).unwrap()).is_ok());

        let zero = json::parse(&good.replace("\"cycles\":100", "\"cycles\":0")).unwrap();
        assert!(validate_sweep(&zero).unwrap_err().contains("cycles is zero"));

        let bad = r#"{"schema":"psb-sweep-v1","cells":[{"benchmark":"health"}]}"#;
        let err = validate_sweep(&json::parse(bad).unwrap()).unwrap_err();
        assert!(err.contains("config"), "{err}");
    }

    #[test]
    fn run_report_accepts_a_partial_live_body() {
        let partial = r#"{"schema":"psb-run-v1","benchmark":"health",
            "prefetcher":"conf-priority","partial":true,"aggregate":null}"#;
        let desc = validate_run(&json::parse(partial).unwrap()).unwrap();
        assert!(desc.contains("partial"), "{desc}");
        // Without the flag a null aggregate is still an error.
        let bad = partial.replace("\"partial\":true,", "");
        assert!(validate_run(&json::parse(&bad).unwrap()).is_err());
    }

    const JOURNAL: &str = concat!(
        "{\"schema\":\"psb-sweep-journal-v1\",\"total\":3,\"grid\":[{},{},{}]}\n",
        "{\"index\":0,\"cell\":{\"benchmark\":\"health\"}}\n",
        "{\"index\":2,\"cell\":{\"benchmark\":\"gs\"}}\n",
    );

    #[test]
    fn journal_lines_are_checked_and_torn_tail_is_tolerated() {
        let desc = validate_journal(JOURNAL).unwrap();
        assert!(desc.contains("2/3 record(s)"), "{desc}");

        // A crash mid-append leaves an unterminated final line: fine.
        let torn = format!("{JOURNAL}{{\"index\":1,\"ce");
        let desc = validate_journal(&torn).unwrap();
        assert!(desc.contains("torn tail ignored"), "{desc}");

        // A torn line *before* the end is corruption.
        let mid = JOURNAL.replace("{\"index\":0,\"cell\":{\"benchmark\":\"health\"}}", "{\"ind");
        let err = validate_journal(&mid).unwrap_err();
        assert!(err.contains("line 2"), "{err}");

        // Duplicate and out-of-range indices are errors.
        let dup = format!("{JOURNAL}{{\"index\":2,\"cell\":{{}}}}\n");
        assert!(validate_journal(&dup).unwrap_err().contains("duplicate"));
        let oob = format!("{JOURNAL}{{\"index\":9,\"cell\":{{}}}}\n");
        assert!(validate_journal(&oob).unwrap_err().contains("out of range"));

        // A header whose grid disagrees with its total is an error.
        let short = JOURNAL.replace("\"total\":3", "\"total\":4");
        assert!(validate_journal(&short).unwrap_err().contains("grid has 3"));

        // No committed header at all: error.
        assert!(validate_journal("").is_err());
        assert!(validate_journal("{\"schema\":\"psb-sweep-journal-v1\"").is_err());
    }

    #[test]
    fn journal_files_are_sniffed_by_their_header_line() {
        let path = std::env::temp_dir().join("xtask_validate_journal.jsonl");
        std::fs::write(&path, JOURNAL).unwrap();
        let desc = validate_file(path.to_str().unwrap()).unwrap();
        assert!(desc.contains("sweep journal"), "{desc}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn progress_snapshots_are_checked() {
        let good = r#"{"schema":"psb-sweep-progress-v1","total":4,"done":2,
            "replayed":1,"running":1,"workers_configured":2,"eta_micros":1500,
            "seq":9,"workers":[
              {"id":0,"state":"running","cell":"health/Base","index":2,
               "done":1,"heartbeats":4,"last_seq":9},
              {"id":1,"state":"idle","cell":"","index":null,
               "done":0,"heartbeats":0,"last_seq":0}]}"#;
        let desc = validate_progress(&json::parse(good).unwrap()).unwrap();
        assert!(desc.contains("2/4 done"), "{desc}");

        let over = good.replace("\"done\":2", "\"done\":9");
        assert!(validate_progress(&json::parse(&over).unwrap())
            .unwrap_err()
            .contains("exceeds total"));
        let bad_state = good.replace("\"idle\"", "\"sleeping\"");
        assert!(validate_progress(&json::parse(&bad_state).unwrap())
            .unwrap_err()
            .contains("unexpected state"));
        let bad_eta = good.replace("\"eta_micros\":1500", "\"eta_micros\":\"soon\"");
        assert!(validate_progress(&json::parse(&bad_eta).unwrap())
            .unwrap_err()
            .contains("eta_micros"));
    }

    #[test]
    fn analyze_reports_are_checked_and_verdict_must_agree() {
        let good = r#"{"schema":"psb-analyze-v1","passes":["panics","locks","casts"],
            "files":10,
            "panics":{"roots":2,"reachable":20,"findings":[
                {"id":"panics:a.rs:F::f:index","file":"a.rs","fn":"F::f","kind":"index",
                 "lines":[4,9],"baselined":true}]},
            "locks":{"classes":["sim/state"],"edges":[
                {"from":"sim/state","to":"serve/slot","file":"b.rs","line":7,"via":"publish"}],
                "waits":1,"cycles":[]},
            "casts":{"scanned":50,"findings":[]},
            "new":0,"baselined":1,"stale":[],"ok":true}"#;
        let desc = validate_analyze(&json::parse(good).unwrap()).unwrap();
        assert!(desc.contains("3 pass(es)"), "{desc}");
        assert!(desc.contains("verdict ok"), "{desc}");

        // A verdict that disagrees with its own counts is corruption.
        let lying = good.replace("\"new\":0", "\"new\":3");
        let err = validate_analyze(&json::parse(&lying).unwrap()).unwrap_err();
        assert!(err.contains("says ok"), "{err}");

        // Findings must carry the full shape.
        let bad = good.replace("\"kind\":\"index\",", "");
        let err = validate_analyze(&json::parse(&bad).unwrap()).unwrap_err();
        assert!(err.contains("kind"), "{err}");

        // Unknown pass names are rejected.
        let odd = good.replace("\"panics\",", "\"vibes\",");
        assert!(validate_analyze(&json::parse(&odd).unwrap()).unwrap_err().contains("vibes"));
    }

    #[test]
    fn sniffing_rejects_unknown_documents() {
        let doc = json::parse(r#"{"hello":1}"#).unwrap();
        assert!(doc.get("schema").is_none());
        // validate_file goes through the filesystem; exercise the sniff
        // logic by writing a temp file.
        let path = std::env::temp_dir().join("xtask_validate_unknown.json");
        std::fs::write(&path, r#"{"hello":1}"#).unwrap();
        let err = validate_file(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("not a known artifact"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
