//! `cargo xtask validate-artifacts` — offline shape checks for every
//! JSON artifact the workspace emits.
//!
//! Each file is parsed with the workspace's own [`psb_obs::json`]
//! parser, sniffed by its top-level keys, and checked against the
//! matching schema:
//!
//! * `psb-run-v1` — `psbsim --json`: aggregate stats, lifecycle
//!   counts, epochs, metrics registry.
//! * Chrome trace — `psbsim --trace-out`: a `traceEvents` array whose
//!   entries carry the keys Perfetto requires per phase.
//! * `psb-bench-v1` — the bench harness's `BENCH_psb.json`.
//! * `psb-sweep-v1` — `psbsweep --json`: one entry per grid cell with
//!   the cell's coordinates and aggregate statistics.

use psb_obs::json::{self, Json};
use std::process::ExitCode;

/// Entry point for the subcommand: validate every path given.
pub fn validate_artifacts(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        eprintln!("usage: cargo xtask validate-artifacts FILE...");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in paths {
        match validate_file(path) {
            Ok(what) => println!("{path}: ok ({what})"),
            Err(e) => {
                eprintln!("{path}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Parses one file and dispatches on its sniffed kind. Returns a short
/// human-readable description of what was validated.
fn validate_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("psb-run-v1") => validate_run(&doc),
        Some("psb-bench-v1") => validate_bench(&doc),
        Some("psb-sweep-v1") => validate_sweep(&doc),
        Some(other) => Err(format!("unknown schema {other:?}")),
        None if doc.get("traceEvents").is_some() => validate_trace(&doc),
        None => Err("no `schema` key and no `traceEvents`: not a known artifact".to_string()),
    }
}

fn require<'a>(doc: &'a Json, key: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("missing key `{key}`"))
}

fn require_u64(doc: &Json, key: &str) -> Result<u64, String> {
    require(doc, key)?.as_u64().ok_or_else(|| format!("`{key}` is not an unsigned integer"))
}

fn validate_run(doc: &Json) -> Result<String, String> {
    let agg = require(doc, "aggregate")?;
    let cycles = require_u64(agg, "cycles")?;
    if cycles == 0 {
        return Err("aggregate.cycles is zero — empty run?".to_string());
    }
    require(agg, "ipc")?.as_f64().ok_or("aggregate.ipc is not a number")?;
    for section in ["l1d", "l1i", "l2", "prefetch", "dtlb", "bus"] {
        require(agg, section)?;
    }
    // Lifecycle is either null (no obs attached) or carries the
    // used / evicted-unused / late accounting.
    let lifecycle = require(doc, "lifecycle")?;
    if !matches!(lifecycle, Json::Null) {
        for key in ["predicted", "issued", "filled", "used", "used_late", "evicted_unused"] {
            require_u64(lifecycle, key)?;
        }
    }
    let epochs = require(doc, "epochs")?.as_arr().ok_or("`epochs` is not an array")?;
    for (i, e) in epochs.iter().enumerate() {
        let start = require_u64(e, "start").map_err(|m| format!("epochs[{i}]: {m}"))?;
        let end = require_u64(e, "end").map_err(|m| format!("epochs[{i}]: {m}"))?;
        if end <= start {
            return Err(format!("epochs[{i}]: end {end} <= start {start}"));
        }
    }
    require(doc, "metrics")?;
    Ok(format!("run report, {} epoch(s)", epochs.len()))
}

fn validate_trace(doc: &Json) -> Result<String, String> {
    let events = require(doc, "traceEvents")?.as_arr().ok_or("`traceEvents` is not an array")?;
    for (i, e) in events.iter().enumerate() {
        let ph = require(e, "ph")
            .and_then(|p| p.as_str().ok_or_else(|| "`ph` is not a string".to_string()))
            .map_err(|m| format!("traceEvents[{i}]: {m}"))?;
        let needed: &[&str] = match ph {
            // Complete events also need a duration; counters a ts.
            "X" => &["name", "pid", "tid", "ts", "dur"],
            "i" | "C" => &["name", "pid", "tid", "ts"],
            "M" => &["name", "pid", "tid"],
            other => return Err(format!("traceEvents[{i}]: unexpected phase {other:?}")),
        };
        for key in needed {
            require(e, key).map_err(|m| format!("traceEvents[{i}] (ph {ph}): {m}"))?;
        }
    }
    Ok(format!("chrome trace, {} event(s)", events.len()))
}

fn validate_bench_rows(doc: &Json, key: &str, required: bool) -> Result<usize, String> {
    let rows = match doc.get(key) {
        Some(v) => v.as_arr().ok_or_else(|| format!("`{key}` is not an array"))?,
        None if required => return Err(format!("missing key `{key}`")),
        // `runs` only exists in artifacts written after the micro /
        // whole-run schema split; older files stay valid.
        None => return Ok(0),
    };
    for (i, r) in rows.iter().enumerate() {
        require(r, "name")
            .and_then(|n| n.as_str().ok_or_else(|| "`name` is not a string".to_string()))
            .map_err(|m| format!("{key}[{i}]: {m}"))?;
        require(r, "ns_per_iter")
            .and_then(|n| n.as_f64().ok_or_else(|| "`ns_per_iter` is not a number".to_string()))
            .map_err(|m| format!("{key}[{i}]: {m}"))?;
        require_u64(r, "iters").map_err(|m| format!("{key}[{i}]: {m}"))?;
    }
    Ok(rows.len())
}

fn validate_bench(doc: &Json) -> Result<String, String> {
    let micro = validate_bench_rows(doc, "results", true)?;
    let runs = validate_bench_rows(doc, "runs", false)?;
    Ok(format!("bench results, {micro} micro entry(ies), {runs} run entry(ies)"))
}

fn validate_sweep(doc: &Json) -> Result<String, String> {
    let cells = require(doc, "cells")?.as_arr().ok_or("`cells` is not an array")?;
    for (i, c) in cells.iter().enumerate() {
        require(c, "benchmark")
            .and_then(|b| b.as_str().ok_or_else(|| "`benchmark` is not a string".to_string()))
            .map_err(|m| format!("cells[{i}]: {m}"))?;
        require(c, "config")
            .and_then(|b| b.as_str().ok_or_else(|| "`config` is not a string".to_string()))
            .map_err(|m| format!("cells[{i}]: {m}"))?;
        require_u64(c, "scale").map_err(|m| format!("cells[{i}]: {m}"))?;
        let agg = require(c, "aggregate").map_err(|m| format!("cells[{i}]: {m}"))?;
        let cycles = require_u64(agg, "cycles").map_err(|m| format!("cells[{i}]: {m}"))?;
        if cycles == 0 {
            return Err(format!("cells[{i}]: aggregate.cycles is zero — empty cell?"));
        }
        require(agg, "ipc")
            .and_then(|v| v.as_f64().ok_or_else(|| "`ipc` is not a number".to_string()))
            .map_err(|m| format!("cells[{i}]: {m}"))?;
    }
    Ok(format!("sweep report, {} cell(s)", cells.len()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_report_shape_is_enforced() {
        let good = r#"{"schema":"psb-run-v1","benchmark":"health","prefetcher":"x",
            "aggregate":{"cycles":100,"ipc":0.5,"l1d":{},"l1i":{},"l2":{},
                         "prefetch":{},"dtlb":{},"bus":{}},
            "lifecycle":null,"epochs":[{"start":0,"end":10}],"metrics":null}"#;
        let doc = json::parse(good).unwrap();
        assert!(validate_run(&doc).is_ok());

        let bad = json::parse(&good.replace("\"end\":10", "\"end\":0")).unwrap();
        assert!(validate_run(&bad).unwrap_err().contains("end 0 <= start 0"));
    }

    #[test]
    fn trace_requires_phase_keys() {
        let good = r#"{"traceEvents":[
            {"ph":"M","name":"thread_name","pid":1,"tid":0,"args":{"name":"sb-0"}},
            {"ph":"X","name":"prefetch","pid":1,"tid":0,"ts":5,"dur":10}]}"#;
        assert!(validate_trace(&json::parse(good).unwrap()).is_ok());

        let missing_dur = r#"{"traceEvents":[{"ph":"X","name":"p","pid":1,"tid":0,"ts":5}]}"#;
        let err = validate_trace(&json::parse(missing_dur).unwrap()).unwrap_err();
        assert!(err.contains("dur"), "{err}");
    }

    #[test]
    fn bench_results_are_checked() {
        let good = r#"{"schema":"psb-bench-v1","results":[
            {"name":"a","ns_per_iter":12.5,"iters":100}]}"#;
        assert!(validate_bench(&json::parse(good).unwrap()).is_ok());

        let bad = r#"{"schema":"psb-bench-v1","results":[{"name":"a"}]}"#;
        assert!(validate_bench(&json::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn bench_runs_section_is_optional_but_checked() {
        // Post-split artifacts carry whole-run rows under `runs`.
        let split = r#"{"schema":"psb-bench-v1",
            "results":[{"name":"a","ns_per_iter":12.5,"iters":100}],
            "runs":[{"name":"Base","ns_per_iter":1.0e8,"iters":1}]}"#;
        let desc = validate_bench(&json::parse(split).unwrap()).unwrap();
        assert!(desc.contains("1 micro"), "{desc}");
        assert!(desc.contains("1 run"), "{desc}");

        let bad_runs = r#"{"schema":"psb-bench-v1","results":[],"runs":[{"name":"Base"}]}"#;
        let err = validate_bench(&json::parse(bad_runs).unwrap()).unwrap_err();
        assert!(err.contains("runs[0]"), "{err}");
    }

    #[test]
    fn sweep_cells_are_checked() {
        let good = r#"{"schema":"psb-sweep-v1","cells":[
            {"benchmark":"health","config":"Base","scale":1,
             "aggregate":{"cycles":100,"ipc":0.5}}]}"#;
        assert!(validate_sweep(&json::parse(good).unwrap()).is_ok());

        let zero = json::parse(&good.replace("\"cycles\":100", "\"cycles\":0")).unwrap();
        assert!(validate_sweep(&zero).unwrap_err().contains("cycles is zero"));

        let bad = r#"{"schema":"psb-sweep-v1","cells":[{"benchmark":"health"}]}"#;
        let err = validate_sweep(&json::parse(bad).unwrap()).unwrap_err();
        assert!(err.contains("config"), "{err}");
    }

    #[test]
    fn sniffing_rejects_unknown_documents() {
        let doc = json::parse(r#"{"hello":1}"#).unwrap();
        assert!(doc.get("schema").is_none());
        // validate_file goes through the filesystem; exercise the sniff
        // logic by writing a temp file.
        let path = std::env::temp_dir().join("xtask_validate_unknown.json");
        std::fs::write(&path, r#"{"hello":1}"#).unwrap();
        let err = validate_file(path.to_str().unwrap()).unwrap_err();
        assert!(err.contains("not a known artifact"), "{err}");
        let _ = std::fs::remove_file(&path);
    }
}
