//! `cargo xtask` — workspace automation, pure std so it runs offline.
//!
//! Subcommands:
//!
//! * `lint` — run `cargo fmt --check` and `cargo clippy -- -D warnings`
//!   when those components are installed, then always run the
//!   workspace's own source lints (see [`lints`]) and the crate-layering
//!   checker (see [`layering`]). Exits nonzero on any finding, so it
//!   works as a CI gate.
//! * `model` — build the workspace with `--cfg psb_model` and run the
//!   concurrency model-checker suites (`tests/model.rs` in `psb-model`,
//!   `psb-sim` and `psb-workloads`): the sweep worker pool and the trace
//!   cache are explored across thousands of thread interleavings,
//!   failing with a replayable schedule string on any deadlock, lost
//!   update or panic. Tune with `PSB_MODEL_DFS` / `PSB_MODEL_RANDOM` /
//!   `PSB_MODEL_PREEMPTIONS` / `PSB_MODEL_SEED`; pin one interleaving
//!   with `PSB_MODEL_REPLAY=<schedule>`.
//! * `validate-artifacts <file>...` — parse each emitted JSON artifact
//!   (`psb-run-v1` reports, Chrome traces, `psb-bench-v1` results) and
//!   check its shape, so CI catches a malformed writer before a human
//!   loads the file into Perfetto or a plotting script.
//! * `bench-gate` — re-run the micro benches and fail if any row
//!   regressed beyond a tolerance against the committed
//!   `BENCH_psb.json` baseline (see [`benchgate`]).
//! * `mutants` — mutation-test the hot-path files against the committed
//!   `MUTANTS.toml` survivor baseline (see [`mutants`]).
//! * `analyze` — token-tree semantic analysis: hot-path panic-freedom,
//!   static lock-order, cast/unit safety, gated against the committed
//!   `PANICS.toml` baseline (see [`analyze`]).

mod analyze;
mod baseline;
mod benchgate;
mod layering;
mod lexer;
mod lints;
mod mutants;
mod validate;

use lints::Finding;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

/// One subcommand: its name, the argument synopsis shown in the usage
/// line, the indented help lines, and the handler. The dispatch match
/// and the usage text used to be maintained separately and drifted (the
/// same class of bug as the psbsim `usage()` drift fixed in PR 4); this
/// table is now the single source of truth for both.
struct Cmd {
    name: &'static str,
    synopsis: &'static str,
    help: &'static [&'static str],
    run: fn(&[String]) -> ExitCode,
}

const COMMANDS: &[Cmd] = &[
    Cmd {
        name: "lint",
        synopsis: "[--src-only]",
        help: &[
            "run fmt + clippy (when available), source lints",
            "and the crate-layering checker",
            "  --src-only        skip the fmt/clippy toolchain passes",
        ],
        run: lint,
    },
    Cmd {
        name: "model",
        synopsis: "[TESTARGS...]",
        help: &[
            "run the concurrency model checker (--cfg psb_model)",
            "over the sweep pool and trace cache; extra args go",
            "to the test binaries (e.g. --nocapture)",
        ],
        run: model,
    },
    Cmd {
        name: "validate-artifacts",
        synopsis: "FILE...",
        help: &[
            "parse and shape-check emitted JSON artifacts",
            "(run reports, Chrome traces, bench results)",
        ],
        run: validate::validate_artifacts,
    },
    Cmd {
        name: "bench-gate",
        synopsis: "[--tolerance FRACTION] [--baseline FILE]",
        help: &[
            "re-run the micro benches and fail on regressions",
            "beyond --tolerance (fraction, default 0.25) against",
            "the committed BENCH_psb.json (or --baseline FILE)",
        ],
        run: benchgate::bench_gate,
    },
    Cmd {
        name: "mutants",
        synopsis: "[--crate NAME] [--filter SUBSTR] [--sample N] [--seed S] [--timeout SECS] [--jobs N] [--list] [--baseline FILE] [--report FILE]",
        help: &[
            "mutation-test the hot-path files of psb-core/psb-mem:",
            "generate mutants, run the kill suite per mutant in a",
            "scratch workspace, and fail on any survivor missing",
            "from the committed MUTANTS.toml baseline",
            "  --crate NAME      restrict to one crate (psb-core | psb-mem)",
            "  --filter SUBSTR   keep only mutants whose id contains SUBSTR (repeatable)",
            "  --sample N        seeded sample of N mutants (CI smoke mode)",
            "  --seed S          sample seed (default 1)",
            "  --timeout SECS    per-mutant kill-suite timeout (default 300)",
            "  --jobs N          parallel workers (default: min(4, cores))",
            "  --list            print the mutant table without running",
            "  --baseline FILE   survivor baseline (default MUTANTS.toml)",
            "  --report FILE     write a psb-mutants-v1 JSON report",
        ],
        run: mutants::mutants,
    },
    Cmd {
        name: "analyze",
        synopsis: "[--pass panics|locks|casts] [--baseline FILE] [--report FILE]",
        help: &[
            "token-tree semantic analysis over the workspace:",
            "hot-path panic-freedom (call graph rooted at the",
            "engine/memory entry points), static lock-order",
            "(fails on cycles), and cast/unit safety; panic and",
            "cast findings gate against the committed PANICS.toml",
            "  --pass NAME       run one pass (repeatable; default all)",
            "  --baseline FILE   finding baseline (default PANICS.toml)",
            "  --report FILE     write a psb-analyze-v1 JSON report",
        ],
        run: analyze::analyze,
    },
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    if matches!(cmd, "" | "help" | "--help" | "-h") {
        return usage(if cmd.is_empty() { 2 } else { 0 });
    }
    let Some(c) = COMMANDS.iter().find(|c| c.name == cmd) else {
        eprintln!("xtask: unknown subcommand {cmd:?}");
        return usage(2);
    };
    let rest = &args[1..];
    // Every subcommand accepts --help, handled here so a handler cannot
    // forget it.
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: cargo xtask {} {}", c.name, c.synopsis);
        for line in c.help {
            println!("  {line}");
        }
        return ExitCode::SUCCESS;
    }
    (c.run)(rest)
}

/// Prints the usage text — synopsis line and per-command help — derived
/// entirely from [`COMMANDS`].
fn usage(code: u8) -> ExitCode {
    let synopsis: Vec<String> = COMMANDS
        .iter()
        .map(|c| {
            if c.synopsis.is_empty() {
                c.name.to_string()
            } else {
                format!("{} {}", c.name, c.synopsis)
            }
        })
        .collect();
    eprintln!("usage: cargo xtask <{}>", synopsis.join(" | "));
    eprintln!();
    for c in COMMANDS {
        let mut first = true;
        for line in c.help {
            if first && !line.starts_with("  ") {
                eprintln!("  {:<19} {line}", c.name);
                first = false;
            } else {
                eprintln!("  {:<19} {line}", "");
            }
        }
    }
    eprintln!();
    eprintln!("every subcommand also accepts --help");
    ExitCode::from(code)
}

/// Repo root: the parent of the directory containing this crate.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().expect("xtask always lives one level below the repo root").to_path_buf()
}

fn lint(flags: &[String]) -> ExitCode {
    let src_only = flags.iter().any(|f| f == "--src-only");
    let root = repo_root();
    let mut failed = false;

    if !src_only {
        failed |= !run_toolchain_pass(
            &root,
            "rustfmt",
            &["fmt", "--version"],
            &["fmt", "--all", "--check"],
        );
        failed |= !run_toolchain_pass(
            &root,
            "clippy",
            &["clippy", "--version"],
            &["clippy", "--workspace", "--all-targets", "--", "-D", "warnings"],
        );
    }

    let mut findings = lint_sources(&root);
    findings.extend(layering::check_layering(&root));
    for f in &findings {
        println!("{f}");
    }
    if !findings.is_empty() {
        eprintln!("xtask lint: {} finding(s)", findings.len());
        failed = true;
    } else {
        println!("xtask lint: source lints clean");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The model-checked packages: the checker itself (self-tests including
/// a seeded-bug detection test), the sweep worker pool, the shared
/// trace cache, and the serving plane's snapshot handoff.
const MODEL_PACKAGES: [&str; 4] = ["psb-model", "psb-serve", "psb-sim", "psb-workloads"];

/// `cargo xtask model` — run the `tests/model.rs` suites under
/// `--cfg psb_model`, serializing test execution (the scheduler uses
/// process-global state, one exploration at a time).
fn model(extra: &[String]) -> ExitCode {
    let root = repo_root();
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.split_whitespace().any(|f| f == "psb_model") {
        rustflags.push_str(" --cfg psb_model");
    }
    let mut cmd = Command::new("cargo");
    cmd.arg("test");
    for p in MODEL_PACKAGES {
        cmd.args(["-p", p]);
    }
    cmd.args(["--test", "model", "--", "--test-threads=1"]);
    cmd.args(extra);
    cmd.env("RUSTFLAGS", rustflags.trim()).current_dir(&root);
    println!("xtask model: exploring interleavings (RUSTFLAGS=--cfg psb_model)");
    match cmd.status() {
        Ok(s) if s.success() => {
            println!("xtask model: all model suites clean");
            ExitCode::SUCCESS
        }
        Ok(_) => {
            eprintln!(
                "xtask model: violation found — rerun the printed schedule with \
                 PSB_MODEL_REPLAY=<schedule> cargo xtask model -- --nocapture"
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask model: could not spawn cargo: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Run one `cargo <tool>` pass if the component is installed; returns
/// false only when the tool ran and failed. A missing component is a
/// warning, not a failure — offline containers often lack rustup.
fn run_toolchain_pass(root: &Path, name: &str, probe: &[&str], args: &[&str]) -> bool {
    let available = Command::new("cargo")
        .args(probe)
        .current_dir(root)
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false);
    if !available {
        eprintln!("xtask lint: {name} not installed, skipping");
        return true;
    }
    println!("xtask lint: running cargo {}", args.join(" "));
    let status = Command::new("cargo").args(args).current_dir(root).status();
    match status {
        Ok(s) if s.success() => true,
        Ok(_) => {
            eprintln!("xtask lint: cargo {} failed", args.join(" "));
            false
        }
        Err(e) => {
            eprintln!("xtask lint: could not spawn cargo: {e}");
            false
        }
    }
}

/// Apply every source lint to the workspace's `src` trees.
fn lint_sources(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for crate_dir in crate_dirs(root) {
        let src = crate_dir.join("src");
        let lib = std::fs::read_to_string(src.join("lib.rs"))
            .or_else(|_| std::fs::read_to_string(src.join("main.rs")))
            .unwrap_or_default();
        let check_docs = lints::wants_missing_docs(&lib);
        for file in rust_files(&src) {
            let Ok(source) = std::fs::read_to_string(&file) else {
                continue;
            };
            let rel = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
            findings.extend(lints::lint_file(&rel, &source, check_docs));
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Every crate directory in the workspace: the root package, all
/// `crates/*`, and xtask itself.
fn crate_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.to_path_buf(), root.join("xtask")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                dirs.push(p);
            }
        }
    }
    dirs.sort();
    dirs
}

/// All `.rs` files below `dir`, recursively.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}
