//! `cargo xtask` — workspace automation, pure std so it runs offline.
//!
//! Subcommands:
//!
//! * `lint` — run `cargo fmt --check` and `cargo clippy -- -D warnings`
//!   when those components are installed, then always run the
//!   workspace's own source lints (see [`lints`]). Exits nonzero on any
//!   finding, so it works as a CI gate.
//! * `validate-artifacts <file>...` — parse each emitted JSON artifact
//!   (`psb-run-v1` reports, Chrome traces, `psb-bench-v1` results) and
//!   check its shape, so CI catches a malformed writer before a human
//!   loads the file into Perfetto or a plotting script.

mod lints;
mod validate;

use lints::Finding;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "lint" => lint(&args[1..]),
        "validate-artifacts" => validate::validate_artifacts(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask <lint [--src-only] | validate-artifacts FILE...>");
            eprintln!();
            eprintln!("  lint                run fmt + clippy (when available) and source lints");
            eprintln!("    --src-only        skip the fmt/clippy toolchain passes");
            eprintln!("  validate-artifacts  parse and shape-check emitted JSON artifacts");
            eprintln!("                      (run reports, Chrome traces, bench results)");
            ExitCode::from(2)
        }
    }
}

/// Repo root: the parent of the directory containing this crate.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().expect("xtask always lives one level below the repo root").to_path_buf()
}

fn lint(flags: &[String]) -> ExitCode {
    let src_only = flags.iter().any(|f| f == "--src-only");
    let root = repo_root();
    let mut failed = false;

    if !src_only {
        failed |= !run_toolchain_pass(
            &root,
            "rustfmt",
            &["fmt", "--version"],
            &["fmt", "--all", "--check"],
        );
        failed |= !run_toolchain_pass(
            &root,
            "clippy",
            &["clippy", "--version"],
            &["clippy", "--workspace", "--all-targets", "--", "-D", "warnings"],
        );
    }

    let findings = lint_sources(&root);
    for f in &findings {
        println!("{f}");
    }
    if !findings.is_empty() {
        eprintln!("xtask lint: {} finding(s)", findings.len());
        failed = true;
    } else {
        println!("xtask lint: source lints clean");
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Run one `cargo <tool>` pass if the component is installed; returns
/// false only when the tool ran and failed. A missing component is a
/// warning, not a failure — offline containers often lack rustup.
fn run_toolchain_pass(root: &Path, name: &str, probe: &[&str], args: &[&str]) -> bool {
    let available = Command::new("cargo")
        .args(probe)
        .current_dir(root)
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false);
    if !available {
        eprintln!("xtask lint: {name} not installed, skipping");
        return true;
    }
    println!("xtask lint: running cargo {}", args.join(" "));
    let status = Command::new("cargo").args(args).current_dir(root).status();
    match status {
        Ok(s) if s.success() => true,
        Ok(_) => {
            eprintln!("xtask lint: cargo {} failed", args.join(" "));
            false
        }
        Err(e) => {
            eprintln!("xtask lint: could not spawn cargo: {e}");
            false
        }
    }
}

/// Apply every source lint to the workspace's `src` trees.
fn lint_sources(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for crate_dir in crate_dirs(root) {
        let src = crate_dir.join("src");
        let lib = std::fs::read_to_string(src.join("lib.rs"))
            .or_else(|_| std::fs::read_to_string(src.join("main.rs")))
            .unwrap_or_default();
        let check_docs = lints::wants_missing_docs(&lib);
        for file in rust_files(&src) {
            let Ok(source) = std::fs::read_to_string(&file) else {
                continue;
            };
            let rel = file.strip_prefix(root).unwrap_or(&file).to_string_lossy().replace('\\', "/");
            findings.extend(lints::lint_addr_arith(&rel, &source));
            findings.extend(lints::lint_unwrap(&rel, &source));
            findings.extend(lints::lint_hashmap_report(&rel, &source));
            findings.extend(lints::lint_println(&rel, &source));
            if check_docs {
                findings.extend(lints::lint_missing_docs(&rel, &source));
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Every crate directory in the workspace: the root package, all
/// `crates/*`, and xtask itself.
fn crate_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.to_path_buf(), root.join("xtask")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                dirs.push(p);
            }
        }
    }
    dirs.sort();
    dirs
}

/// All `.rs` files below `dir`, recursively.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}
