//! `cargo xtask bench-gate` — micro-benchmark regression gate.
//!
//! Loads the committed `BENCH_psb.json` baseline, re-runs the workspace
//! micro benches (`cargo bench -p psb-bench`) into a temporary artifact
//! via `PSB_BENCH_OUT`, and fails if any micro row's `ns_per_iter`
//! regressed beyond the tolerance (default 25%, `--tolerance 0.25`).
//! Whole-run rows in the `runs` section are reported for context but
//! never gated: their ~1e8 ns magnitudes and single-iteration noise
//! would need a different tolerance regime (that split is the reason
//! the artifact has two sections).
//!
//! The measurement budget follows `PSB_BENCH_MS`, so CI can run a fast
//! smoke gate (`PSB_BENCH_MS=5 cargo xtask bench-gate --tolerance 3.0`)
//! that exercises the plumbing without flaking on shared runners.

use psb_obs::json::{self, Json};
use std::path::Path;
use std::process::{Command, ExitCode};

/// One comparable row: a bench name and its nanoseconds per iteration.
#[derive(Clone, Debug, PartialEq)]
struct Row {
    name: String,
    ns: f64,
}

/// Outcome of comparing one baseline row against the fresh run.
#[derive(Clone, Debug, PartialEq)]
enum Verdict {
    /// Within tolerance (including improvements).
    Ok { ratio: f64 },
    /// Slower than `baseline * (1 + tolerance)`.
    Regressed { ratio: f64 },
    /// Present in the baseline but absent from the fresh run — a bench
    /// silently disappearing would hide regressions, so this fails too.
    Missing,
}

/// Entry point for the subcommand.
pub fn bench_gate(args: &[String]) -> ExitCode {
    let mut tolerance = 0.25f64;
    let mut baseline_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| s.parse().ok()) else {
                    eprintln!("bench-gate: --tolerance needs a number (fraction, e.g. 0.25)");
                    return ExitCode::from(2);
                };
                tolerance = v;
            }
            "--baseline" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("bench-gate: --baseline needs a file path");
                    return ExitCode::from(2);
                };
                baseline_path = Some(v.clone());
            }
            other => {
                eprintln!("bench-gate: unknown argument {other:?}");
                eprintln!("usage: cargo xtask bench-gate [--tolerance FRACTION] [--baseline FILE]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let root = crate::repo_root();
    let baseline_file =
        baseline_path.map(std::path::PathBuf::from).unwrap_or_else(|| root.join("BENCH_psb.json"));
    let baseline = match load_rows(&baseline_file) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench-gate: cannot load baseline {}: {e}", baseline_file.display());
            return ExitCode::FAILURE;
        }
    };

    // Fresh numbers go to a temp artifact so the committed baseline is
    // never touched, whatever the budget.
    let fresh_file =
        std::env::temp_dir().join(format!("psb_bench_gate_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&fresh_file);
    println!(
        "bench-gate: running cargo bench -p psb-bench (PSB_BENCH_OUT={})",
        fresh_file.display()
    );
    let status = Command::new("cargo")
        .args(["bench", "-p", "psb-bench"])
        .env("PSB_BENCH_OUT", &fresh_file)
        .current_dir(&root)
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(_) => {
            eprintln!("bench-gate: cargo bench failed");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("bench-gate: could not spawn cargo: {e}");
            return ExitCode::FAILURE;
        }
    }
    let fresh = match load_rows(&fresh_file) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench-gate: cannot load fresh results {}: {e}", fresh_file.display());
            return ExitCode::FAILURE;
        }
    };
    let _ = std::fs::remove_file(&fresh_file);

    let verdicts = compare(&baseline.micro, &fresh.micro, tolerance);
    print_table(&baseline.micro, &fresh.micro, &verdicts, tolerance);
    print_runs(&baseline.runs, &fresh.runs);

    let regressed: Vec<&str> = baseline
        .micro
        .iter()
        .zip(&verdicts)
        .filter(|(_, v)| !matches!(v, Verdict::Ok { .. }))
        .map(|(b, _)| b.name.as_str())
        .collect();
    if regressed.is_empty() {
        println!(
            "bench-gate: all {} micro bench(es) within {:.0}% of the baseline",
            baseline.micro.len(),
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench-gate: {} bench(es) failed the gate: {}",
            regressed.len(),
            regressed.join(", ")
        );
        ExitCode::FAILURE
    }
}

/// The two sections of a `psb-bench-v1` artifact.
#[derive(Debug)]
struct Sections {
    micro: Vec<Row>,
    runs: Vec<Row>,
}

fn load_rows(path: &Path) -> Result<Sections, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    if doc.get("schema").and_then(Json::as_str) != Some("psb-bench-v1") {
        return Err("not a psb-bench-v1 artifact".to_string());
    }
    let section = |key: &str| -> Vec<Row> {
        doc.get(key)
            .and_then(Json::as_arr)
            .map(|rows| {
                rows.iter()
                    .filter_map(|r| {
                        Some(Row {
                            name: r.get("name")?.as_str()?.to_owned(),
                            ns: r.get("ns_per_iter")?.as_f64()?,
                        })
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    Ok(Sections { micro: section("results"), runs: section("runs") })
}

/// Compares each baseline row against the fresh run; order follows the
/// baseline. Fresh-only rows (newly added benches) carry no verdict —
/// they cannot regress against nothing.
fn compare(baseline: &[Row], fresh: &[Row], tolerance: f64) -> Vec<Verdict> {
    baseline
        .iter()
        .map(|b| match fresh.iter().find(|f| f.name == b.name) {
            None => Verdict::Missing,
            Some(f) => {
                let ratio = if b.ns > 0.0 { f.ns / b.ns } else { f64::INFINITY };
                if ratio > 1.0 + tolerance {
                    Verdict::Regressed { ratio }
                } else {
                    Verdict::Ok { ratio }
                }
            }
        })
        .collect()
}

fn print_table(baseline: &[Row], fresh: &[Row], verdicts: &[Verdict], tolerance: f64) {
    println!();
    println!("{:<28} {:>12} {:>12} {:>8}  verdict", "bench", "before", "after", "delta");
    for (b, v) in baseline.iter().zip(verdicts) {
        match v {
            Verdict::Missing => {
                println!("{:<28} {:>12.1} {:>12} {:>8}  MISSING", b.name, b.ns, "-", "-");
            }
            Verdict::Ok { ratio } | Verdict::Regressed { ratio } => {
                let after = fresh.iter().find(|f| f.name == b.name).map_or(0.0, |f| f.ns);
                let verdict = if matches!(v, Verdict::Regressed { .. }) {
                    format!("REGRESSED (> +{:.0}%)", tolerance * 100.0)
                } else {
                    "ok".to_string()
                };
                println!(
                    "{:<28} {:>12.1} {:>12.1} {:>+7.1}%  {verdict}",
                    b.name,
                    b.ns,
                    after,
                    (ratio - 1.0) * 100.0
                );
            }
        }
    }
    for f in fresh {
        if !baseline.iter().any(|b| b.name == f.name) {
            println!("{:<28} {:>12} {:>12.1} {:>8}  new (no baseline)", f.name, "-", f.ns, "-");
        }
    }
}

/// Whole-run rows are informational: printed, never gated.
fn print_runs(baseline: &[Row], fresh: &[Row]) {
    if baseline.is_empty() && fresh.is_empty() {
        return;
    }
    println!();
    println!("whole-run rows (not gated):");
    let names: Vec<&str> = baseline
        .iter()
        .map(|r| r.name.as_str())
        .chain(
            fresh
                .iter()
                .filter(|f| !baseline.iter().any(|b| b.name == f.name))
                .map(|f| f.name.as_str()),
        )
        .collect();
    for name in names {
        let before = baseline.iter().find(|r| r.name == name);
        let after = fresh.iter().find(|r| r.name == name);
        println!(
            "{:<28} {:>12} {:>12}",
            name,
            before.map_or("-".to_string(), |r| format!("{:.0}", r.ns)),
            after.map_or("-".to_string(), |r| format!("{:.0}", r.ns)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, ns: f64) -> Row {
        Row { name: name.to_owned(), ns }
    }

    #[test]
    fn within_tolerance_passes() {
        let baseline = vec![row("a", 100.0), row("b", 50.0)];
        let fresh = vec![row("a", 120.0), row("b", 30.0)];
        let v = compare(&baseline, &fresh, 0.25);
        assert!(matches!(v[0], Verdict::Ok { .. }), "{v:?}");
        assert!(matches!(v[1], Verdict::Ok { .. }), "speedups always pass: {v:?}");
    }

    #[test]
    fn beyond_tolerance_regresses() {
        let baseline = vec![row("a", 100.0)];
        let fresh = vec![row("a", 126.0)];
        let v = compare(&baseline, &fresh, 0.25);
        assert!(matches!(v[0], Verdict::Regressed { ratio } if (ratio - 1.26).abs() < 1e-9));
        // The same numbers pass a looser smoke tolerance.
        let v = compare(&baseline, &fresh, 3.0);
        assert!(matches!(v[0], Verdict::Ok { .. }));
    }

    #[test]
    fn missing_bench_fails_the_gate() {
        let baseline = vec![row("a", 100.0)];
        let v = compare(&baseline, &[], 0.25);
        assert_eq!(v, vec![Verdict::Missing]);
    }

    #[test]
    fn new_benches_carry_no_verdict() {
        let baseline = vec![row("a", 100.0)];
        let fresh = vec![row("a", 100.0), row("brand_new", 7.0)];
        let v = compare(&baseline, &fresh, 0.25);
        assert_eq!(v.len(), 1, "only baseline rows are judged");
    }

    #[test]
    fn artifact_sections_parse() {
        let dir = std::env::temp_dir().join("psb_bench_gate_parse_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        std::fs::write(
            &path,
            r#"{"schema":"psb-bench-v1",
                "results":[{"name":"a","ns_per_iter":12.5,"iters":100}],
                "runs":[{"name":"Base","ns_per_iter":1.0e8,"iters":1}]}"#,
        )
        .unwrap();
        let s = load_rows(&path).unwrap();
        assert_eq!(s.micro, vec![row("a", 12.5)]);
        assert_eq!(s.runs, vec![row("Base", 1.0e8)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let dir = std::env::temp_dir().join("psb_bench_gate_schema_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        std::fs::write(&path, r#"{"schema":"psb-run-v1"}"#).unwrap();
        assert!(load_rows(&path).unwrap_err().contains("not a psb-bench-v1"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
