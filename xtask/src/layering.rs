//! Crate-layering checker: the workspace dependency DAG, written down.
//!
//! The simulator is layered — hardware model below observability below
//! the experiment harness — and nothing but convention used to stop a
//! convenience `use` from quietly inverting it (as `psb-core` →
//! `psb-obs` once did). This pass parses every crate manifest with plain
//! string handling (no TOML crate; the workspace only ever writes
//! `psb-x.workspace = true` or `psb-x = { workspace = true, ... }`) and
//! compares the declared intra-workspace dependencies against the table
//! below. A dependency missing from the table fails `cargo xtask lint`.
//!
//! The intent, crate by crate:
//!
//! * `psb-common` and `psb-model` are roots: no workspace deps, so they
//!   stay importable from anywhere (including build-time tools).
//! * `psb-obs` and `psb-check` sit just above `psb-common`, leaf-
//!   importable by any layer that wants reporting or auditing.
//! * the hardware model (`psb-core`, `psb-mem`, `psb-cpu`) must not
//!   reach the harness layers (`psb-sim`, `psb-workloads`) — and
//!   `psb-core` may see `psb-obs` only from its tests.
//! * `psb-sim` and the root package are the composition roots.

use crate::lints::Finding;
use std::path::Path;

/// One row: crate directory (relative to the repo root), allowed
/// `[dependencies]`, allowed `[dev-dependencies]` (on top of the
/// runtime set — dev deps may also use anything runtime allows).
const LAYERS: &[(&str, &[&str], &[&str])] = &[
    ("crates/common", &[], &[]),
    ("crates/model", &[], &[]),
    ("crates/check", &["psb-common"], &[]),
    ("crates/cpu", &["psb-common"], &[]),
    ("crates/obs", &["psb-common"], &[]),
    ("crates/mem", &["psb-common", "psb-obs", "psb-check"], &[]),
    ("crates/core", &["psb-common", "psb-check"], &["psb-obs"]),
    ("crates/workloads", &["psb-common", "psb-cpu", "psb-model"], &[]),
    // The serving plane sits beside obs: plain-data documents in, HTTP
    // out. It must never see the simulator, so a sweep can publish to it
    // but it cannot reach back.
    ("crates/serve", &["psb-common", "psb-obs", "psb-model"], &[]),
    (
        "crates/sim",
        &[
            "psb-common",
            "psb-mem",
            "psb-cpu",
            "psb-core",
            "psb-obs",
            "psb-workloads",
            "psb-model",
            "psb-serve",
            "psb-check",
        ],
        &[],
    ),
    (
        "crates/bench",
        &["psb-common", "psb-mem", "psb-cpu", "psb-core", "psb-obs", "psb-workloads", "psb-sim"],
        &[],
    ),
    (
        ".",
        &[
            "psb-common",
            "psb-mem",
            "psb-cpu",
            "psb-core",
            "psb-obs",
            "psb-workloads",
            "psb-sim",
            "psb-serve",
            "psb-model",
            "psb-check",
        ],
        &[],
    ),
    // xtask parses emitted artifacts with the workspace's own JSON
    // library — the leaf-importable `psb-obs` property in action.
    ("xtask", &["psb-obs"], &[]),
];

/// The workspace dependencies declared in one manifest section.
#[derive(Debug, Default, PartialEq)]
pub struct ManifestDeps {
    /// `psb-*` names under `[dependencies]`, with the line each appears on.
    pub runtime: Vec<(String, usize)>,
    /// `psb-*` names under `[dev-dependencies]`.
    pub dev: Vec<(String, usize)>,
}

/// Extracts the intra-workspace (`psb-*`) dependencies from a manifest.
///
/// Understands both spellings the workspace uses:
/// `psb-x.workspace = true` and `psb-x = { workspace = true, ... }`.
pub fn parse_manifest_deps(manifest: &str) -> ManifestDeps {
    let mut out = ManifestDeps::default();
    let mut section = "";
    for (i, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line;
            continue;
        }
        let bucket = match section {
            "[dependencies]" => &mut out.runtime,
            "[dev-dependencies]" => &mut out.dev,
            _ => continue,
        };
        if !line.starts_with("psb-") {
            continue;
        }
        let name: String = line
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        // `psb-x.workspace = true` parses as `psb-x` + `.workspace`.
        let name = name.strip_suffix("-").unwrap_or(&name).to_string();
        bucket.push((name, i + 1));
    }
    out
}

/// Checks every crate in [`LAYERS`] against its manifest on disk, and
/// flags any workspace crate directory the table forgot.
pub fn check_layering(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for &(dir, allowed, dev_allowed) in LAYERS {
        let rel = format!("{dir}/Cargo.toml");
        let path = root.join(&rel);
        let Ok(manifest) = std::fs::read_to_string(&path) else {
            findings.push(Finding {
                rule: "layering",
                file: rel,
                line: 1,
                msg: "manifest listed in the layering table but missing on disk; \
                      update xtask/src/layering.rs"
                    .to_string(),
            });
            continue;
        };
        let deps = parse_manifest_deps(&manifest);
        for (name, line) in &deps.runtime {
            if !allowed.contains(&name.as_str()) {
                findings.push(Finding {
                    rule: "layering",
                    file: rel.clone(),
                    line: *line,
                    msg: format!(
                        "`{dir}` must not depend on `{name}` (layering: allowed deps \
                         are {allowed:?}); move the code or amend xtask/src/layering.rs \
                         with the architectural justification"
                    ),
                });
            }
        }
        for (name, line) in &deps.dev {
            if !allowed.contains(&name.as_str()) && !dev_allowed.contains(&name.as_str()) {
                findings.push(Finding {
                    rule: "layering",
                    file: rel.clone(),
                    line: *line,
                    msg: format!(
                        "`{dir}` must not dev-depend on `{name}` (allowed: runtime \
                         {allowed:?} plus dev {dev_allowed:?})"
                    ),
                });
            }
        }
    }
    // A crate directory absent from the table is unconstrained — that is
    // a hole in the checker, so it is itself a finding.
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for e in entries.flatten() {
            let p = e.path();
            if !p.is_dir() {
                continue;
            }
            let rel = format!("crates/{}", e.file_name().to_string_lossy());
            if !LAYERS.iter().any(|(dir, _, _)| *dir == rel) {
                findings.push(Finding {
                    rule: "layering",
                    file: format!("{rel}/Cargo.toml"),
                    line: 1,
                    msg: format!(
                        "crate `{rel}` has no row in the layering table; add one to \
                         xtask/src/layering.rs"
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_workspace_dep_spellings() {
        let manifest = "[package]\nname = \"x\"\n\n[dependencies]\n\
                        psb-common.workspace = true\n\
                        psb-check = { workspace = true, optional = true }\n\n\
                        [dev-dependencies]\npsb-obs.workspace = true\n";
        let deps = parse_manifest_deps(manifest);
        assert_eq!(deps.runtime, vec![("psb-common".to_string(), 5), ("psb-check".to_string(), 6)]);
        assert_eq!(deps.dev, vec![("psb-obs".to_string(), 9)]);
    }

    #[test]
    fn ignores_non_workspace_and_other_sections() {
        let manifest = "[dependencies]\nserde = \"1\"\n[features]\npsb-check = []\n";
        let deps = parse_manifest_deps(manifest);
        assert!(deps.runtime.is_empty(), "{deps:?}");
        assert!(deps.dev.is_empty());
    }

    #[test]
    fn the_real_workspace_is_clean() {
        // The table and the tree must agree — this is the regression test
        // that keeps the checker itself honest.
        let root = crate::repo_root();
        let findings = check_layering(&root);
        assert!(findings.is_empty(), "{findings:#?}");
    }

    #[test]
    fn core_reaching_obs_would_be_flagged() {
        // Simulate the exact inversion this pass exists to prevent.
        let manifest = "[dependencies]\npsb-common.workspace = true\npsb-obs.workspace = true\n";
        let deps = parse_manifest_deps(manifest);
        let allowed: &[&str] = &["psb-common", "psb-check"];
        let bad: Vec<_> =
            deps.runtime.iter().filter(|(n, _)| !allowed.contains(&n.as_str())).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].0, "psb-obs");
    }
}
