//! A minimal Rust lexer, pure std — the shared foundation of every
//! token-level tool in xtask: the mutation engine (`cargo xtask
//! mutants`), the semantic analysis passes (`cargo xtask analyze`), and
//! the source lints (`cargo xtask lint`).
//!
//! These tools need just enough token structure to work safely:
//! operators must not be found inside strings, comments, char literals
//! or lifetimes, and every byte of the input must be covered so mutants
//! can be applied by byte-span splicing. The lexer therefore produces a
//! *total* token stream — concatenating the spans of all tokens
//! reproduces the source byte-for-byte (the round-trip property the
//! mutation engine's self-tests check against every `.rs` file in the
//! workspace).
//!
//! It is deliberately not a full lexer: tokens carry no parsed values,
//! keywords are plain identifiers, and numeric literals keep their
//! suffixes. Anything unrecognized becomes a one-byte [`Kind::Other`]
//! token, which the mutation operators simply never touch.

/// Token classification, coarse on purpose.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Spaces, tabs, newlines.
    Whitespace,
    /// `// ...` including doc comments, excluding the newline.
    LineComment,
    /// `/* ... */`, nested.
    BlockComment,
    /// `"..."`, `b"..."` with escapes.
    Str,
    /// `r"..."`, `r#"..."#`, `br#"..."#` at any hash depth.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `'a` in `&'a T` (not a char literal).
    Lifetime,
    /// Identifiers and keywords.
    Ident,
    /// Numeric literals including suffixes (`0x1f`, `1_000u64`, `1.5e-3`).
    Number,
    /// Operators and delimiters, longest-match (`<<=` before `<<` before `<`).
    Punct,
    /// A byte the lexer does not classify.
    Other,
}

/// One token: a classification and the byte span it covers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What the span holds.
    pub kind: Kind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text within `source`.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }
}

/// Multi-byte punctuation, longest first so maximal munch works by
/// scanning the table in order.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "->", "=>", "::", "..", "<", ">", "=", "+", "-", "*", "/", "%",
    "^", "&", "|", "!", "?", "@", "#", "$", ".", ",", ";", ":", "(", ")", "[", "]", "{", "}",
];

/// Tokenizes `source` into a total, byte-covering stream.
pub fn lex(source: &str) -> Vec<Token> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let kind = match bytes[i] {
            b if (b as char).is_whitespace() => {
                while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                    i += 1;
                }
                Kind::Whitespace
            }
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                Kind::LineComment
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                Kind::BlockComment
            }
            b'r' | b'b' if raw_str_len(&source[i..]).is_some() => {
                // Invariant: raw_str_len just confirmed the prefix parses.
                i += raw_str_len(&source[i..]).expect("checked by the guard (invariant)");
                Kind::RawStr
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                i += 2;
                i = skip_str_body(bytes, i);
                Kind::Str
            }
            b'b' if bytes.get(i + 1) == Some(&b'\'') => {
                i += 2;
                i = skip_char_body(bytes, i);
                Kind::Char
            }
            b'"' => {
                i += 1;
                i = skip_str_body(bytes, i);
                Kind::Str
            }
            b'\'' => {
                // A quote opens a char literal only when it closes within a
                // couple of characters (or holds an escape); otherwise it is
                // a lifetime, which has no closing quote.
                if is_char_literal(bytes, i) {
                    i += 1;
                    i = skip_char_body(bytes, i);
                    Kind::Char
                } else {
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                    Kind::Lifetime
                }
            }
            b if b.is_ascii_digit() => {
                i = skip_number(bytes, i);
                Kind::Number
            }
            b if is_ident_start(b) => {
                while i < bytes.len() && is_ident_byte(bytes[i]) {
                    i += 1;
                }
                Kind::Ident
            }
            _ => {
                if let Some(p) = PUNCTS.iter().find(|p| source[i..].starts_with(**p)) {
                    i += p.len();
                    Kind::Punct
                } else {
                    // Cover the whole (possibly multi-byte) char.
                    let c = source[i..].chars().next().unwrap_or('\0');
                    i += c.len_utf8().max(1);
                    Kind::Other
                }
            }
        };
        tokens.push(Token { kind, start, end: i });
    }
    tokens
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Length of a raw (byte) string literal starting at the head of `s`
/// (`r"…"`, `r#"…"#`, `br##"…"##`), or `None` if `s` does not start one.
fn raw_str_len(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = 0;
    if bytes.first() == Some(&b'b') {
        i += 1;
    }
    if bytes.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    // Scan for `"` followed by `hashes` hash marks.
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && bytes.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return Some(j);
            }
        }
        i += 1;
    }
    Some(bytes.len())
}

/// Advances past the body and closing quote of a `"` string, honoring
/// backslash escapes. `i` points just past the opening quote.
fn skip_str_body(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Advances past the body and closing quote of a char literal.
fn skip_char_body(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Distinguishes `'x'` / `'\n'` (char literal) from `'a` (lifetime): a
/// char literal's closing quote appears within a bounded distance.
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        // `'\n'` — escapes only occur in char literals.
        Some(&b'\\') => true,
        // `'x'` — an ASCII char closing right away. (`'a, 'b` in a
        // generic list has `,` there, so lifetimes fall through.)
        Some(&b) if b < 0x80 => bytes.get(i + 2) == Some(&b'\''),
        // `'é'` — a multi-byte char closes within a few bytes.
        Some(_) => (2..=5).any(|d| bytes.get(i + d) == Some(&b'\'')),
        None => false,
    }
}

/// Advances past a numeric literal: digits, `_`, radix prefixes, type
/// suffixes, a fractional part (only when a digit follows the dot, so
/// `0..10` stays a range), and a signed exponent.
fn skip_number(bytes: &[u8], mut i: usize) -> usize {
    let mut seen_dot = false;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphanumeric() || b == b'_' {
            // `1e-5` / `2.5E+10`: the sign belongs to the exponent, but
            // only in a decimal (not hex) literal context — `0xe - 1`
            // cannot occur because hex literals never reach here with a
            // plain `e` exponent (0x.. consumes alphanumerics whole).
            if (b == b'e' || b == b'E')
                && seen_dot
                && matches!(bytes.get(i + 1), Some(&b'+') | Some(&b'-'))
                && bytes.get(i + 2).is_some_and(u8::is_ascii_digit)
            {
                i += 2;
            }
            i += 1;
        } else if b == b'.' && !seen_dot && bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
            seen_dot = true;
            i += 1;
        } else {
            break;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trips(src: &str) {
        let tokens = lex(src);
        let rebuilt: String = tokens.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src, "lexer must cover every byte");
        for w in tokens.windows(2) {
            assert_eq!(w[0].end, w[1].start, "tokens must tile the input");
        }
    }

    #[test]
    fn covers_plain_code() {
        round_trips("fn main() { let x = 1 + 2; println!(\"{}\", x); }\n");
    }

    #[test]
    fn strings_hide_operators() {
        let src = r#"let s = "a < b && c"; let t = 'x';"#;
        round_trips(src);
        let tokens = lex(src);
        let puncts: Vec<&str> =
            tokens.iter().filter(|t| t.kind == Kind::Punct).map(|t| t.text(src)).collect();
        assert!(!puncts.contains(&"<"), "operator inside a string must not be a Punct: {puncts:?}");
        assert!(tokens.iter().any(|t| t.kind == Kind::Char));
    }

    #[test]
    fn raw_strings_and_hashes() {
        round_trips(r###"let s = r#"quote " inside"#; let b = br"raw";"###);
        let src = r###"r#"has "quotes" inside"# + x"###;
        let tokens = lex(src);
        assert_eq!(tokens[0].kind, Kind::RawStr);
        assert_eq!(tokens[0].text(src), r###"r#"has "quotes" inside"#"###);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        round_trips(src);
        let tokens = lex(src);
        assert!(tokens.iter().any(|t| t.kind == Kind::Lifetime));
        assert!(!tokens.iter().any(|t| t.kind == Kind::Char));
    }

    #[test]
    fn nested_block_comments() {
        round_trips("/* outer /* inner */ still comment */ let x = 1;");
        let src = "/* a /* b */ c */ 1";
        let tokens = lex(src);
        assert_eq!(tokens[0].kind, Kind::BlockComment);
        assert_eq!(tokens[0].text(src), "/* a /* b */ c */");
    }

    #[test]
    fn numbers_with_suffixes_floats_and_ranges() {
        let src = "0x1f_u64 1_000 1.5e-3 0..10 x.0";
        round_trips(src);
        let nums: Vec<&str> =
            lex(src).iter().filter(|t| t.kind == Kind::Number).map(|t| t.text(src)).collect();
        assert_eq!(nums, ["0x1f_u64", "1_000", "1.5e-3", "0", "10", "0"]);
    }

    #[test]
    fn maximal_munch_on_operators() {
        let src = "a <<= b << c <= d < e";
        let ops: Vec<&str> =
            lex(src).iter().filter(|t| t.kind == Kind::Punct).map(|t| t.text(src)).collect();
        assert_eq!(ops, ["<<=", "<<", "<=", "<"]);
    }
}
