/root/repo/target/release/deps/fig4-b95b2ca10bfe557b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-b95b2ca10bfe557b: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
