/root/repo/target/release/deps/psb_mem-c22d80a3a8a3e62a.d: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/l1.rs crates/mem/src/lower.rs crates/mem/src/mshr.rs crates/mem/src/pipe.rs crates/mem/src/tlb.rs crates/mem/src/victim.rs

/root/repo/target/release/deps/libpsb_mem-c22d80a3a8a3e62a.rlib: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/l1.rs crates/mem/src/lower.rs crates/mem/src/mshr.rs crates/mem/src/pipe.rs crates/mem/src/tlb.rs crates/mem/src/victim.rs

/root/repo/target/release/deps/libpsb_mem-c22d80a3a8a3e62a.rmeta: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/l1.rs crates/mem/src/lower.rs crates/mem/src/mshr.rs crates/mem/src/pipe.rs crates/mem/src/tlb.rs crates/mem/src/victim.rs

crates/mem/src/lib.rs:
crates/mem/src/bus.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/l1.rs:
crates/mem/src/lower.rs:
crates/mem/src/mshr.rs:
crates/mem/src/pipe.rs:
crates/mem/src/tlb.rs:
crates/mem/src/victim.rs:
