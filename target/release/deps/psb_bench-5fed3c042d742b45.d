/root/repo/target/release/deps/psb_bench-5fed3c042d742b45.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/libpsb_bench-5fed3c042d742b45.rlib: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/release/deps/libpsb_bench-5fed3c042d742b45.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
