/root/repo/target/release/deps/psb_common-4afb78ef58c39fed.d: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/counter.rs crates/common/src/cycle.rs crates/common/src/rng.rs crates/common/src/stats.rs

/root/repo/target/release/deps/libpsb_common-4afb78ef58c39fed.rlib: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/counter.rs crates/common/src/cycle.rs crates/common/src/rng.rs crates/common/src/stats.rs

/root/repo/target/release/deps/libpsb_common-4afb78ef58c39fed.rmeta: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/counter.rs crates/common/src/cycle.rs crates/common/src/rng.rs crates/common/src/stats.rs

crates/common/src/lib.rs:
crates/common/src/addr.rs:
crates/common/src/counter.rs:
crates/common/src/cycle.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
