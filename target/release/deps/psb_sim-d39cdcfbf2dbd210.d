/root/repo/target/release/deps/psb_sim-d39cdcfbf2dbd210.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/eventlog.rs crates/sim/src/experiment.rs crates/sim/src/memsys.rs crates/sim/src/report.rs crates/sim/src/simulator.rs crates/sim/src/stats.rs

/root/repo/target/release/deps/libpsb_sim-d39cdcfbf2dbd210.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/eventlog.rs crates/sim/src/experiment.rs crates/sim/src/memsys.rs crates/sim/src/report.rs crates/sim/src/simulator.rs crates/sim/src/stats.rs

/root/repo/target/release/deps/libpsb_sim-d39cdcfbf2dbd210.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/eventlog.rs crates/sim/src/experiment.rs crates/sim/src/memsys.rs crates/sim/src/report.rs crates/sim/src/simulator.rs crates/sim/src/stats.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/eventlog.rs:
crates/sim/src/experiment.rs:
crates/sim/src/memsys.rs:
crates/sim/src/report.rs:
crates/sim/src/simulator.rs:
crates/sim/src/stats.rs:
