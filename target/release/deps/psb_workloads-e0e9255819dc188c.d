/root/repo/target/release/deps/psb_workloads-e0e9255819dc188c.d: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/burg.rs crates/workloads/src/deltablue.rs crates/workloads/src/gs.rs crates/workloads/src/health.rs crates/workloads/src/heap.rs crates/workloads/src/serial.rs crates/workloads/src/sis.rs crates/workloads/src/trace.rs crates/workloads/src/turb3d.rs

/root/repo/target/release/deps/libpsb_workloads-e0e9255819dc188c.rlib: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/burg.rs crates/workloads/src/deltablue.rs crates/workloads/src/gs.rs crates/workloads/src/health.rs crates/workloads/src/heap.rs crates/workloads/src/serial.rs crates/workloads/src/sis.rs crates/workloads/src/trace.rs crates/workloads/src/turb3d.rs

/root/repo/target/release/deps/libpsb_workloads-e0e9255819dc188c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/burg.rs crates/workloads/src/deltablue.rs crates/workloads/src/gs.rs crates/workloads/src/health.rs crates/workloads/src/heap.rs crates/workloads/src/serial.rs crates/workloads/src/sis.rs crates/workloads/src/trace.rs crates/workloads/src/turb3d.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmark.rs:
crates/workloads/src/burg.rs:
crates/workloads/src/deltablue.rs:
crates/workloads/src/gs.rs:
crates/workloads/src/health.rs:
crates/workloads/src/heap.rs:
crates/workloads/src/serial.rs:
crates/workloads/src/sis.rs:
crates/workloads/src/trace.rs:
crates/workloads/src/turb3d.rs:
