/root/repo/target/release/deps/psbsim-77c3d01930087561.d: src/bin/psbsim.rs

/root/repo/target/release/deps/psbsim-77c3d01930087561: src/bin/psbsim.rs

src/bin/psbsim.rs:
