/root/repo/target/release/deps/psb_cpu-76589d942e7bf749.d: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/fu.rs crates/cpu/src/inst.rs crates/cpu/src/mem_iface.rs crates/cpu/src/pipeline.rs

/root/repo/target/release/deps/libpsb_cpu-76589d942e7bf749.rlib: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/fu.rs crates/cpu/src/inst.rs crates/cpu/src/mem_iface.rs crates/cpu/src/pipeline.rs

/root/repo/target/release/deps/libpsb_cpu-76589d942e7bf749.rmeta: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/fu.rs crates/cpu/src/inst.rs crates/cpu/src/mem_iface.rs crates/cpu/src/pipeline.rs

crates/cpu/src/lib.rs:
crates/cpu/src/bpred.rs:
crates/cpu/src/config.rs:
crates/cpu/src/fu.rs:
crates/cpu/src/inst.rs:
crates/cpu/src/mem_iface.rs:
crates/cpu/src/pipeline.rs:
