/root/repo/target/release/deps/psb-6c9efb5101e486f6.d: src/lib.rs

/root/repo/target/release/deps/libpsb-6c9efb5101e486f6.rlib: src/lib.rs

/root/repo/target/release/deps/libpsb-6c9efb5101e486f6.rmeta: src/lib.rs

src/lib.rs:
