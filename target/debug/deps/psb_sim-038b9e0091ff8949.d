/root/repo/target/debug/deps/psb_sim-038b9e0091ff8949.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/eventlog.rs crates/sim/src/experiment.rs crates/sim/src/memsys.rs crates/sim/src/report.rs crates/sim/src/simulator.rs crates/sim/src/stats.rs

/root/repo/target/debug/deps/libpsb_sim-038b9e0091ff8949.rlib: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/eventlog.rs crates/sim/src/experiment.rs crates/sim/src/memsys.rs crates/sim/src/report.rs crates/sim/src/simulator.rs crates/sim/src/stats.rs

/root/repo/target/debug/deps/libpsb_sim-038b9e0091ff8949.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/eventlog.rs crates/sim/src/experiment.rs crates/sim/src/memsys.rs crates/sim/src/report.rs crates/sim/src/simulator.rs crates/sim/src/stats.rs

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/eventlog.rs:
crates/sim/src/experiment.rs:
crates/sim/src/memsys.rs:
crates/sim/src/report.rs:
crates/sim/src/simulator.rs:
crates/sim/src/stats.rs:
