/root/repo/target/debug/deps/properties-ed55fa040f35bcd3.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-ed55fa040f35bcd3: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
