/root/repo/target/debug/deps/fig10-c01e3a631bc319e3.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-c01e3a631bc319e3: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
