/root/repo/target/debug/deps/fig8-5e3049a0c14afe79.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-5e3049a0c14afe79: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
