/root/repo/target/debug/deps/diag-6091be7fc8f152e3.d: crates/bench/src/bin/diag.rs Cargo.toml

/root/repo/target/debug/deps/libdiag-6091be7fc8f152e3.rmeta: crates/bench/src/bin/diag.rs Cargo.toml

crates/bench/src/bin/diag.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
