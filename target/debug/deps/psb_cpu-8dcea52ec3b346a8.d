/root/repo/target/debug/deps/psb_cpu-8dcea52ec3b346a8.d: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/fu.rs crates/cpu/src/inst.rs crates/cpu/src/mem_iface.rs crates/cpu/src/pipeline.rs

/root/repo/target/debug/deps/psb_cpu-8dcea52ec3b346a8: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/fu.rs crates/cpu/src/inst.rs crates/cpu/src/mem_iface.rs crates/cpu/src/pipeline.rs

crates/cpu/src/lib.rs:
crates/cpu/src/bpred.rs:
crates/cpu/src/config.rs:
crates/cpu/src/fu.rs:
crates/cpu/src/inst.rs:
crates/cpu/src/mem_iface.rs:
crates/cpu/src/pipeline.rs:
