/root/repo/target/debug/deps/ablate_order-fbc56572a51a3877.d: crates/bench/src/bin/ablate_order.rs Cargo.toml

/root/repo/target/debug/deps/libablate_order-fbc56572a51a3877.rmeta: crates/bench/src/bin/ablate_order.rs Cargo.toml

crates/bench/src/bin/ablate_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
