/root/repo/target/debug/deps/properties-927e42894db99715.d: crates/mem/tests/properties.rs

/root/repo/target/debug/deps/properties-927e42894db99715: crates/mem/tests/properties.rs

crates/mem/tests/properties.rs:
