/root/repo/target/debug/deps/psb_bench-81a5bc0b1f163dcf.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/psb_bench-81a5bc0b1f163dcf: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
