/root/repo/target/debug/deps/ablate_order-393cdf465f3ad093.d: crates/bench/src/bin/ablate_order.rs

/root/repo/target/debug/deps/ablate_order-393cdf465f3ad093: crates/bench/src/bin/ablate_order.rs

crates/bench/src/bin/ablate_order.rs:
