/root/repo/target/debug/deps/psb_sim-aabf4d88024cfbf7.d: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/eventlog.rs crates/sim/src/experiment.rs crates/sim/src/memsys.rs crates/sim/src/report.rs crates/sim/src/simulator.rs crates/sim/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libpsb_sim-aabf4d88024cfbf7.rmeta: crates/sim/src/lib.rs crates/sim/src/config.rs crates/sim/src/eventlog.rs crates/sim/src/experiment.rs crates/sim/src/memsys.rs crates/sim/src/report.rs crates/sim/src/simulator.rs crates/sim/src/stats.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/config.rs:
crates/sim/src/eventlog.rs:
crates/sim/src/experiment.rs:
crates/sim/src/memsys.rs:
crates/sim/src/report.rs:
crates/sim/src/simulator.rs:
crates/sim/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
