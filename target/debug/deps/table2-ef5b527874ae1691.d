/root/repo/target/debug/deps/table2-ef5b527874ae1691.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-ef5b527874ae1691: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
