/root/repo/target/debug/deps/psb_bench-646347ec2497d6ad.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libpsb_bench-646347ec2497d6ad.rlib: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libpsb_bench-646347ec2497d6ad.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
