/root/repo/target/debug/deps/ablate_buffers-798b72249a098a9d.d: crates/bench/src/bin/ablate_buffers.rs

/root/repo/target/debug/deps/ablate_buffers-798b72249a098a9d: crates/bench/src/bin/ablate_buffers.rs

crates/bench/src/bin/ablate_buffers.rs:
