/root/repo/target/debug/deps/psb_common-cb092603e03e6668.d: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/counter.rs crates/common/src/cycle.rs crates/common/src/rng.rs crates/common/src/stats.rs

/root/repo/target/debug/deps/libpsb_common-cb092603e03e6668.rlib: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/counter.rs crates/common/src/cycle.rs crates/common/src/rng.rs crates/common/src/stats.rs

/root/repo/target/debug/deps/libpsb_common-cb092603e03e6668.rmeta: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/counter.rs crates/common/src/cycle.rs crates/common/src/rng.rs crates/common/src/stats.rs

crates/common/src/lib.rs:
crates/common/src/addr.rs:
crates/common/src/counter.rs:
crates/common/src/cycle.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
