/root/repo/target/debug/deps/psbsim-4474ee82b977b363.d: src/bin/psbsim.rs

/root/repo/target/debug/deps/psbsim-4474ee82b977b363: src/bin/psbsim.rs

src/bin/psbsim.rs:
