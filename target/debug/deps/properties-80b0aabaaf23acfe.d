/root/repo/target/debug/deps/properties-80b0aabaaf23acfe.d: crates/mem/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-80b0aabaaf23acfe.rmeta: crates/mem/tests/properties.rs Cargo.toml

crates/mem/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
