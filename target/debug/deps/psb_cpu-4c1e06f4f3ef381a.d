/root/repo/target/debug/deps/psb_cpu-4c1e06f4f3ef381a.d: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/fu.rs crates/cpu/src/inst.rs crates/cpu/src/mem_iface.rs crates/cpu/src/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpsb_cpu-4c1e06f4f3ef381a.rmeta: crates/cpu/src/lib.rs crates/cpu/src/bpred.rs crates/cpu/src/config.rs crates/cpu/src/fu.rs crates/cpu/src/inst.rs crates/cpu/src/mem_iface.rs crates/cpu/src/pipeline.rs Cargo.toml

crates/cpu/src/lib.rs:
crates/cpu/src/bpred.rs:
crates/cpu/src/config.rs:
crates/cpu/src/fu.rs:
crates/cpu/src/inst.rs:
crates/cpu/src/mem_iface.rs:
crates/cpu/src/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
