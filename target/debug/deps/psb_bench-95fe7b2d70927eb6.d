/root/repo/target/debug/deps/psb_bench-95fe7b2d70927eb6.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/psb_bench-95fe7b2d70927eb6: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
