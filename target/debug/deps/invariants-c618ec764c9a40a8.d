/root/repo/target/debug/deps/invariants-c618ec764c9a40a8.d: crates/sim/tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-c618ec764c9a40a8.rmeta: crates/sim/tests/invariants.rs Cargo.toml

crates/sim/tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
