/root/repo/target/debug/deps/psb-bdf00fbebaec4610.d: src/lib.rs

/root/repo/target/debug/deps/libpsb-bdf00fbebaec4610.rlib: src/lib.rs

/root/repo/target/debug/deps/libpsb-bdf00fbebaec4610.rmeta: src/lib.rs

src/lib.rs:
