/root/repo/target/debug/deps/ablate_markov-73a1554e97788f5f.d: crates/bench/src/bin/ablate_markov.rs

/root/repo/target/debug/deps/ablate_markov-73a1554e97788f5f: crates/bench/src/bin/ablate_markov.rs

crates/bench/src/bin/ablate_markov.rs:
