/root/repo/target/debug/deps/fig7-0a328da2d3d7d5fb.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-0a328da2d3d7d5fb: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
