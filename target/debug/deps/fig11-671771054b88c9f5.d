/root/repo/target/debug/deps/fig11-671771054b88c9f5.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-671771054b88c9f5: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
