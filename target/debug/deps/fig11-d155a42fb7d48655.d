/root/repo/target/debug/deps/fig11-d155a42fb7d48655.d: crates/bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-d155a42fb7d48655.rmeta: crates/bench/src/bin/fig11.rs Cargo.toml

crates/bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
