/root/repo/target/debug/deps/fig11-8f33e6a2a9d6a80f.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-8f33e6a2a9d6a80f: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
