/root/repo/target/debug/deps/ablate_victim-0b2bb64d81f6fecb.d: crates/bench/src/bin/ablate_victim.rs

/root/repo/target/debug/deps/ablate_victim-0b2bb64d81f6fecb: crates/bench/src/bin/ablate_victim.rs

crates/bench/src/bin/ablate_victim.rs:
