/root/repo/target/debug/deps/psbsim-a4d67873f71a1aab.d: src/bin/psbsim.rs Cargo.toml

/root/repo/target/debug/deps/libpsbsim-a4d67873f71a1aab.rmeta: src/bin/psbsim.rs Cargo.toml

src/bin/psbsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
