/root/repo/target/debug/deps/psb_check-1633d382f66f0147.d: crates/check/src/lib.rs

/root/repo/target/debug/deps/libpsb_check-1633d382f66f0147.rlib: crates/check/src/lib.rs

/root/repo/target/debug/deps/libpsb_check-1633d382f66f0147.rmeta: crates/check/src/lib.rs

crates/check/src/lib.rs:
