/root/repo/target/debug/deps/table2-4aa2db2b232c2a73.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-4aa2db2b232c2a73.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
