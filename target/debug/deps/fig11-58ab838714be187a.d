/root/repo/target/debug/deps/fig11-58ab838714be187a.d: crates/bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-58ab838714be187a: crates/bench/src/bin/fig11.rs

crates/bench/src/bin/fig11.rs:
