/root/repo/target/debug/deps/ablate_sched-6f60b2b6bfbf507c.d: crates/bench/src/bin/ablate_sched.rs

/root/repo/target/debug/deps/ablate_sched-6f60b2b6bfbf507c: crates/bench/src/bin/ablate_sched.rs

crates/bench/src/bin/ablate_sched.rs:
