/root/repo/target/debug/deps/prior_art-320853be8d21ca84.d: crates/bench/src/bin/prior_art.rs

/root/repo/target/debug/deps/prior_art-320853be8d21ca84: crates/bench/src/bin/prior_art.rs

crates/bench/src/bin/prior_art.rs:
