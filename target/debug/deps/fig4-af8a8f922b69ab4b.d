/root/repo/target/debug/deps/fig4-af8a8f922b69ab4b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-af8a8f922b69ab4b: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
