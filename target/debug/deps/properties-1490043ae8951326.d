/root/repo/target/debug/deps/properties-1490043ae8951326.d: crates/mem/tests/properties.rs

/root/repo/target/debug/deps/properties-1490043ae8951326: crates/mem/tests/properties.rs

crates/mem/tests/properties.rs:
