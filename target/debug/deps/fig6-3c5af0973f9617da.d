/root/repo/target/debug/deps/fig6-3c5af0973f9617da.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-3c5af0973f9617da: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
