/root/repo/target/debug/deps/properties-68d5285d4e523b54.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-68d5285d4e523b54: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
