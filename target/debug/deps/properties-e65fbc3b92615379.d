/root/repo/target/debug/deps/properties-e65fbc3b92615379.d: crates/common/tests/properties.rs

/root/repo/target/debug/deps/properties-e65fbc3b92615379: crates/common/tests/properties.rs

crates/common/tests/properties.rs:
