/root/repo/target/debug/deps/psb_core-794c43d27810fdcf.d: crates/core/src/lib.rs crates/core/src/demand.rs crates/core/src/fetch_directed.rs crates/core/src/predictor/mod.rs crates/core/src/predictor/markov.rs crates/core/src/predictor/pc_stride.rs crates/core/src/predictor/sequential.rs crates/core/src/predictor/sfm.rs crates/core/src/predictor/sfm2.rs crates/core/src/predictor/stride.rs crates/core/src/prefetcher.rs crates/core/src/stream/mod.rs crates/core/src/stream/buffer.rs crates/core/src/stream/config.rs crates/core/src/stream/engine.rs

/root/repo/target/debug/deps/psb_core-794c43d27810fdcf: crates/core/src/lib.rs crates/core/src/demand.rs crates/core/src/fetch_directed.rs crates/core/src/predictor/mod.rs crates/core/src/predictor/markov.rs crates/core/src/predictor/pc_stride.rs crates/core/src/predictor/sequential.rs crates/core/src/predictor/sfm.rs crates/core/src/predictor/sfm2.rs crates/core/src/predictor/stride.rs crates/core/src/prefetcher.rs crates/core/src/stream/mod.rs crates/core/src/stream/buffer.rs crates/core/src/stream/config.rs crates/core/src/stream/engine.rs

crates/core/src/lib.rs:
crates/core/src/demand.rs:
crates/core/src/fetch_directed.rs:
crates/core/src/predictor/mod.rs:
crates/core/src/predictor/markov.rs:
crates/core/src/predictor/pc_stride.rs:
crates/core/src/predictor/sequential.rs:
crates/core/src/predictor/sfm.rs:
crates/core/src/predictor/sfm2.rs:
crates/core/src/predictor/stride.rs:
crates/core/src/prefetcher.rs:
crates/core/src/stream/mod.rs:
crates/core/src/stream/buffer.rs:
crates/core/src/stream/config.rs:
crates/core/src/stream/engine.rs:
