/root/repo/target/debug/deps/prior_art-91295dc499b9ee80.d: crates/bench/src/bin/prior_art.rs Cargo.toml

/root/repo/target/debug/deps/libprior_art-91295dc499b9ee80.rmeta: crates/bench/src/bin/prior_art.rs Cargo.toml

crates/bench/src/bin/prior_art.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
