/root/repo/target/debug/deps/diag-4992ae5342ce0e60.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-4992ae5342ce0e60: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
