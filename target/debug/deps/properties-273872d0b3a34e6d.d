/root/repo/target/debug/deps/properties-273872d0b3a34e6d.d: crates/cpu/tests/properties.rs

/root/repo/target/debug/deps/properties-273872d0b3a34e6d: crates/cpu/tests/properties.rs

crates/cpu/tests/properties.rs:
