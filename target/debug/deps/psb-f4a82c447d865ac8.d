/root/repo/target/debug/deps/psb-f4a82c447d865ac8.d: src/lib.rs

/root/repo/target/debug/deps/libpsb-f4a82c447d865ac8.rlib: src/lib.rs

/root/repo/target/debug/deps/libpsb-f4a82c447d865ac8.rmeta: src/lib.rs

src/lib.rs:
