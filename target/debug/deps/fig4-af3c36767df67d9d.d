/root/repo/target/debug/deps/fig4-af3c36767df67d9d.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-af3c36767df67d9d: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
