/root/repo/target/debug/deps/properties-2d2946f3ff4dc9b2.d: crates/cpu/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-2d2946f3ff4dc9b2.rmeta: crates/cpu/tests/properties.rs Cargo.toml

crates/cpu/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
