/root/repo/target/debug/deps/ablate_sched-f9517243ec8cc16d.d: crates/bench/src/bin/ablate_sched.rs

/root/repo/target/debug/deps/ablate_sched-f9517243ec8cc16d: crates/bench/src/bin/ablate_sched.rs

crates/bench/src/bin/ablate_sched.rs:
