/root/repo/target/debug/deps/sweep-140009b7e60549a8.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-140009b7e60549a8: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
