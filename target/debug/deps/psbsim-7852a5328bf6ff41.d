/root/repo/target/debug/deps/psbsim-7852a5328bf6ff41.d: src/bin/psbsim.rs

/root/repo/target/debug/deps/psbsim-7852a5328bf6ff41: src/bin/psbsim.rs

src/bin/psbsim.rs:
