/root/repo/target/debug/deps/endtoend-18713e70d60c19a7.d: crates/bench/benches/endtoend.rs Cargo.toml

/root/repo/target/debug/deps/libendtoend-18713e70d60c19a7.rmeta: crates/bench/benches/endtoend.rs Cargo.toml

crates/bench/benches/endtoend.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
