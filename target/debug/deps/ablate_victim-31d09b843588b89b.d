/root/repo/target/debug/deps/ablate_victim-31d09b843588b89b.d: crates/bench/src/bin/ablate_victim.rs

/root/repo/target/debug/deps/ablate_victim-31d09b843588b89b: crates/bench/src/bin/ablate_victim.rs

crates/bench/src/bin/ablate_victim.rs:
