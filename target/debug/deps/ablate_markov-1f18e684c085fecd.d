/root/repo/target/debug/deps/ablate_markov-1f18e684c085fecd.d: crates/bench/src/bin/ablate_markov.rs

/root/repo/target/debug/deps/ablate_markov-1f18e684c085fecd: crates/bench/src/bin/ablate_markov.rs

crates/bench/src/bin/ablate_markov.rs:
