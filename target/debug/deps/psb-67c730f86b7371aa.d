/root/repo/target/debug/deps/psb-67c730f86b7371aa.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpsb-67c730f86b7371aa.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
