/root/repo/target/debug/deps/fig7-038a074499908dca.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-038a074499908dca: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
