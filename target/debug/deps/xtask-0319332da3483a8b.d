/root/repo/target/debug/deps/xtask-0319332da3483a8b.d: xtask/src/main.rs xtask/src/lints.rs

/root/repo/target/debug/deps/xtask-0319332da3483a8b: xtask/src/main.rs xtask/src/lints.rs

xtask/src/main.rs:
xtask/src/lints.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/xtask
