/root/repo/target/debug/deps/psbsim-0a7ebff341a893d8.d: src/bin/psbsim.rs

/root/repo/target/debug/deps/psbsim-0a7ebff341a893d8: src/bin/psbsim.rs

src/bin/psbsim.rs:
