/root/repo/target/debug/deps/fig6-f5f7c48af118c5d4.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-f5f7c48af118c5d4: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
