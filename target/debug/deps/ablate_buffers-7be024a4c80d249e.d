/root/repo/target/debug/deps/ablate_buffers-7be024a4c80d249e.d: crates/bench/src/bin/ablate_buffers.rs

/root/repo/target/debug/deps/ablate_buffers-7be024a4c80d249e: crates/bench/src/bin/ablate_buffers.rs

crates/bench/src/bin/ablate_buffers.rs:
