/root/repo/target/debug/deps/memory-9bf64d5c6be27193.d: crates/bench/benches/memory.rs Cargo.toml

/root/repo/target/debug/deps/libmemory-9bf64d5c6be27193.rmeta: crates/bench/benches/memory.rs Cargo.toml

crates/bench/benches/memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
