/root/repo/target/debug/deps/prior_art-9721ac1fdeddf03d.d: crates/bench/src/bin/prior_art.rs

/root/repo/target/debug/deps/prior_art-9721ac1fdeddf03d: crates/bench/src/bin/prior_art.rs

crates/bench/src/bin/prior_art.rs:
