/root/repo/target/debug/deps/fig7-c1a29af20e8b02a9.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-c1a29af20e8b02a9: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
