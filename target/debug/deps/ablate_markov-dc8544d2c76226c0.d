/root/repo/target/debug/deps/ablate_markov-dc8544d2c76226c0.d: crates/bench/src/bin/ablate_markov.rs

/root/repo/target/debug/deps/ablate_markov-dc8544d2c76226c0: crates/bench/src/bin/ablate_markov.rs

crates/bench/src/bin/ablate_markov.rs:
