/root/repo/target/debug/deps/fig5-6d3832def07f7f23.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-6d3832def07f7f23: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
