/root/repo/target/debug/deps/fig10-6c6d8a2765e1c523.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-6c6d8a2765e1c523: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
