/root/repo/target/debug/deps/psb_workloads-e493fb436499daa6.d: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/burg.rs crates/workloads/src/deltablue.rs crates/workloads/src/gs.rs crates/workloads/src/health.rs crates/workloads/src/heap.rs crates/workloads/src/serial.rs crates/workloads/src/sis.rs crates/workloads/src/trace.rs crates/workloads/src/turb3d.rs Cargo.toml

/root/repo/target/debug/deps/libpsb_workloads-e493fb436499daa6.rmeta: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/burg.rs crates/workloads/src/deltablue.rs crates/workloads/src/gs.rs crates/workloads/src/health.rs crates/workloads/src/heap.rs crates/workloads/src/serial.rs crates/workloads/src/sis.rs crates/workloads/src/trace.rs crates/workloads/src/turb3d.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/benchmark.rs:
crates/workloads/src/burg.rs:
crates/workloads/src/deltablue.rs:
crates/workloads/src/gs.rs:
crates/workloads/src/health.rs:
crates/workloads/src/heap.rs:
crates/workloads/src/serial.rs:
crates/workloads/src/sis.rs:
crates/workloads/src/trace.rs:
crates/workloads/src/turb3d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
