/root/repo/target/debug/deps/psb_bench-6cbb187a7b6193e0.d: crates/bench/src/lib.rs crates/bench/src/micro.rs Cargo.toml

/root/repo/target/debug/deps/libpsb_bench-6cbb187a7b6193e0.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
