/root/repo/target/debug/deps/fig6-72a2cde8f95c8048.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-72a2cde8f95c8048: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
