/root/repo/target/debug/deps/psb_bench-6523fc1f8aff6976.d: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libpsb_bench-6523fc1f8aff6976.rlib: crates/bench/src/lib.rs crates/bench/src/micro.rs

/root/repo/target/debug/deps/libpsb_bench-6523fc1f8aff6976.rmeta: crates/bench/src/lib.rs crates/bench/src/micro.rs

crates/bench/src/lib.rs:
crates/bench/src/micro.rs:
