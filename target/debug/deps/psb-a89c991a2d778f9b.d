/root/repo/target/debug/deps/psb-a89c991a2d778f9b.d: src/lib.rs

/root/repo/target/debug/deps/psb-a89c991a2d778f9b: src/lib.rs

src/lib.rs:
