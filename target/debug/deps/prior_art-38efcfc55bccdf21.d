/root/repo/target/debug/deps/prior_art-38efcfc55bccdf21.d: crates/bench/src/bin/prior_art.rs

/root/repo/target/debug/deps/prior_art-38efcfc55bccdf21: crates/bench/src/bin/prior_art.rs

crates/bench/src/bin/prior_art.rs:
