/root/repo/target/debug/deps/psb_mem-95694f7207895924.d: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/l1.rs crates/mem/src/lower.rs crates/mem/src/mshr.rs crates/mem/src/pipe.rs crates/mem/src/tlb.rs crates/mem/src/victim.rs

/root/repo/target/debug/deps/psb_mem-95694f7207895924: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/l1.rs crates/mem/src/lower.rs crates/mem/src/mshr.rs crates/mem/src/pipe.rs crates/mem/src/tlb.rs crates/mem/src/victim.rs

crates/mem/src/lib.rs:
crates/mem/src/bus.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/l1.rs:
crates/mem/src/lower.rs:
crates/mem/src/mshr.rs:
crates/mem/src/pipe.rs:
crates/mem/src/tlb.rs:
crates/mem/src/victim.rs:
