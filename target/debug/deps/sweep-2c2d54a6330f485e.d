/root/repo/target/debug/deps/sweep-2c2d54a6330f485e.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-2c2d54a6330f485e: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
