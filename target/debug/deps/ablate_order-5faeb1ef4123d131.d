/root/repo/target/debug/deps/ablate_order-5faeb1ef4123d131.d: crates/bench/src/bin/ablate_order.rs

/root/repo/target/debug/deps/ablate_order-5faeb1ef4123d131: crates/bench/src/bin/ablate_order.rs

crates/bench/src/bin/ablate_order.rs:
