/root/repo/target/debug/deps/ablate_victim-c22d9581ba900208.d: crates/bench/src/bin/ablate_victim.rs Cargo.toml

/root/repo/target/debug/deps/libablate_victim-c22d9581ba900208.rmeta: crates/bench/src/bin/ablate_victim.rs Cargo.toml

crates/bench/src/bin/ablate_victim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
