/root/repo/target/debug/deps/invariants-d32776893db8c486.d: crates/sim/tests/invariants.rs

/root/repo/target/debug/deps/invariants-d32776893db8c486: crates/sim/tests/invariants.rs

crates/sim/tests/invariants.rs:
