/root/repo/target/debug/deps/psb-0a20e10608dd96bf.d: src/lib.rs

/root/repo/target/debug/deps/psb-0a20e10608dd96bf: src/lib.rs

src/lib.rs:
