/root/repo/target/debug/deps/xtask-54450d6bf96ad32d.d: xtask/src/main.rs xtask/src/lints.rs

/root/repo/target/debug/deps/xtask-54450d6bf96ad32d: xtask/src/main.rs xtask/src/lints.rs

xtask/src/main.rs:
xtask/src/lints.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/xtask
