/root/repo/target/debug/deps/properties-c2440cc87162dcb1.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-c2440cc87162dcb1: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
