/root/repo/target/debug/deps/properties-6e8e97888f040609.d: crates/mem/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-6e8e97888f040609.rmeta: crates/mem/tests/properties.rs Cargo.toml

crates/mem/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
