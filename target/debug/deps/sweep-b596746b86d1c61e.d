/root/repo/target/debug/deps/sweep-b596746b86d1c61e.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-b596746b86d1c61e: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
