/root/repo/target/debug/deps/ablate_sched-ef12f97f3dca6639.d: crates/bench/src/bin/ablate_sched.rs Cargo.toml

/root/repo/target/debug/deps/libablate_sched-ef12f97f3dca6639.rmeta: crates/bench/src/bin/ablate_sched.rs Cargo.toml

crates/bench/src/bin/ablate_sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
