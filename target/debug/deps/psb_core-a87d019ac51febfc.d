/root/repo/target/debug/deps/psb_core-a87d019ac51febfc.d: crates/core/src/lib.rs crates/core/src/demand.rs crates/core/src/fetch_directed.rs crates/core/src/predictor/mod.rs crates/core/src/predictor/markov.rs crates/core/src/predictor/pc_stride.rs crates/core/src/predictor/sequential.rs crates/core/src/predictor/sfm.rs crates/core/src/predictor/sfm2.rs crates/core/src/predictor/stride.rs crates/core/src/prefetcher.rs crates/core/src/stream/mod.rs crates/core/src/stream/buffer.rs crates/core/src/stream/config.rs crates/core/src/stream/engine.rs Cargo.toml

/root/repo/target/debug/deps/libpsb_core-a87d019ac51febfc.rmeta: crates/core/src/lib.rs crates/core/src/demand.rs crates/core/src/fetch_directed.rs crates/core/src/predictor/mod.rs crates/core/src/predictor/markov.rs crates/core/src/predictor/pc_stride.rs crates/core/src/predictor/sequential.rs crates/core/src/predictor/sfm.rs crates/core/src/predictor/sfm2.rs crates/core/src/predictor/stride.rs crates/core/src/prefetcher.rs crates/core/src/stream/mod.rs crates/core/src/stream/buffer.rs crates/core/src/stream/config.rs crates/core/src/stream/engine.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/demand.rs:
crates/core/src/fetch_directed.rs:
crates/core/src/predictor/mod.rs:
crates/core/src/predictor/markov.rs:
crates/core/src/predictor/pc_stride.rs:
crates/core/src/predictor/sequential.rs:
crates/core/src/predictor/sfm.rs:
crates/core/src/predictor/sfm2.rs:
crates/core/src/predictor/stride.rs:
crates/core/src/prefetcher.rs:
crates/core/src/stream/mod.rs:
crates/core/src/stream/buffer.rs:
crates/core/src/stream/config.rs:
crates/core/src/stream/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
