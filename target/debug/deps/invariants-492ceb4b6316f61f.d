/root/repo/target/debug/deps/invariants-492ceb4b6316f61f.d: crates/sim/tests/invariants.rs

/root/repo/target/debug/deps/invariants-492ceb4b6316f61f: crates/sim/tests/invariants.rs

crates/sim/tests/invariants.rs:
