/root/repo/target/debug/deps/properties-35fd672b581e3032.d: crates/sim/tests/properties.rs

/root/repo/target/debug/deps/properties-35fd672b581e3032: crates/sim/tests/properties.rs

crates/sim/tests/properties.rs:
