/root/repo/target/debug/deps/fig9-61c9005d759e17b1.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-61c9005d759e17b1: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
