/root/repo/target/debug/deps/psb-b805a873b75eda9a.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpsb-b805a873b75eda9a.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
