/root/repo/target/debug/deps/psbsim-1e370a72e344f17a.d: src/bin/psbsim.rs

/root/repo/target/debug/deps/psbsim-1e370a72e344f17a: src/bin/psbsim.rs

src/bin/psbsim.rs:
