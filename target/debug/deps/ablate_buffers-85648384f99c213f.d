/root/repo/target/debug/deps/ablate_buffers-85648384f99c213f.d: crates/bench/src/bin/ablate_buffers.rs Cargo.toml

/root/repo/target/debug/deps/libablate_buffers-85648384f99c213f.rmeta: crates/bench/src/bin/ablate_buffers.rs Cargo.toml

crates/bench/src/bin/ablate_buffers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
