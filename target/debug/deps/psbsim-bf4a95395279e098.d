/root/repo/target/debug/deps/psbsim-bf4a95395279e098.d: src/bin/psbsim.rs Cargo.toml

/root/repo/target/debug/deps/libpsbsim-bf4a95395279e098.rmeta: src/bin/psbsim.rs Cargo.toml

src/bin/psbsim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
