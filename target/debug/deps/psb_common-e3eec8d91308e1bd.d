/root/repo/target/debug/deps/psb_common-e3eec8d91308e1bd.d: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/counter.rs crates/common/src/cycle.rs crates/common/src/rng.rs crates/common/src/stats.rs

/root/repo/target/debug/deps/psb_common-e3eec8d91308e1bd: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/counter.rs crates/common/src/cycle.rs crates/common/src/rng.rs crates/common/src/stats.rs

crates/common/src/lib.rs:
crates/common/src/addr.rs:
crates/common/src/counter.rs:
crates/common/src/cycle.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
