/root/repo/target/debug/deps/psb_check-e00971052339d971.d: crates/check/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpsb_check-e00971052339d971.rmeta: crates/check/src/lib.rs Cargo.toml

crates/check/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
