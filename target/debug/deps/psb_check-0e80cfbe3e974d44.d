/root/repo/target/debug/deps/psb_check-0e80cfbe3e974d44.d: crates/check/src/lib.rs

/root/repo/target/debug/deps/psb_check-0e80cfbe3e974d44: crates/check/src/lib.rs

crates/check/src/lib.rs:
