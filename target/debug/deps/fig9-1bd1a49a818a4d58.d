/root/repo/target/debug/deps/fig9-1bd1a49a818a4d58.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-1bd1a49a818a4d58: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
