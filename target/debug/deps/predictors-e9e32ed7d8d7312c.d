/root/repo/target/debug/deps/predictors-e9e32ed7d8d7312c.d: crates/bench/benches/predictors.rs Cargo.toml

/root/repo/target/debug/deps/libpredictors-e9e32ed7d8d7312c.rmeta: crates/bench/benches/predictors.rs Cargo.toml

crates/bench/benches/predictors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
