/root/repo/target/debug/deps/fig9-59424ebf9008b60f.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-59424ebf9008b60f: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
