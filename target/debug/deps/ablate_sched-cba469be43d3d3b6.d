/root/repo/target/debug/deps/ablate_sched-cba469be43d3d3b6.d: crates/bench/src/bin/ablate_sched.rs Cargo.toml

/root/repo/target/debug/deps/libablate_sched-cba469be43d3d3b6.rmeta: crates/bench/src/bin/ablate_sched.rs Cargo.toml

crates/bench/src/bin/ablate_sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
