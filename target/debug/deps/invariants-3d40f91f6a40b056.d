/root/repo/target/debug/deps/invariants-3d40f91f6a40b056.d: crates/sim/tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-3d40f91f6a40b056.rmeta: crates/sim/tests/invariants.rs Cargo.toml

crates/sim/tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
