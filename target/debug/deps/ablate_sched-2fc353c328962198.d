/root/repo/target/debug/deps/ablate_sched-2fc353c328962198.d: crates/bench/src/bin/ablate_sched.rs

/root/repo/target/debug/deps/ablate_sched-2fc353c328962198: crates/bench/src/bin/ablate_sched.rs

crates/bench/src/bin/ablate_sched.rs:
