/root/repo/target/debug/deps/diag-3f57b442192df790.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-3f57b442192df790: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
