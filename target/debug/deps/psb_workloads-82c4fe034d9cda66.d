/root/repo/target/debug/deps/psb_workloads-82c4fe034d9cda66.d: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/burg.rs crates/workloads/src/deltablue.rs crates/workloads/src/gs.rs crates/workloads/src/health.rs crates/workloads/src/heap.rs crates/workloads/src/serial.rs crates/workloads/src/sis.rs crates/workloads/src/trace.rs crates/workloads/src/turb3d.rs

/root/repo/target/debug/deps/libpsb_workloads-82c4fe034d9cda66.rlib: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/burg.rs crates/workloads/src/deltablue.rs crates/workloads/src/gs.rs crates/workloads/src/health.rs crates/workloads/src/heap.rs crates/workloads/src/serial.rs crates/workloads/src/sis.rs crates/workloads/src/trace.rs crates/workloads/src/turb3d.rs

/root/repo/target/debug/deps/libpsb_workloads-82c4fe034d9cda66.rmeta: crates/workloads/src/lib.rs crates/workloads/src/benchmark.rs crates/workloads/src/burg.rs crates/workloads/src/deltablue.rs crates/workloads/src/gs.rs crates/workloads/src/health.rs crates/workloads/src/heap.rs crates/workloads/src/serial.rs crates/workloads/src/sis.rs crates/workloads/src/trace.rs crates/workloads/src/turb3d.rs

crates/workloads/src/lib.rs:
crates/workloads/src/benchmark.rs:
crates/workloads/src/burg.rs:
crates/workloads/src/deltablue.rs:
crates/workloads/src/gs.rs:
crates/workloads/src/health.rs:
crates/workloads/src/heap.rs:
crates/workloads/src/serial.rs:
crates/workloads/src/sis.rs:
crates/workloads/src/trace.rs:
crates/workloads/src/turb3d.rs:
