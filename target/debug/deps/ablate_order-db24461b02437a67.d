/root/repo/target/debug/deps/ablate_order-db24461b02437a67.d: crates/bench/src/bin/ablate_order.rs

/root/repo/target/debug/deps/ablate_order-db24461b02437a67: crates/bench/src/bin/ablate_order.rs

crates/bench/src/bin/ablate_order.rs:
