/root/repo/target/debug/deps/fig5-bf366437176408aa.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-bf366437176408aa: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
