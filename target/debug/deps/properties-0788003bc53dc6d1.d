/root/repo/target/debug/deps/properties-0788003bc53dc6d1.d: crates/common/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0788003bc53dc6d1.rmeta: crates/common/tests/properties.rs Cargo.toml

crates/common/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
