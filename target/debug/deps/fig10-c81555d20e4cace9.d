/root/repo/target/debug/deps/fig10-c81555d20e4cace9.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-c81555d20e4cace9: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
