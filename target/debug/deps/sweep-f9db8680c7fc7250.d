/root/repo/target/debug/deps/sweep-f9db8680c7fc7250.d: crates/bench/src/bin/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-f9db8680c7fc7250.rmeta: crates/bench/src/bin/sweep.rs Cargo.toml

crates/bench/src/bin/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
