/root/repo/target/debug/deps/fig4-c75a0182a6a70e81.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-c75a0182a6a70e81: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
