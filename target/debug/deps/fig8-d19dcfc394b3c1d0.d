/root/repo/target/debug/deps/fig8-d19dcfc394b3c1d0.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-d19dcfc394b3c1d0: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
