/root/repo/target/debug/deps/end_to_end-8d5770996cb1098a.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-8d5770996cb1098a: tests/end_to_end.rs

tests/end_to_end.rs:
