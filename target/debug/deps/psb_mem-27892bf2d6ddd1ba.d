/root/repo/target/debug/deps/psb_mem-27892bf2d6ddd1ba.d: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/l1.rs crates/mem/src/lower.rs crates/mem/src/mshr.rs crates/mem/src/pipe.rs crates/mem/src/tlb.rs crates/mem/src/victim.rs Cargo.toml

/root/repo/target/debug/deps/libpsb_mem-27892bf2d6ddd1ba.rmeta: crates/mem/src/lib.rs crates/mem/src/bus.rs crates/mem/src/cache.rs crates/mem/src/config.rs crates/mem/src/l1.rs crates/mem/src/lower.rs crates/mem/src/mshr.rs crates/mem/src/pipe.rs crates/mem/src/tlb.rs crates/mem/src/victim.rs Cargo.toml

crates/mem/src/lib.rs:
crates/mem/src/bus.rs:
crates/mem/src/cache.rs:
crates/mem/src/config.rs:
crates/mem/src/l1.rs:
crates/mem/src/lower.rs:
crates/mem/src/mshr.rs:
crates/mem/src/pipe.rs:
crates/mem/src/tlb.rs:
crates/mem/src/victim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
