/root/repo/target/debug/deps/ablate_buffers-80aed0a0e04e4817.d: crates/bench/src/bin/ablate_buffers.rs Cargo.toml

/root/repo/target/debug/deps/libablate_buffers-80aed0a0e04e4817.rmeta: crates/bench/src/bin/ablate_buffers.rs Cargo.toml

crates/bench/src/bin/ablate_buffers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
