/root/repo/target/debug/deps/table2-841a297fc69ae0f4.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-841a297fc69ae0f4: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
