/root/repo/target/debug/deps/ablate_buffers-67a21c1cfeef5a71.d: crates/bench/src/bin/ablate_buffers.rs

/root/repo/target/debug/deps/ablate_buffers-67a21c1cfeef5a71: crates/bench/src/bin/ablate_buffers.rs

crates/bench/src/bin/ablate_buffers.rs:
