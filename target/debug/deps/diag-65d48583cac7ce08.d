/root/repo/target/debug/deps/diag-65d48583cac7ce08.d: crates/bench/src/bin/diag.rs

/root/repo/target/debug/deps/diag-65d48583cac7ce08: crates/bench/src/bin/diag.rs

crates/bench/src/bin/diag.rs:
