/root/repo/target/debug/deps/ablate_order-2d77b54f6cee3cb8.d: crates/bench/src/bin/ablate_order.rs Cargo.toml

/root/repo/target/debug/deps/libablate_order-2d77b54f6cee3cb8.rmeta: crates/bench/src/bin/ablate_order.rs Cargo.toml

crates/bench/src/bin/ablate_order.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
