/root/repo/target/debug/deps/fig5-f2cd7df8e79fc1d8.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-f2cd7df8e79fc1d8: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
