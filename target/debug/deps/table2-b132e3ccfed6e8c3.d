/root/repo/target/debug/deps/table2-b132e3ccfed6e8c3.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-b132e3ccfed6e8c3: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
