/root/repo/target/debug/deps/ablate_markov-9948b53d8f54862a.d: crates/bench/src/bin/ablate_markov.rs Cargo.toml

/root/repo/target/debug/deps/libablate_markov-9948b53d8f54862a.rmeta: crates/bench/src/bin/ablate_markov.rs Cargo.toml

crates/bench/src/bin/ablate_markov.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
