/root/repo/target/debug/deps/prior_art-2185eb39c21cfd33.d: crates/bench/src/bin/prior_art.rs Cargo.toml

/root/repo/target/debug/deps/libprior_art-2185eb39c21cfd33.rmeta: crates/bench/src/bin/prior_art.rs Cargo.toml

crates/bench/src/bin/prior_art.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
