/root/repo/target/debug/deps/end_to_end-ec39d720ab987cf2.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ec39d720ab987cf2: tests/end_to_end.rs

tests/end_to_end.rs:
