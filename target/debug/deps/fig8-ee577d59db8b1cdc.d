/root/repo/target/debug/deps/fig8-ee577d59db8b1cdc.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-ee577d59db8b1cdc: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
