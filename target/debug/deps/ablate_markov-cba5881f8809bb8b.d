/root/repo/target/debug/deps/ablate_markov-cba5881f8809bb8b.d: crates/bench/src/bin/ablate_markov.rs Cargo.toml

/root/repo/target/debug/deps/libablate_markov-cba5881f8809bb8b.rmeta: crates/bench/src/bin/ablate_markov.rs Cargo.toml

crates/bench/src/bin/ablate_markov.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
