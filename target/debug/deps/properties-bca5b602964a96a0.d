/root/repo/target/debug/deps/properties-bca5b602964a96a0.d: crates/core/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-bca5b602964a96a0.rmeta: crates/core/tests/properties.rs Cargo.toml

crates/core/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
