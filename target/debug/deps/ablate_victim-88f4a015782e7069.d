/root/repo/target/debug/deps/ablate_victim-88f4a015782e7069.d: crates/bench/src/bin/ablate_victim.rs

/root/repo/target/debug/deps/ablate_victim-88f4a015782e7069: crates/bench/src/bin/ablate_victim.rs

crates/bench/src/bin/ablate_victim.rs:
