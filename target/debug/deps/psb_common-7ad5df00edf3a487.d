/root/repo/target/debug/deps/psb_common-7ad5df00edf3a487.d: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/counter.rs crates/common/src/cycle.rs crates/common/src/rng.rs crates/common/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libpsb_common-7ad5df00edf3a487.rmeta: crates/common/src/lib.rs crates/common/src/addr.rs crates/common/src/counter.rs crates/common/src/cycle.rs crates/common/src/rng.rs crates/common/src/stats.rs Cargo.toml

crates/common/src/lib.rs:
crates/common/src/addr.rs:
crates/common/src/counter.rs:
crates/common/src/cycle.rs:
crates/common/src/rng.rs:
crates/common/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
