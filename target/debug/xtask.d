/root/repo/target/debug/xtask: /root/repo/xtask/src/lints.rs /root/repo/xtask/src/main.rs
