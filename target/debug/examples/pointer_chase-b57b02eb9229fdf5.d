/root/repo/target/debug/examples/pointer_chase-b57b02eb9229fdf5.d: examples/pointer_chase.rs Cargo.toml

/root/repo/target/debug/examples/libpointer_chase-b57b02eb9229fdf5.rmeta: examples/pointer_chase.rs Cargo.toml

examples/pointer_chase.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
