/root/repo/target/debug/examples/predictor_anatomy-b8fb21769fd0c2e6.d: examples/predictor_anatomy.rs

/root/repo/target/debug/examples/predictor_anatomy-b8fb21769fd0c2e6: examples/predictor_anatomy.rs

examples/predictor_anatomy.rs:
