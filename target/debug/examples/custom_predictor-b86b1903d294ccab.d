/root/repo/target/debug/examples/custom_predictor-b86b1903d294ccab.d: examples/custom_predictor.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_predictor-b86b1903d294ccab.rmeta: examples/custom_predictor.rs Cargo.toml

examples/custom_predictor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
