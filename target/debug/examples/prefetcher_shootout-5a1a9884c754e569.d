/root/repo/target/debug/examples/prefetcher_shootout-5a1a9884c754e569.d: examples/prefetcher_shootout.rs

/root/repo/target/debug/examples/prefetcher_shootout-5a1a9884c754e569: examples/prefetcher_shootout.rs

examples/prefetcher_shootout.rs:
