/root/repo/target/debug/examples/pointer_chase-d2e4916cafb7ad54.d: examples/pointer_chase.rs

/root/repo/target/debug/examples/pointer_chase-d2e4916cafb7ad54: examples/pointer_chase.rs

examples/pointer_chase.rs:
