/root/repo/target/debug/examples/prefetcher_shootout-0c45488a9af13139.d: examples/prefetcher_shootout.rs

/root/repo/target/debug/examples/prefetcher_shootout-0c45488a9af13139: examples/prefetcher_shootout.rs

examples/prefetcher_shootout.rs:
