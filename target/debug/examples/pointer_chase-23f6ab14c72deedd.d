/root/repo/target/debug/examples/pointer_chase-23f6ab14c72deedd.d: examples/pointer_chase.rs

/root/repo/target/debug/examples/pointer_chase-23f6ab14c72deedd: examples/pointer_chase.rs

examples/pointer_chase.rs:
