/root/repo/target/debug/examples/predictor_anatomy-deea18060f495a72.d: examples/predictor_anatomy.rs

/root/repo/target/debug/examples/predictor_anatomy-deea18060f495a72: examples/predictor_anatomy.rs

examples/predictor_anatomy.rs:
