/root/repo/target/debug/examples/predictor_anatomy-2a742d47c55e6686.d: examples/predictor_anatomy.rs Cargo.toml

/root/repo/target/debug/examples/libpredictor_anatomy-2a742d47c55e6686.rmeta: examples/predictor_anatomy.rs Cargo.toml

examples/predictor_anatomy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
