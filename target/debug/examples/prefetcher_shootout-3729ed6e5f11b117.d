/root/repo/target/debug/examples/prefetcher_shootout-3729ed6e5f11b117.d: examples/prefetcher_shootout.rs Cargo.toml

/root/repo/target/debug/examples/libprefetcher_shootout-3729ed6e5f11b117.rmeta: examples/prefetcher_shootout.rs Cargo.toml

examples/prefetcher_shootout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
