/root/repo/target/debug/examples/quickstart-7349d98fe2cf9bb1.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7349d98fe2cf9bb1: examples/quickstart.rs

examples/quickstart.rs:
