/root/repo/target/debug/examples/custom_predictor-575ec2e0a7288623.d: examples/custom_predictor.rs

/root/repo/target/debug/examples/custom_predictor-575ec2e0a7288623: examples/custom_predictor.rs

examples/custom_predictor.rs:
