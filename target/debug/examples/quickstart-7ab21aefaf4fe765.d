/root/repo/target/debug/examples/quickstart-7ab21aefaf4fe765.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7ab21aefaf4fe765: examples/quickstart.rs

examples/quickstart.rs:
