/root/repo/target/debug/examples/custom_predictor-d1c8b06cd4537b2b.d: examples/custom_predictor.rs

/root/repo/target/debug/examples/custom_predictor-d1c8b06cd4537b2b: examples/custom_predictor.rs

examples/custom_predictor.rs:
