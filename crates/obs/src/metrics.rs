//! The metrics registry: named counters, log2-bucketed histograms and
//! sampled gauges behind cheap cloneable handles.
//!
//! Components that want to report a metric ask the [`Registry`] for a
//! handle once, at attach time, and then update the handle on the hot
//! path — an `Rc<Cell<u64>>` increment for counters, a `RefCell` borrow
//! for histograms and gauges. Components that are never attached pay
//! nothing: their `Option<Counter>` fields stay `None`.
//!
//! # Example
//!
//! ```
//! use psb_obs::metrics::Registry;
//!
//! let mut reg = Registry::new();
//! let hits = reg.counter("l1d.victim.rescues");
//! hits.inc();
//! hits.add(2);
//! assert_eq!(hits.get(), 3);
//! // Asking again for the same name returns the same underlying cell.
//! assert_eq!(reg.counter("l1d.victim.rescues").get(), 3);
//! let json = reg.to_json();
//! assert!(json.get("counters").is_some());
//! ```

use crate::json::Json;
use psb_common::stats::{GaugeStats, Log2Histogram};

// The handle types live in psb-common so core crates can report metrics
// without depending on this hub; re-exported here to keep existing
// `psb_obs::metrics::{Counter, Hist, Gauge}` paths working.
pub use psb_common::metrics::{Counter, Gauge, Hist};

/// A named, insertion-ordered collection of metric handles.
///
/// Registering the same name twice returns a handle to the same metric,
/// so independent components can share a series without coordination.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Vec<(String, Counter)>,
    hists: Vec<(String, Hist)>,
    gauges: Vec<(String, Gauge)>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A counter handle for `name`, created on first use.
    pub fn counter(&mut self, name: &str) -> Counter {
        if let Some((_, c)) = self.counters.iter().find(|(n, _)| n == name) {
            return c.clone();
        }
        let c = Counter::new();
        self.counters.push((name.to_string(), c.clone()));
        c
    }

    /// A histogram handle for `name`, created on first use.
    pub fn hist(&mut self, name: &str) -> Hist {
        if let Some((_, h)) = self.hists.iter().find(|(n, _)| n == name) {
            return h.clone();
        }
        let h = Hist::new();
        self.hists.push((name.to_string(), h.clone()));
        h
    }

    /// A gauge handle for `name`, created on first use.
    pub fn gauge(&mut self, name: &str) -> Gauge {
        if let Some((_, g)) = self.gauges.iter().find(|(n, _)| n == name) {
            return g.clone();
        }
        let g = Gauge::new();
        self.gauges.push((name.to_string(), g.clone()));
        g
    }

    /// Sets a counter to an absolute value — used to import end-of-run
    /// aggregates from components that keep their own plain stats.
    pub fn record(&mut self, name: &str, value: u64) {
        let c = self.counter(name);
        c.add(value.saturating_sub(c.get()));
    }

    /// Number of registered metrics across all kinds.
    pub fn len(&self) -> usize {
        self.counters.len() + self.hists.len() + self.gauges.len()
    }

    /// True if nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies every metric's current value into a plain-data,
    /// `Send`-able [`RegistrySnapshot`], in registration order.
    ///
    /// This is the handoff type for cross-thread consumers (the live
    /// HTTP endpoint): the live handles are `Rc`-backed and must stay on
    /// the simulation thread, so a serving thread is always given a
    /// snapshot taken at one consistent instant and published whole —
    /// it can never observe a half-updated registry.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self.counters.iter().map(|(n, c)| (n.clone(), c.get())).collect(),
            hists: self.hists.iter().map(|(n, h)| (n.clone(), h.snapshot())).collect(),
            gauges: self.gauges.iter().map(|(n, g)| (n.clone(), g.snapshot())).collect(),
        }
    }

    /// Serializes every metric, in registration order.
    pub fn to_json(&self) -> Json {
        self.snapshot().to_json()
    }
}

/// A point-in-time copy of a [`Registry`]: plain owned data (`Send` +
/// `Sync`), safe to hand to another thread and serialize there.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// Counter values, in registration order.
    pub counters: Vec<(String, u64)>,
    /// Histogram accumulators, in registration order.
    pub hists: Vec<(String, Log2Histogram)>,
    /// Gauge accumulators, in registration order.
    pub gauges: Vec<(String, GaugeStats)>,
}

impl RegistrySnapshot {
    /// Serializes the snapshot exactly as [`Registry::to_json`] would.
    pub fn to_json(&self) -> Json {
        let counters = Json::obj(self.counters.iter().map(|(n, v)| (n.clone(), Json::u64(*v))));
        let hists = Json::obj(self.hists.iter().map(|(n, h)| (n.clone(), hist_json(h))));
        let gauges = Json::obj(self.gauges.iter().map(|(n, g)| (n.clone(), gauge_json(g))));
        Json::obj([("counters", counters), ("histograms", hists), ("gauges", gauges)])
    }
}

fn hist_json(snap: &Log2Histogram) -> Json {
    let buckets = Json::arr(snap.nonzero_buckets().map(|(i, count)| {
        let (lo, hi) = Log2Histogram::bucket_range(i);
        Json::obj([("lo", Json::u64(lo)), ("hi", Json::u64(hi)), ("count", Json::u64(count))])
    }));
    Json::obj([
        ("total", Json::u64(snap.total())),
        ("mean", Json::f64(snap.mean())),
        ("max", Json::u64(snap.max().unwrap_or(0))),
        ("buckets", buckets),
    ])
}

fn gauge_json(snap: &GaugeStats) -> Json {
    Json::obj([
        ("last", Json::u64(snap.last().unwrap_or(0))),
        ("min", Json::u64(snap.min().unwrap_or(0))),
        ("max", Json::u64(snap.max().unwrap_or(0))),
        ("mean", Json::f64(snap.mean())),
        ("samples", Json::u64(snap.samples())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let mut reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn registry_json_is_insertion_ordered() {
        let mut reg = Registry::new();
        reg.counter("zeta").add(1);
        reg.counter("alpha").add(2);
        let json = reg.to_json();
        let Json::Obj(ref sections) = json else { panic!("expected object") };
        assert_eq!(sections[0].0, "counters");
        let counters = json.get("counters").unwrap();
        let Json::Obj(pairs) = counters else { panic!("expected object") };
        assert_eq!(pairs[0].0, "zeta");
        assert_eq!(pairs[1].0, "alpha");
    }

    #[test]
    fn hist_json_has_bucket_ranges() {
        let mut reg = Registry::new();
        let h = reg.hist("delay");
        h.observe(5);
        h.observe(6);
        let json = reg.to_json();
        let b = json.get("histograms").and_then(|h| h.get("delay")).unwrap();
        assert_eq!(b.get("total").and_then(Json::as_u64), Some(2));
        let buckets = b.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].get("lo").and_then(Json::as_u64), Some(4));
        assert_eq!(buckets[0].get("hi").and_then(Json::as_u64), Some(7));
        assert_eq!(buckets[0].get("count").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn gauge_json_reports_extremes() {
        let mut reg = Registry::new();
        let g = reg.gauge("mshr");
        g.sample(3);
        g.sample(1);
        let json = reg.to_json();
        let v = json.get("gauges").and_then(|g| g.get("mshr")).unwrap();
        assert_eq!(v.get("last").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("max").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("samples").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn snapshot_is_a_consistent_detached_copy() {
        let mut reg = Registry::new();
        let c = reg.counter("done");
        let h = reg.hist("micros");
        let g = reg.gauge("occ");
        c.add(3);
        h.observe(100);
        g.sample(7);
        let snap = reg.snapshot();
        // Later updates to the live handles must not leak into the
        // snapshot — it is a copy, not a view.
        c.add(10);
        h.observe(9000);
        g.sample(1);
        assert_eq!(snap.counters, vec![("done".to_string(), 3)]);
        assert_eq!(snap.hists[0].1.total(), 1);
        assert_eq!(snap.gauges[0].1.last(), Some(7));
        // And it serializes exactly like the registry did at that point.
        let json = snap.to_json();
        assert_eq!(json.get("counters").unwrap().get("done").and_then(Json::as_u64), Some(3));
        fn is_send<T: Send + Sync>(_: &T) {}
        is_send(&snap);
    }

    #[test]
    fn record_sets_absolute_value() {
        let mut reg = Registry::new();
        reg.record("total", 10);
        reg.record("total", 25);
        assert_eq!(reg.counter("total").get(), 25);
    }
}
