//! A hand-rolled JSON tree, serializer and parser — no dependencies.
//!
//! The simulator's machine-readable artifacts (run reports, Chrome
//! traces, bench results) all go through [`Json`]. Objects keep their
//! insertion order so reports serialize deterministically, and the
//! bundled [`parse`] function is enough for round-trip tests and for
//! `cargo xtask validate-artifacts` to check emitted files offline.
//!
//! # Example
//!
//! ```
//! use psb_obs::json::Json;
//!
//! let j = Json::obj([
//!     ("name", Json::str("health")),
//!     ("ipc", Json::f64(0.76)),
//!     ("cycles", Json::u64(414_000)),
//! ]);
//! let text = j.to_string();
//! let back = psb_obs::json::parse(&text).unwrap();
//! assert_eq!(back.get("name").and_then(Json::as_str), Some("health"));
//! ```

use std::fmt;

/// A JSON value.
///
/// Numbers are split into unsigned/signed/float variants so `u64`
/// counters (cycles, addresses) survive serialization without a lossy
/// trip through `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters, cycles).
    U64(u64),
    /// A signed integer (strides, deltas).
    I64(i64),
    /// A float; non-finite values serialize as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an unsigned integer value.
    pub fn u64(v: u64) -> Json {
        Json::U64(v)
    }

    /// Builds a signed integer value.
    pub fn i64(v: i64) -> Json {
        Json::I64(v)
    }

    /// Builds a float value.
    pub fn f64(v: f64) -> Json {
        Json::F64(v)
    }

    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, accepting any non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `f64`, accepting any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Writes `s` as a JSON string literal with full escaping.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{8}' => f.write_str("\\b")?,
            '\u{c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(v) => write!(f, "{v}"),
            Json::I64(v) => write!(f, "{v}"),
            Json::F64(v) if !v.is_finite() => f.write_str("null"),
            // Integral floats print a trailing ".0" so they stay floats
            // on re-parse; everything else uses shortest-round-trip.
            Json::F64(v) if v.fract() == 0.0 && v.abs() < 1e15 => write!(f, "{v:.1}"),
            Json::F64(v) => write!(f, "{v}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A JSON parse error with byte offset context.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (surrounding whitespace allowed).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { at: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            if (0xd800..0xdc00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid \\u escape"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (c as char).to_digit(16).ok_or_else(|| self.err("invalid hex digit"))?;
            v = (v << 4) | d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Json::F64).map_err(|_| self.err("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Json::I64).map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>().map(Json::U64).map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote \" backslash \\ newline \n tab \t ctrl \u{1} unicode \u{1F600}";
        let j = Json::obj([("k", Json::str(nasty))]);
        let text = j.to_string();
        assert!(text.contains("\\\""));
        assert!(text.contains("\\\\"));
        assert!(text.contains("\\n"));
        assert!(text.contains("\\u0001"));
        let back = parse(&text).expect("round trip");
        assert_eq!(back.get("k").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn numbers_preserve_width_and_sign() {
        let j = Json::arr([Json::u64(u64::MAX), Json::i64(-42), Json::f64(0.5)]);
        let back = parse(&j.to_string()).expect("round trip");
        let items = back.as_arr().expect("array");
        assert_eq!(items[0].as_u64(), Some(u64::MAX));
        assert_eq!(items[1], Json::I64(-42));
        assert_eq!(items[2].as_f64(), Some(0.5));
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = Json::f64(3.0).to_string();
        assert_eq!(text, "3.0");
        assert_eq!(parse(&text).expect("parses"), Json::F64(3.0));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(Json::f64(f64::NAN).to_string(), "null");
        assert_eq!(Json::f64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn object_order_is_preserved() {
        let j = Json::obj([("z", Json::u64(1)), ("a", Json::u64(2))]);
        assert_eq!(j.to_string(), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn nested_structures_round_trip() {
        let j = Json::obj([
            ("arr", Json::arr([Json::Null, Json::Bool(true), Json::str("x")])),
            ("obj", Json::obj([("inner", Json::arr([]))])),
        ]);
        assert_eq!(parse(&j.to_string()).expect("round trip"), j);
    }

    #[test]
    fn parser_accepts_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , \"\\u0041\\n\" ] } ").expect("parses");
        let arr = v.get("a").and_then(Json::as_arr).expect("array");
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("A\n"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("'single'").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse("\"\\ud83d\\ude00\"").expect("parses");
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(parse("\"\\ud83d\"").is_err(), "lone high surrogate");
    }

    #[test]
    fn accessors_are_typed() {
        let j = parse("{\"n\": 3, \"s\": \"x\", \"f\": 1.5}").expect("parses");
        assert_eq!(j.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("missing"), None);
        assert_eq!(j.get("s").and_then(Json::as_u64), None);
        assert_eq!(j.get("f").and_then(Json::as_u64), None, "fractional is not u64");
    }
}
