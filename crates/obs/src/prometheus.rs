//! Prometheus text exposition rendering for registry snapshots.
//!
//! The live HTTP endpoint (`psbsweep --serve` / `psbsim --serve`)
//! exposes `GET /metrics` in the Prometheus text format, version
//! `0.0.4`, rendered from a [`RegistrySnapshot`] — never from the live
//! `Rc`-backed handles, which must stay on the simulation thread.
//!
//! Mapping:
//!
//! * counters → `# TYPE psb_<name> counter` with the current value,
//! * gauges → `# TYPE psb_<name> gauge` with the last sampled value,
//! * log2 histograms → a Prometheus histogram: cumulative
//!   `psb_<name>_bucket{le="..."}` rows at each power-of-two boundary
//!   that has samples, plus `_sum` and `_count`.
//!
//! Metric names are sanitized to `[a-zA-Z0-9_]` (dots become
//! underscores), so `sweep.cells_completed` serves as
//! `psb_sweep_cells_completed`.
//!
//! # Example
//!
//! ```
//! use psb_obs::metrics::Registry;
//!
//! let mut reg = Registry::new();
//! reg.counter("sweep.cells_completed").add(3);
//! let text = psb_obs::prometheus::render(&reg.snapshot());
//! assert!(text.contains("psb_sweep_cells_completed 3"));
//! assert!(text.contains("# TYPE psb_sweep_cells_completed counter"));
//! ```

use crate::metrics::RegistrySnapshot;
use psb_common::stats::Log2Histogram;
use std::fmt::Write as _;

/// Prefix stamped on every exported metric name.
const PREFIX: &str = "psb_";

/// Maps a registry metric name onto a legal Prometheus metric name.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(PREFIX.len() + name.len());
    out.push_str(PREFIX);
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a snapshot as a Prometheus text-exposition document.
pub fn render(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {value}");
    }
    for (name, gauge) in &snapshot.gauges {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", gauge.last().unwrap_or(0));
    }
    for (name, hist) in &snapshot.hists {
        render_histogram(&mut out, &sanitize(name), hist);
    }
    out
}

/// One log2 histogram as cumulative `_bucket` rows plus `_sum`/`_count`.
fn render_histogram(out: &mut String, n: &str, hist: &Log2Histogram) {
    let _ = writeln!(out, "# TYPE {n} histogram");
    let mut cumulative = 0u64;
    for (i, count) in hist.nonzero_buckets() {
        cumulative += count;
        let (_, hi) = Log2Histogram::bucket_range(i);
        let _ = writeln!(out, "{n}_bucket{{le=\"{hi}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", hist.total());
    let _ = writeln!(out, "{n}_sum {}", hist.sum());
    let _ = writeln!(out, "{n}_count {}", hist.total());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn counters_and_gauges_render_with_type_lines() {
        let mut reg = Registry::new();
        reg.counter("sweep.cells_total").add(36);
        reg.gauge("l1d.mshr.occupancy").sample(4);
        let text = render(&reg.snapshot());
        assert!(text.contains("# TYPE psb_sweep_cells_total counter\npsb_sweep_cells_total 36\n"));
        assert!(
            text.contains("# TYPE psb_l1d_mshr_occupancy gauge\npsb_l1d_mshr_occupancy 4\n"),
            "{text}"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let mut reg = Registry::new();
        let h = reg.hist("sweep.cell_micros");
        h.observe(3); // bucket [2, 3]
        h.observe(3);
        h.observe(100); // bucket [64, 127]
        let text = render(&reg.snapshot());
        assert!(text.contains("# TYPE psb_sweep_cell_micros histogram"), "{text}");
        assert!(text.contains("psb_sweep_cell_micros_bucket{le=\"3\"} 2"), "{text}");
        assert!(text.contains("psb_sweep_cell_micros_bucket{le=\"127\"} 3"), "{text}");
        assert!(text.contains("psb_sweep_cell_micros_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("psb_sweep_cell_micros_sum 106"), "{text}");
        assert!(text.contains("psb_sweep_cell_micros_count 3"), "{text}");
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize("a.b-c/d"), "psb_a_b_c_d");
        assert_eq!(sanitize("already_ok1"), "psb_already_ok1");
    }

    #[test]
    fn empty_snapshot_renders_empty_document() {
        assert_eq!(render(&RegistrySnapshot::default()), "");
    }
}
