//! Chrome trace-event output (the JSON object format Perfetto loads).
//!
//! The sink accumulates events and serializes them as
//! `{"traceEvents": [...]}`. Timestamps are simulated cycles reported in
//! the format's microsecond field, so one trace microsecond equals one
//! simulated cycle. Each stream buffer gets its own thread track (`tid`)
//! via [`TraceSink::thread_name`], which emits the standard `M`
//! (metadata) event.
//!
//! Event phases used here:
//!
//! * `X` — complete event with a duration (a prefetch in flight),
//! * `i` — instant event (a demand hit, an eviction),
//! * `C` — counter event (occupancy, priority over time),
//! * `M` — metadata (process/thread names).
//!
//! # Example
//!
//! ```
//! use psb_obs::trace::TraceSink;
//!
//! let mut t = TraceSink::new(1024);
//! t.thread_name(0, "stream-buffer-0");
//! t.complete("prefetch", "prefetch", 0, 100, 45, &[("block", 0x40)]);
//! t.instant("used", "demand", 0, 150, &[("block", 0x40)]);
//! let json = t.to_json();
//! assert_eq!(json.get("traceEvents").and_then(|e| e.as_arr()).map(|a| a.len()), Some(3));
//! ```

use crate::json::Json;

/// The process id every event reports; the trace models one simulator.
pub const PID: u64 = 1;

/// A bounded sink of Chrome trace events.
///
/// Events past the capacity are dropped (the drop count is reported in
/// the serialized metadata) so tracing a long run cannot exhaust memory.
#[derive(Debug)]
pub struct TraceSink {
    events: Vec<Json>,
    capacity: usize,
    dropped: u64,
}

impl TraceSink {
    /// Creates a sink that keeps at most `capacity` events.
    pub fn new(capacity: usize) -> TraceSink {
        TraceSink { events: Vec::new(), capacity, dropped: 0 }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped after the sink filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn push(&mut self, event: Json) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
        } else {
            self.events.push(event);
        }
    }

    /// Names the thread track `tid` (phase `M` metadata event).
    pub fn thread_name(&mut self, tid: u64, name: &str) {
        self.push(Json::obj([
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::u64(PID)),
            ("tid", Json::u64(tid)),
            ("args", Json::obj([("name", Json::str(name))])),
        ]));
    }

    /// A complete event (`X`): `name` on track `tid`, spanning
    /// `[ts, ts + dur]` cycles, with numeric `args`.
    pub fn complete(
        &mut self,
        name: &str,
        cat: &str,
        tid: u64,
        ts: u64,
        dur: u64,
        args: &[(&str, u64)],
    ) {
        self.push(Json::obj([
            ("name", Json::str(name)),
            ("cat", Json::str(cat)),
            ("ph", Json::str("X")),
            ("ts", Json::u64(ts)),
            ("dur", Json::u64(dur)),
            ("pid", Json::u64(PID)),
            ("tid", Json::u64(tid)),
            ("args", args_json(args)),
        ]));
    }

    /// An instant event (`i`) on track `tid` at cycle `ts`.
    pub fn instant(&mut self, name: &str, cat: &str, tid: u64, ts: u64, args: &[(&str, u64)]) {
        self.push(Json::obj([
            ("name", Json::str(name)),
            ("cat", Json::str(cat)),
            ("ph", Json::str("i")),
            ("s", Json::str("t")),
            ("ts", Json::u64(ts)),
            ("pid", Json::u64(PID)),
            ("tid", Json::u64(tid)),
            ("args", args_json(args)),
        ]));
    }

    /// A counter event (`C`): one or more named series sampled at `ts`.
    pub fn counter(&mut self, name: &str, tid: u64, ts: u64, series: &[(&str, u64)]) {
        self.push(Json::obj([
            ("name", Json::str(name)),
            ("ph", Json::str("C")),
            ("ts", Json::u64(ts)),
            ("pid", Json::u64(PID)),
            ("tid", Json::u64(tid)),
            ("args", args_json(series)),
        ]));
    }

    /// Serializes the trace as a Chrome trace-event JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("traceEvents", Json::Arr(self.events.clone())),
            ("displayTimeUnit", Json::str("ms")),
            (
                "otherData",
                Json::obj([
                    ("clock", Json::str("1 trace us = 1 simulated cycle")),
                    ("dropped_events", Json::u64(self.dropped)),
                ]),
            ),
        ])
    }
}

fn args_json(args: &[(&str, u64)]) -> Json {
    Json::obj(args.iter().map(|&(k, v)| (k, Json::u64(v))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    /// The golden snippet: a prefetch lifecycle on one buffer track must
    /// round-trip through the parser and carry the fields Perfetto
    /// requires (name, ph, ts, pid, tid; dur for `X`).
    #[test]
    fn golden_trace_snippet_is_well_formed() {
        let mut t = TraceSink::new(16);
        t.thread_name(2, "stream-buffer-2");
        t.complete("prefetch", "prefetch", 2, 1000, 36, &[("block", 0x1f40)]);
        t.instant("used", "demand", 2, 1040, &[("block", 0x1f40), ("late_by", 0)]);
        t.counter("occupancy", 2, 1040, &[("ready", 3), ("in_flight", 1)]);
        let text = t.to_json().to_string();
        let back = parse(&text).expect("trace must re-parse");
        let events = back.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
        assert_eq!(events.len(), 4);
        for e in events {
            assert!(e.get("name").and_then(Json::as_str).is_some(), "every event has a name");
            let ph = e.get("ph").and_then(Json::as_str).expect("every event has a phase");
            assert!(e.get("pid").and_then(Json::as_u64).is_some());
            assert!(e.get("tid").and_then(Json::as_u64).is_some());
            if ph != "M" {
                assert!(e.get("ts").and_then(Json::as_u64).is_some(), "{ph} event has ts");
            }
            if ph == "X" {
                assert!(e.get("dur").and_then(Json::as_u64).is_some(), "X event has dur");
            }
        }
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(
            events[1].get("args").and_then(|a| a.get("block")).and_then(Json::as_u64),
            Some(0x1f40)
        );
    }

    #[test]
    fn sink_caps_and_counts_drops() {
        let mut t = TraceSink::new(2);
        for i in 0..5 {
            t.instant("e", "c", 0, i, &[]);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let json = t.to_json();
        let meta = json.get("otherData").unwrap();
        assert_eq!(meta.get("dropped_events").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn empty_sink_serializes() {
        let t = TraceSink::new(8);
        assert!(t.is_empty());
        let text = t.to_json().to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back.get("traceEvents").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
    }
}
