//! Interval time series: per-epoch IPC, miss rate, prefetch accuracy
//! and bus utilization.
//!
//! The simulator feeds the sampler *cumulative* totals at each epoch
//! boundary; the sampler differences consecutive snapshots so phase
//! behavior (e.g. health's pointer-chase phases) becomes visible without
//! the components having to keep per-epoch counters themselves.
//!
//! # Example
//!
//! ```
//! use psb_obs::interval::{IntervalSampler, IntervalSample};
//!
//! let mut s = IntervalSampler::new(1000);
//! s.record(IntervalSample { cycle: 1000, committed: 800, ..Default::default() });
//! s.record(IntervalSample { cycle: 2000, committed: 1400, ..Default::default() });
//! assert_eq!(s.epochs().len(), 2);
//! assert_eq!(s.epochs()[1].ipc, 0.6);
//! ```

use crate::json::Json;

/// Cumulative totals at a moment in the run. The sampler differences
/// consecutive samples, so every field must be monotonic.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct IntervalSample {
    /// Current cycle.
    pub cycle: u64,
    /// Instructions committed so far.
    pub committed: u64,
    /// L1D accesses so far.
    pub l1d_accesses: u64,
    /// L1D misses so far.
    pub l1d_misses: u64,
    /// Prefetches issued so far.
    pub pf_issued: u64,
    /// Prefetched blocks used so far.
    pub pf_used: u64,
    /// L2↔memory bus busy cycles so far.
    pub bus_busy: u64,
}

/// One closed epoch's rates, computed from two cumulative samples.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Epoch {
    /// First cycle of the epoch.
    pub start_cycle: u64,
    /// Last cycle of the epoch (exclusive).
    pub end_cycle: u64,
    /// Instructions committed within the epoch.
    pub committed: u64,
    /// Instructions per cycle within the epoch.
    pub ipc: f64,
    /// L1D miss rate within the epoch, in `[0, 1]`.
    pub l1d_miss_rate: f64,
    /// Fraction of epoch-issued prefetches that were used, in `[0, 1]`.
    ///
    /// Computed from per-epoch deltas, so a use in epoch *n* of a block
    /// issued in epoch *n−1* can push this above 1.0 transiently.
    pub pf_accuracy: f64,
    /// Memory-bus busy percentage within the epoch.
    pub bus_util_pct: f64,
}

impl Epoch {
    /// Serializes the epoch.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("start", Json::u64(self.start_cycle)),
            ("end", Json::u64(self.end_cycle)),
            ("committed", Json::u64(self.committed)),
            ("ipc", Json::f64(self.ipc)),
            ("l1d_miss_rate", Json::f64(self.l1d_miss_rate)),
            ("pf_accuracy", Json::f64(self.pf_accuracy)),
            ("bus_util_pct", Json::f64(self.bus_util_pct)),
        ])
    }
}

/// Converts cumulative samples into per-epoch rate series.
#[derive(Clone, Debug)]
pub struct IntervalSampler {
    every: u64,
    last: IntervalSample,
    epochs: Vec<Epoch>,
}

impl IntervalSampler {
    /// Creates a sampler with epoch length `every` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `every` is 0.
    pub fn new(every: u64) -> IntervalSampler {
        assert!(every > 0, "epoch length must be positive");
        IntervalSampler { every, last: IntervalSample::default(), epochs: Vec::new() }
    }

    /// Configured epoch length in cycles.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Closes the epoch between the previous sample and `cum`.
    ///
    /// A call that does not advance the cycle is ignored, so the final
    /// flush at run end is safe even when it lands exactly on a
    /// boundary that was already recorded.
    pub fn record(&mut self, cum: IntervalSample) {
        let cycles = cum.cycle.saturating_sub(self.last.cycle);
        if cycles == 0 {
            return;
        }
        let committed = cum.committed - self.last.committed;
        let accesses = cum.l1d_accesses - self.last.l1d_accesses;
        let misses = cum.l1d_misses - self.last.l1d_misses;
        let issued = cum.pf_issued - self.last.pf_issued;
        let used = cum.pf_used - self.last.pf_used;
        let busy = cum.bus_busy - self.last.bus_busy;
        self.epochs.push(Epoch {
            start_cycle: self.last.cycle,
            end_cycle: cum.cycle,
            committed,
            ipc: committed as f64 / cycles as f64,
            l1d_miss_rate: if accesses == 0 { 0.0 } else { misses as f64 / accesses as f64 },
            pf_accuracy: if issued == 0 { 0.0 } else { used as f64 / issued as f64 },
            bus_util_pct: 100.0 * busy as f64 / cycles as f64,
        });
        self.last = cum;
    }

    /// All closed epochs, in time order.
    pub fn epochs(&self) -> &[Epoch] {
        &self.epochs
    }

    /// Copies the closed epochs into an owned, `Send`-able vector.
    ///
    /// [`IntervalSampler::epochs`] borrows the live series, which only
    /// the simulation thread may hold; a serving thread gets this
    /// detached copy instead, taken between [`IntervalSampler::record`]
    /// calls, so it can never observe a row mid-write.
    pub fn snapshot(&self) -> Vec<Epoch> {
        self.epochs.clone()
    }

    /// Serializes the series as an array of epoch objects.
    pub fn to_json(&self) -> Json {
        Json::arr(self.epochs.iter().map(Epoch::to_json))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycle: u64, committed: u64) -> IntervalSample {
        IntervalSample { cycle, committed, ..Default::default() }
    }

    #[test]
    fn epoch_deltas_not_cumulative_rates() {
        let mut s = IntervalSampler::new(100);
        s.record(IntervalSample {
            cycle: 100,
            committed: 50,
            l1d_accesses: 40,
            l1d_misses: 10,
            pf_issued: 8,
            pf_used: 2,
            bus_busy: 25,
        });
        s.record(IntervalSample {
            cycle: 200,
            committed: 150,
            l1d_accesses: 60,
            l1d_misses: 12,
            pf_issued: 12,
            pf_used: 5,
            bus_busy: 75,
        });
        let e = s.epochs();
        assert_eq!(e.len(), 2);
        // First epoch covers [0, 100).
        assert_eq!((e[0].start_cycle, e[0].end_cycle), (0, 100));
        assert_eq!(e[0].ipc, 0.5);
        assert_eq!(e[0].l1d_miss_rate, 0.25);
        assert_eq!(e[0].pf_accuracy, 0.25);
        assert_eq!(e[0].bus_util_pct, 25.0);
        // Second epoch must report the delta, not the running total:
        // 100 commits over 100 cycles, 2 misses over 20 accesses.
        assert_eq!((e[1].start_cycle, e[1].end_cycle), (100, 200));
        assert_eq!(e[1].ipc, 1.0);
        assert_eq!(e[1].l1d_miss_rate, 0.1);
        assert_eq!(e[1].pf_accuracy, 0.75);
        assert_eq!(e[1].bus_util_pct, 50.0);
    }

    #[test]
    fn zero_width_record_is_ignored() {
        let mut s = IntervalSampler::new(10);
        s.record(sample(10, 5));
        s.record(sample(10, 5)); // final flush landing on a recorded boundary
        assert_eq!(s.epochs().len(), 1);
    }

    #[test]
    fn partial_final_epoch_keeps_true_width() {
        let mut s = IntervalSampler::new(100);
        s.record(sample(100, 100));
        s.record(sample(137, 137)); // run ended mid-epoch
        let e = s.epochs();
        assert_eq!(e.len(), 2);
        assert_eq!((e[1].start_cycle, e[1].end_cycle), (100, 137));
        assert_eq!(e[1].ipc, 1.0);
    }

    #[test]
    fn empty_denominators_are_zero_not_nan() {
        let mut s = IntervalSampler::new(10);
        s.record(sample(10, 0));
        let e = &s.epochs()[0];
        assert_eq!(e.l1d_miss_rate, 0.0);
        assert_eq!(e.pf_accuracy, 0.0);
        assert!(e.to_json().to_string().contains("\"ipc\":0.0"));
    }

    #[test]
    #[should_panic(expected = "epoch length")]
    fn zero_epoch_length_rejected() {
        let _ = IntervalSampler::new(0);
    }

    #[test]
    fn snapshot_detaches_from_later_records() {
        let mut s = IntervalSampler::new(10);
        s.record(sample(10, 5));
        let snap = s.snapshot();
        s.record(sample(20, 15));
        assert_eq!(snap.len(), 1);
        assert_eq!(s.epochs().len(), 2);
        assert_eq!(snap[0], s.epochs()[0]);
    }
}
