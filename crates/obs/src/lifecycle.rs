//! Prefetch-lifecycle accounting: where prefetches go to die.
//!
//! Every prefetched block moves through the stages the paper's Figures
//! 6–9 argue about:
//!
//! ```text
//! predicted (entry allocated) → issued (on the bus) → filled (arrived)
//!     → used           (a demand access consumed it)
//!     → used late      (demanded while still in flight)
//!     → evicted unused (its stream buffer was reallocated first)
//! ```
//!
//! [`LifecycleStats`] holds the aggregate counts; [`LifeEvent`] is the
//! per-block record the simulator forwards into its bounded event log.

use crate::json::Json;
use psb_common::stats::RunningMean;

/// Aggregate counts over every prefetch lifecycle stage.
#[derive(Clone, Debug, Default)]
pub struct LifecycleStats {
    /// Stream buffers (re)allocated to a new stream.
    pub streams_allocated: u64,
    /// Predictions accepted into a stream-buffer entry.
    pub predicted: u64,
    /// Prefetches issued to the memory system.
    pub issued: u64,
    /// Prefetched blocks that arrived and became demand-hittable.
    pub filled: u64,
    /// Prefetched blocks consumed by a demand access (includes late uses).
    pub used: u64,
    /// Uses that arrived late: the demand access hit a block still in
    /// flight and stalled for the remainder of its fill.
    pub used_late: u64,
    /// Cycles of residual latency paid by late uses.
    pub late_cycles: RunningMean,
    /// Entries holding a predicted or fetched block that were discarded
    /// when their buffer was reallocated to a new stream.
    pub evicted_unused: u64,
    /// Allocated (not yet issued) entries freed because the demand
    /// stream reached them before the prefetch port did.
    pub demand_raced: u64,
}

impl LifecycleStats {
    /// Serializes the counts.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("streams_allocated", Json::u64(self.streams_allocated)),
            ("predicted", Json::u64(self.predicted)),
            ("issued", Json::u64(self.issued)),
            ("filled", Json::u64(self.filled)),
            ("used", Json::u64(self.used)),
            ("used_late", Json::u64(self.used_late)),
            ("late_cycles_mean", Json::f64(self.late_cycles.mean())),
            ("evicted_unused", Json::u64(self.evicted_unused)),
            ("demand_raced", Json::u64(self.demand_raced)),
        ])
    }
}

/// A lifecycle stage transition worth logging per block.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LifeStage {
    /// The block arrived in its stream buffer.
    Filled,
    /// The block was discarded, never used, at stream reallocation.
    EvictedUnused,
    /// A demand access hit the block while it was still in flight.
    Late,
}

/// One per-block lifecycle record, forwarded into the simulator's
/// memory event log.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LifeEvent {
    /// Cycle of the transition.
    pub cycle: u64,
    /// Index of the stream buffer involved.
    pub buffer: usize,
    /// Base address of the block.
    pub block_base: u64,
    /// Which transition happened.
    pub stage: LifeStage,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_serialize_every_stage() {
        let mut s = LifecycleStats {
            predicted: 10,
            issued: 8,
            filled: 7,
            used: 5,
            used_late: 2,
            evicted_unused: 3,
            ..Default::default()
        };
        s.late_cycles.add(12);
        s.late_cycles.add(4);
        let j = s.to_json();
        assert_eq!(j.get("predicted").and_then(Json::as_u64), Some(10));
        assert_eq!(j.get("used").and_then(Json::as_u64), Some(5));
        assert_eq!(j.get("used_late").and_then(Json::as_u64), Some(2));
        assert_eq!(j.get("evicted_unused").and_then(Json::as_u64), Some(3));
        assert_eq!(j.get("late_cycles_mean").and_then(Json::as_f64), Some(8.0));
    }
}
