//! `psb-obs` — the simulator's observability layer.
//!
//! A zero-dependency crate providing:
//!
//! * [`metrics`] — a registry of named counters, log2 histograms and
//!   sampled gauges behind cheap cloneable handles,
//! * [`lifecycle`] — prefetch-lifecycle accounting (predicted → issued →
//!   filled → used / evicted-unused / late),
//! * [`interval`] — per-epoch IPC / miss-rate / accuracy / bus-utilization
//!   time series,
//! * [`trace`] — Chrome trace-event output loadable in Perfetto, one
//!   thread track per stream buffer,
//! * [`json`] — the hand-rolled JSON tree, serializer and parser that
//!   all machine-readable artifacts go through.
//!
//! The [`Obs`] hub ties these together behind one cloneable handle that
//! the simulator owns and threads into the stream engine, predictors,
//! MSHRs, buses and victim cache. Components hold an `Option` of the
//! handle (or of a pre-fetched metric), so a run without observability
//! attached pays nothing on the hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Per-epoch interval time series (IPC, miss rate, accuracy, bus).
pub mod interval;
/// Hand-rolled JSON tree, serializer and parser.
pub mod json;
/// Prefetch-lifecycle accounting and per-block staging events.
pub mod lifecycle;
/// Named counters, log2 histograms and sampled gauges.
pub mod metrics;
/// Prometheus text-exposition rendering of registry snapshots.
pub mod prometheus;
/// Chrome trace-event sink (Perfetto-loadable).
pub mod trace;

pub use interval::{Epoch, IntervalSample, IntervalSampler};
pub use json::Json;
pub use lifecycle::{LifeEvent, LifeStage, LifecycleStats};
pub use metrics::{Counter, Gauge, Hist, Registry, RegistrySnapshot};
pub use trace::TraceSink;

use std::cell::RefCell;
use std::rc::Rc;

/// How many per-block lifecycle records the hub buffers for the
/// simulator's event log before dropping new ones. The event log itself
/// is bounded, so an unbounded staging queue would only waste memory.
const PENDING_CAP: usize = 4096;

#[derive(Debug)]
struct ObsCore {
    registry: Registry,
    lifecycle: LifecycleStats,
    trace: Option<TraceSink>,
    interval: Option<IntervalSampler>,
    pending: Vec<LifeEvent>,
    pending_enabled: bool,
}

/// The central observability handle.
///
/// Cloning is cheap (one `Rc`); all clones share the same registry,
/// lifecycle counters, trace sink and interval sampler. Every method is
/// safe to call whether or not tracing / interval sampling is enabled —
/// disabled sinks simply ignore the call.
///
/// # Example
///
/// ```
/// use psb_obs::Obs;
///
/// let obs = Obs::new();
/// obs.enable_trace(1 << 16);
/// obs.enable_interval(10_000);
/// obs.predicted(100, 0, 0x4000);
/// obs.issued(101, 0, 0x4000, 140);
/// obs.used(150, 0, 0x4000, 0);
/// let life = obs.lifecycle_json();
/// assert_eq!(life.get("used").and_then(|v| v.as_u64()), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct Obs {
    inner: Rc<RefCell<ObsCore>>,
    epoch_hook: Rc<RefCell<Option<EpochHook>>>,
}

/// A callback fired after every closed interval epoch (see
/// [`Obs::set_epoch_hook`]). Boxed so the hub stays `Debug`.
struct EpochHook(Box<dyn FnMut(&Obs)>);

impl std::fmt::Debug for EpochHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EpochHook(..)")
    }
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new()
    }
}

impl Obs {
    /// Creates a hub with an empty registry and no trace/interval sinks.
    pub fn new() -> Obs {
        Obs {
            inner: Rc::new(RefCell::new(ObsCore {
                registry: Registry::new(),
                lifecycle: LifecycleStats::default(),
                trace: None,
                interval: None,
                pending: Vec::new(),
                pending_enabled: false,
            })),
            epoch_hook: Rc::new(RefCell::new(None)),
        }
    }

    // ---- configuration -------------------------------------------------

    /// Turns on Chrome-trace collection, keeping at most `capacity`
    /// events.
    pub fn enable_trace(&self, capacity: usize) {
        self.inner.borrow_mut().trace = Some(TraceSink::new(capacity));
    }

    /// Turns on interval sampling with epochs of `every` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `every` is 0.
    pub fn enable_interval(&self, every: u64) {
        self.inner.borrow_mut().interval = Some(IntervalSampler::new(every));
    }

    /// Turns on per-block lifecycle staging for the simulator's event
    /// log ([`Obs::drain_life_events`]).
    pub fn enable_lifecycle_log(&self) {
        self.inner.borrow_mut().pending_enabled = true;
    }

    /// True when per-block detail (tracing or lifecycle staging) is on.
    /// Components may cache this at attach time to skip pre-scans that
    /// only feed per-block events.
    pub fn wants_block_events(&self) -> bool {
        let core = self.inner.borrow();
        core.trace.is_some() || core.pending_enabled
    }

    /// Epoch length of the interval sampler, if one is enabled.
    pub fn interval_every(&self) -> Option<u64> {
        self.inner.borrow().interval.as_ref().map(IntervalSampler::every)
    }

    // ---- registry ------------------------------------------------------

    /// A counter handle for `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner.borrow_mut().registry.counter(name)
    }

    /// A histogram handle for `name`, created on first use.
    pub fn hist(&self, name: &str) -> Hist {
        self.inner.borrow_mut().registry.hist(name)
    }

    /// A gauge handle for `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner.borrow_mut().registry.gauge(name)
    }

    /// Sets counter `name` to an absolute value (end-of-run imports).
    pub fn record(&self, name: &str, value: u64) {
        self.inner.borrow_mut().registry.record(name, value);
    }

    // ---- stream-engine lifecycle hooks ---------------------------------

    /// A stream buffer was (re)allocated to a new stream. `displaced`
    /// counts the not-yet-used entries thrown away by the reallocation.
    pub fn stream_allocated(
        &self,
        now: u64,
        buffer: usize,
        pc: u64,
        confidence: u64,
        displaced: u64,
    ) {
        let mut core = self.inner.borrow_mut();
        core.lifecycle.streams_allocated += 1;
        core.lifecycle.evicted_unused += displaced;
        if let Some(t) = core.trace.as_mut() {
            t.instant(
                "alloc",
                "stream",
                buffer as u64,
                now,
                &[("pc", pc), ("confidence", confidence), ("displaced", displaced)],
            );
        }
    }

    /// A block displaced unused at reallocation (per-block detail; the
    /// aggregate count is carried by [`Obs::stream_allocated`]).
    pub fn evicted_unused_block(&self, now: u64, buffer: usize, block_base: u64) {
        let mut core = self.inner.borrow_mut();
        core.push_pending(LifeEvent {
            cycle: now,
            buffer,
            block_base,
            stage: LifeStage::EvictedUnused,
        });
        if let Some(t) = core.trace.as_mut() {
            t.instant("evicted-unused", "prefetch", buffer as u64, now, &[("block", block_base)]);
        }
    }

    /// A prediction was accepted into a stream-buffer entry.
    pub fn predicted(&self, now: u64, buffer: usize, block_base: u64) {
        let mut core = self.inner.borrow_mut();
        core.lifecycle.predicted += 1;
        if let Some(t) = core.trace.as_mut() {
            t.instant("predicted", "prefetch", buffer as u64, now, &[("block", block_base)]);
        }
    }

    /// A prefetch was issued at `now` and will arrive at `ready`; the
    /// in-flight window becomes a complete (`X`) event on the buffer's
    /// track.
    pub fn issued(&self, now: u64, buffer: usize, block_base: u64, ready: u64) {
        let mut core = self.inner.borrow_mut();
        core.lifecycle.issued += 1;
        if let Some(t) = core.trace.as_mut() {
            t.complete(
                "prefetch",
                "prefetch",
                buffer as u64,
                now,
                ready.saturating_sub(now),
                &[("block", block_base)],
            );
        }
    }

    /// `count` prefetched blocks arrived in `buffer` this cycle.
    pub fn filled(&self, now: u64, buffer: usize, count: u64) {
        let _ = (now, buffer);
        self.inner.borrow_mut().lifecycle.filled += count;
    }

    /// A prefetched block arrived (per-block detail for the event log).
    pub fn filled_block(&self, now: u64, buffer: usize, block_base: u64) {
        let mut core = self.inner.borrow_mut();
        core.push_pending(LifeEvent { cycle: now, buffer, block_base, stage: LifeStage::Filled });
    }

    /// A demand access consumed a prefetched block. `late_by` is the
    /// residual fill latency the demand had to wait out (0 for a block
    /// that was already resident).
    pub fn used(&self, now: u64, buffer: usize, block_base: u64, late_by: u64) {
        let mut core = self.inner.borrow_mut();
        core.lifecycle.used += 1;
        if late_by > 0 {
            core.lifecycle.used_late += 1;
            core.lifecycle.late_cycles.add(late_by);
            core.push_pending(LifeEvent { cycle: now, buffer, block_base, stage: LifeStage::Late });
        }
        if let Some(t) = core.trace.as_mut() {
            t.instant(
                "used",
                "demand",
                buffer as u64,
                now,
                &[("block", block_base), ("late_by", late_by)],
            );
        }
    }

    /// The demand stream reached an allocated entry before it issued.
    pub fn demand_raced(&self, now: u64, buffer: usize, block_base: u64) {
        let mut core = self.inner.borrow_mut();
        core.lifecycle.demand_raced += 1;
        if let Some(t) = core.trace.as_mut() {
            t.instant("demand-raced", "demand", buffer as u64, now, &[("block", block_base)]);
        }
    }

    /// Samples a buffer's occupancy/priority counter track (only
    /// recorded when tracing is enabled).
    pub fn buffer_occupancy(
        &self,
        now: u64,
        buffer: usize,
        ready: u64,
        in_flight: u64,
        priority: u64,
    ) {
        let mut core = self.inner.borrow_mut();
        if let Some(t) = core.trace.as_mut() {
            t.counter(
                "occupancy",
                buffer as u64,
                now,
                &[("ready", ready), ("in_flight", in_flight), ("priority", priority)],
            );
        }
    }

    /// Names the trace track of stream buffer `buffer`.
    pub fn name_buffer_track(&self, buffer: usize, name: &str) {
        let mut core = self.inner.borrow_mut();
        if let Some(t) = core.trace.as_mut() {
            t.thread_name(buffer as u64, name);
        }
    }

    // ---- interval sampling ---------------------------------------------

    /// Feeds the interval sampler one cumulative snapshot (no-op when
    /// sampling is disabled). When the sample closes an epoch, the
    /// epoch hook (if any) fires after all internal borrows are
    /// released, so the hook may freely call back into the hub.
    pub fn interval_record(&self, cum: IntervalSample) {
        let closed_epoch = {
            let mut core = self.inner.borrow_mut();
            match core.interval.as_mut() {
                Some(s) => {
                    let before = s.epochs().len();
                    s.record(cum);
                    s.epochs().len() > before
                }
                None => false,
            }
        };
        if closed_epoch {
            self.fire_epoch_hook();
        }
    }

    /// Registers a callback fired once per closed interval epoch, with
    /// every internal borrow released — the hook may read any snapshot
    /// accessor on the hub it is handed. Live-serving front ends hang
    /// their periodic publication here (`psbsim --serve`). Replaces any
    /// previous hook; clones of the hub share one hook.
    pub fn set_epoch_hook(&self, hook: impl FnMut(&Obs) + 'static) {
        *self.epoch_hook.borrow_mut() = Some(EpochHook(Box::new(hook)));
    }

    /// Runs the epoch hook, tolerating a hook that replaces itself.
    fn fire_epoch_hook(&self) {
        let taken = self.epoch_hook.borrow_mut().take();
        if let Some(mut hook) = taken {
            (hook.0)(self);
            let mut slot = self.epoch_hook.borrow_mut();
            if slot.is_none() {
                *slot = Some(hook);
            }
        }
    }

    // ---- draining / output ---------------------------------------------

    /// Takes all staged per-block lifecycle events (oldest first).
    pub fn drain_life_events(&self) -> Vec<LifeEvent> {
        std::mem::take(&mut self.inner.borrow_mut().pending)
    }

    /// Copies out the aggregate lifecycle counters.
    pub fn lifecycle_stats(&self) -> LifecycleStats {
        self.inner.borrow().lifecycle.clone()
    }

    /// Serializes the lifecycle counters.
    pub fn lifecycle_json(&self) -> Json {
        self.inner.borrow().lifecycle.to_json()
    }

    /// Serializes the metrics registry.
    pub fn registry_json(&self) -> Json {
        self.inner.borrow().registry.to_json()
    }

    /// A consistent, `Send`-able copy of the metrics registry — the
    /// handoff type for a serving thread (see [`Registry::snapshot`]).
    pub fn registry_snapshot(&self) -> metrics::RegistrySnapshot {
        self.inner.borrow().registry.snapshot()
    }

    /// A consistent, `Send`-able copy of the closed interval epochs
    /// (empty when sampling is disabled); never exposes a torn row the
    /// way reading through a live borrow mid-`record` could.
    pub fn epochs_snapshot(&self) -> Vec<Epoch> {
        match self.inner.borrow().interval.as_ref() {
            Some(s) => s.snapshot(),
            None => Vec::new(),
        }
    }

    /// Serializes the interval series (empty array when disabled).
    pub fn epochs_json(&self) -> Json {
        match self.inner.borrow().interval.as_ref() {
            Some(s) => s.to_json(),
            None => Json::arr([]),
        }
    }

    /// Serializes the Chrome trace, if tracing was enabled.
    pub fn trace_json(&self) -> Option<Json> {
        self.inner.borrow().trace.as_ref().map(TraceSink::to_json)
    }
}

impl ObsCore {
    fn push_pending(&mut self, event: LifeEvent) {
        if self.pending_enabled && self.pending.len() < PENDING_CAP {
            self.pending.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn clones_share_state() {
        let a = Obs::new();
        let b = a.clone();
        a.predicted(1, 0, 0x100);
        b.predicted(2, 1, 0x200);
        assert_eq!(a.lifecycle_stats().predicted, 2);
    }

    #[test]
    fn late_use_counts_and_stages() {
        let obs = Obs::new();
        obs.enable_lifecycle_log();
        obs.used(50, 2, 0x40, 12);
        obs.used(60, 2, 0x80, 0);
        let s = obs.lifecycle_stats();
        assert_eq!(s.used, 2);
        assert_eq!(s.used_late, 1);
        assert_eq!(s.late_cycles.mean(), 12.0);
        let events = obs.drain_life_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].stage, LifeStage::Late);
        assert_eq!(events[0].block_base, 0x40);
        assert!(obs.drain_life_events().is_empty(), "drain takes ownership");
    }

    #[test]
    fn pending_disabled_by_default() {
        let obs = Obs::new();
        obs.filled_block(1, 0, 0x40);
        assert!(obs.drain_life_events().is_empty());
    }

    #[test]
    fn trace_disabled_hooks_are_noops() {
        let obs = Obs::new();
        assert!(!obs.wants_block_events());
        obs.issued(10, 0, 0x40, 50);
        obs.buffer_occupancy(10, 0, 1, 1, 3);
        assert!(obs.trace_json().is_none());
        assert_eq!(obs.lifecycle_stats().issued, 1);
    }

    #[test]
    fn trace_records_complete_event_for_issue() {
        let obs = Obs::new();
        obs.enable_trace(64);
        assert!(obs.wants_block_events());
        obs.name_buffer_track(3, "stream-buffer-3");
        obs.issued(10, 3, 0x40, 46);
        let json = obs.trace_json().unwrap();
        let events = json.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(events[1].get("dur").and_then(Json::as_u64), Some(36));
        assert_eq!(events[1].get("tid").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn epoch_hook_fires_per_closed_epoch_and_may_reenter() {
        let obs = Obs::new();
        obs.enable_interval(100);
        let fired = Rc::new(Cell::new(0u32));
        let seen_epochs = Rc::new(Cell::new(0usize));
        let f = fired.clone();
        let s = seen_epochs.clone();
        obs.set_epoch_hook(move |hub: &Obs| {
            f.set(f.get() + 1);
            // Re-entering the hub from the hook must not panic on a
            // RefCell borrow — this is the serving publish path.
            s.set(hub.epochs_snapshot().len());
            let _ = hub.registry_snapshot();
        });
        obs.interval_record(IntervalSample { cycle: 100, committed: 10, ..Default::default() });
        obs.interval_record(IntervalSample { cycle: 200, committed: 30, ..Default::default() });
        // A record that closes no epoch must not fire the hook.
        obs.interval_record(IntervalSample { cycle: 200, committed: 30, ..Default::default() });
        assert_eq!(fired.get(), 2);
        assert_eq!(seen_epochs.get(), 2);
    }

    #[test]
    fn epoch_hook_absent_or_sampling_disabled_is_a_noop() {
        let obs = Obs::new();
        // No sampler: nothing to close, nothing to fire.
        obs.set_epoch_hook(|_| panic!("must not fire without a sampler"));
        obs.interval_record(IntervalSample { cycle: 50, committed: 5, ..Default::default() });
        // Sampler without a hook: records fine.
        let plain = Obs::new();
        plain.enable_interval(10);
        plain.interval_record(IntervalSample { cycle: 10, committed: 1, ..Default::default() });
        assert_eq!(plain.epochs_snapshot().len(), 1);
    }

    #[test]
    fn interval_plumbs_through_hub() {
        let obs = Obs::new();
        assert_eq!(obs.interval_every(), None);
        obs.enable_interval(500);
        assert_eq!(obs.interval_every(), Some(500));
        obs.interval_record(IntervalSample { cycle: 500, committed: 250, ..Default::default() });
        let epochs = obs.epochs_json();
        let arr = epochs.as_arr().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0].get("ipc").and_then(Json::as_f64), Some(0.5));
    }
}
