//! The top-level simulation driver.

use crate::{MachineConfig, SimMemory, SimStats};
use psb_cpu::{DynInst, Pipeline};

/// One configured simulation run: a machine, a trace, and a commit limit.
///
/// # Example
///
/// ```
/// use psb_common::Addr;
/// use psb_cpu::{DynInst, Reg};
/// use psb_sim::{MachineConfig, Simulation};
///
/// let trace: Vec<DynInst> = (0..100)
///     .map(|i| DynInst::alu(Addr::new(0x40_0000 + 4 * i), Reg::new(1), None, None))
///     .collect();
/// let stats = Simulation::new(MachineConfig::baseline(), trace, u64::MAX).run();
/// assert_eq!(stats.cpu.committed, 100);
/// ```
pub struct Simulation {
    config: MachineConfig,
    trace: std::sync::Arc<Vec<DynInst>>,
    max_commits: u64,
    engine: Option<Box<dyn psb_core::Prefetcher>>,
    log: Option<crate::SharedMemLog>,
    obs: Option<psb_obs::Obs>,
    force_tick: bool,
}

impl Simulation {
    /// Creates a run over `trace`, committing at most `max_commits`
    /// instructions (use `u64::MAX` to drain the trace).
    pub fn new(config: MachineConfig, trace: Vec<DynInst>, max_commits: u64) -> Self {
        Simulation::new_shared(config, std::sync::Arc::new(trace), max_commits)
    }

    /// Like [`Simulation::new`], but over a shared trace (see
    /// [`psb_workloads::SharedTrace`](psb_workloads::Benchmark::shared_trace)):
    /// the run reads the instructions in place, so N simulations of one
    /// benchmark share a single generated trace instead of owning N
    /// copies. Results are identical either way.
    pub fn new_shared(
        config: MachineConfig,
        trace: std::sync::Arc<Vec<DynInst>>,
        max_commits: u64,
    ) -> Self {
        Simulation {
            config,
            trace,
            max_commits,
            engine: None,
            log: None,
            obs: None,
            force_tick: false,
        }
    }

    /// Defeats the quiescence skip-ahead: the prefetcher is ticked every
    /// single cycle (see [`SimMemory::set_force_tick`]). The skip is an
    /// exactness-preserving optimization, so forcing ticks must never
    /// change a report — the differential suites and the mutation kill
    /// suite run under this switch (or the equivalent `PSB_FORCE_TICK`
    /// environment variable) so quiescence bugs cannot hide behind
    /// skipped cycles.
    pub fn with_forced_ticks(mut self) -> Self {
        self.force_tick = true;
        self
    }

    /// Attaches a shared memory event log (see
    /// [`MemLog::shared`](crate::MemLog::shared)); the run records events
    /// into it until it fills.
    pub fn with_event_log(mut self, log: crate::SharedMemLog) -> Self {
        self.log = Some(log);
        self
    }

    /// Attaches an observability hub (see [`psb_obs::Obs`]): the memory
    /// system registers its metrics with it and, when the hub has tracing
    /// or interval sampling enabled, emits lifecycle events and per-epoch
    /// time series during the run. The caller keeps a clone to read the
    /// results back after [`Simulation::run`].
    pub fn with_obs(mut self, obs: psb_obs::Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Replaces the configured prefetcher with a custom engine (for
    /// ablation sweeps over parameters [`crate::PrefetcherKind`] does not
    /// enumerate).
    pub fn with_engine(mut self, engine: Box<dyn psb_core::Prefetcher>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Executes the run under the invariant auditor: resets the
    /// thread-local sink, runs, and returns the statistics together with
    /// every cross-layer invariant violation observed by the registered
    /// checkers (see [`psb_check`]). Only available with the `check`
    /// feature; release figure runs never pay for auditing.
    #[cfg(feature = "check")]
    pub fn run_audited(self) -> (SimStats, Vec<psb_check::Violation>) {
        psb_check::reset();
        let stats = self.run();
        (stats, psb_check::take())
    }

    /// Executes the run and collects statistics.
    pub fn run(self) -> SimStats {
        let mut mem = match self.engine {
            Some(engine) => SimMemory::with_engine(&self.config, engine),
            None => SimMemory::new(&self.config),
        };
        if self.force_tick {
            mem.set_force_tick(true);
        }
        if let Some(log) = self.log {
            mem.attach_log(log);
        }
        if let Some(obs) = &self.obs {
            mem.attach_obs(obs);
        }
        // `DynInst` is `Copy`, so feeding the pipeline from the shared
        // trace costs the same element-wise moves a `Vec` drain would.
        let cpu = Pipeline::new(self.config.cpu).run(
            self.trace.iter().copied(),
            &mut mem,
            self.max_commits,
        );
        // Close out the interval time series with a final partial epoch.
        mem.finish_sampling(psb_common::Cycle::new(cpu.cycles), cpu.committed);
        SimStats {
            l1d: mem.l1d().stats(),
            l1i: mem.l1i().stats(),
            lower: mem.lower().stats(),
            prefetch: mem.prefetcher().stats(),
            dtlb: mem.dtlb().stats(),
            l1_l2_busy: mem.lower().l1_l2_bus().busy_cycles(),
            l2_mem_busy: mem.lower().l2_mem_bus().busy_cycles(),
            cpu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrefetcherKind;
    use psb_common::Addr;
    use psb_cpu::Reg;

    /// A pointer-chase microkernel: 1200 nodes (75 KB, 2.3x the L1, and
    /// comfortably inside the 2K-entry Markov table) in shuffled order,
    /// walked repeatedly — the minimal PSB showcase.
    fn chase_trace(laps: usize) -> Vec<DynInst> {
        let mut order: Vec<u64> = (0..1200).collect();
        let mut rng = psb_common::SplitMix64::new(42);
        rng.shuffle(&mut order);
        let mut b = psb_workloads::TraceBuilder::new(Addr::new(0x40_0000));
        for _ in 0..laps {
            for (i, &n) in order.iter().enumerate() {
                b.expect_pc(Addr::new(0x40_0000));
                let node = Addr::new(0x1000_0000 + n * 64);
                b.load(1, Some(1), node);
                b.alu(2, Some(1), None);
                b.alu(3, Some(2), None);
                b.cond(Some(3), i + 1 < order.len(), Addr::new(0x40_0000));
            }
            b.jump(Addr::new(0x40_0000));
        }
        b.finish()
    }

    fn run(kind: PrefetcherKind, trace: Vec<DynInst>) -> SimStats {
        Simulation::new(MachineConfig::baseline().with_prefetcher(kind), trace, u64::MAX).run()
    }

    #[test]
    fn psb_beats_stride_and_base_on_pointer_chase() {
        let t = chase_trace(12);
        let base = run(PrefetcherKind::None, t.clone());
        let stride = run(PrefetcherKind::PcStride, t.clone());
        let psb = run(PrefetcherKind::PsbConfPriority, t);
        assert!(
            psb.ipc() > base.ipc() * 1.1,
            "PSB {:.3} must beat base {:.3} clearly",
            psb.ipc(),
            base.ipc()
        );
        assert!(
            psb.ipc() > stride.ipc() * 1.05,
            "PSB {:.3} must beat PC-stride {:.3} on a pointer chase",
            psb.ipc(),
            stride.ipc()
        );
    }

    #[test]
    fn strided_microkernel_helps_both_prefetchers() {
        // A long strided walk of *dependent* loads (i = a[i] style): the
        // paper's prefetchers pay off when the chain serializes misses.
        let mut b = psb_workloads::TraceBuilder::new(Addr::new(0x40_0000));
        for i in 0..30_000u64 {
            b.expect_pc(Addr::new(0x40_0000));
            b.load(6, Some(6), Addr::new(0x1000_0000 + (i % 8192) * 64));
            b.alu(2, Some(6), None);
            b.alu(3, Some(2), None);
            b.cond(Some(3), true, Addr::new(0x40_0000));
        }
        // Terminate cleanly.
        let mut t = b.finish();
        let n = t.len();
        if let Some(bi) = &mut t[n - 1].branch {
            bi.taken = false;
        }
        let base = run(PrefetcherKind::None, t.clone());
        let stride = run(PrefetcherKind::PcStride, t.clone());
        let psb = run(PrefetcherKind::PsbConfPriority, t);
        assert!(stride.ipc() > base.ipc() * 1.2, "stride {} base {}", stride.ipc(), base.ipc());
        assert!(psb.ipc() > base.ipc() * 1.2, "psb {} base {}", psb.ipc(), base.ipc());
        // And on pure strides they are close.
        let ratio = psb.ipc() / stride.ipc();
        assert!((0.85..1.15).contains(&ratio), "psb/stride = {ratio:.3}");
    }

    #[test]
    fn stats_are_populated() {
        let s = run(PrefetcherKind::PsbConfPriority, chase_trace(4));
        assert!(s.cpu.cycles > 0);
        assert!(s.l1d.accesses() > 0);
        assert!(s.l1d_miss_rate() > 0.0);
        assert!(s.avg_load_latency() > 1.0);
        assert!(s.l1_l2_bus_percent() > 0.0);
        assert!(s.prefetch.issued > 0);
    }

    #[test]
    fn alu_only_trace_is_memory_quiet() {
        let trace: Vec<DynInst> = (0..1000)
            .map(|i| DynInst::alu(Addr::new(0x40_0000 + 4 * (i % 64)), Reg::new(1), None, None))
            .collect();
        let s = run(PrefetcherKind::PsbConfPriority, trace);
        assert_eq!(s.prefetch.issued, 0);
        assert_eq!(s.l1d.accesses(), 0);
        assert!(s.ipc() > 0.5);
    }
}
