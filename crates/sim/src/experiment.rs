//! Helpers for running benchmark × configuration matrices.

use crate::{MachineConfig, PrefetcherKind, SimStats, Simulation};
use psb_workloads::Benchmark;

/// Default trace scale used by the experiment binaries (≈600k
/// instructions per run — enough for predictor warm-up plus several
/// steady-state laps of every benchmark's data structures).
pub const DEFAULT_SCALE: u32 = 2;

/// Runs one (benchmark, machine) point over a freshly generated trace.
pub fn run_config(bench: Benchmark, config: MachineConfig, scale: u32) -> SimStats {
    Simulation::new(config, bench.trace(scale), u64::MAX).run()
}

/// Runs one (benchmark, prefetcher) point on the baseline machine.
pub fn run_point(bench: Benchmark, kind: PrefetcherKind, scale: u32) -> SimStats {
    run_config(bench, MachineConfig::baseline().with_prefetcher(kind), scale)
}

/// Runs every paper configuration (Base, PC-stride, four PSB variants)
/// for one benchmark, in Figure 5 order.
pub fn run_paper_row(bench: Benchmark, scale: u32) -> Vec<(PrefetcherKind, SimStats)> {
    PrefetcherKind::PAPER.into_iter().map(|k| (k, run_point(bench, k, scale))).collect()
}

/// Geometric-mean percent speedup across a set of per-benchmark speedups
/// (how the paper aggregates "average speedup").
pub fn average_speedup_percent(speedups: &[f64]) -> f64 {
    if speedups.is_empty() {
        return 0.0;
    }
    let product: f64 = speedups.iter().map(|s| 1.0 + s / 100.0).product();
    (product.powf(1.0 / speedups.len() as f64) - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_speedup_geomean() {
        assert_eq!(average_speedup_percent(&[]), 0.0);
        // 21% and 0%: geomean = sqrt(1.21) - 1 = 10%.
        let avg = average_speedup_percent(&[21.0, 0.0]);
        assert!((avg - 10.0).abs() < 1e-9, "{avg}");
    }

    #[test]
    fn run_point_produces_stats() {
        // Small smoke: cap the cost by using the cheapest benchmark at
        // scale 1 with the null prefetcher.
        let s = run_point(Benchmark::Turb3d, PrefetcherKind::None, 1);
        assert!(s.cpu.committed >= 300_000);
        assert!(s.ipc() > 0.0);
    }
}
