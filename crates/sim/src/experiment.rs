//! Helpers for running benchmark × configuration matrices.

use crate::sweep::{run_sweep, SweepCell};
use crate::{MachineConfig, PrefetcherKind, SimStats, Simulation};
use psb_workloads::Benchmark;

/// Default trace scale used by the experiment binaries (≈600k
/// instructions per run — enough for predictor warm-up plus several
/// steady-state laps of every benchmark's data structures).
pub const DEFAULT_SCALE: u32 = 2;

/// Smallest per-benchmark speedup factor admitted into the geometric
/// mean: a cell can lose essentially everything (−100% and below clamps
/// here) without poisoning the aggregate with a zero or negative factor.
const MIN_SPEEDUP_FACTOR: f64 = 1e-6;

/// Runs one (benchmark, machine) point. The trace comes from the shared
/// cache ([`Benchmark::shared_trace`]), so repeated points on one
/// benchmark pay for generation once.
pub fn run_config(bench: Benchmark, config: MachineConfig, scale: u32) -> SimStats {
    Simulation::new_shared(config, bench.shared_trace(scale), u64::MAX).run()
}

/// Runs one (benchmark, prefetcher) point on the baseline machine.
pub fn run_point(bench: Benchmark, kind: PrefetcherKind, scale: u32) -> SimStats {
    run_config(bench, MachineConfig::baseline().with_prefetcher(kind), scale)
}

/// Runs every paper configuration (Base, PC-stride, four PSB variants)
/// for one benchmark, in Figure 5 order.
///
/// The six cells run in parallel on the [`crate::sweep`] work queue over
/// one shared trace; results are deterministic and ordered regardless of
/// worker count.
pub fn run_paper_row(bench: Benchmark, scale: u32) -> Vec<(PrefetcherKind, SimStats)> {
    let cells: Vec<SweepCell> = PrefetcherKind::PAPER
        .into_iter()
        .map(|k| SweepCell::new(bench, MachineConfig::baseline().with_prefetcher(k), scale))
        .collect();
    PrefetcherKind::PAPER
        .into_iter()
        .zip(run_sweep(&cells, 0))
        .map(|(k, out)| (k, out.stats))
        .collect()
}

/// Geometric-mean percent speedup across a set of per-benchmark speedups
/// (how the paper aggregates "average speedup").
///
/// Each speedup is folded in as the factor `1 + s/100`, clamped to a
/// small positive epsilon: a catastrophic cell (s ≤ −100%) contributes
/// an (almost-)total loss instead of a zero or negative factor, whose
/// fractional root would otherwise be `NaN` and poison the aggregate.
pub fn average_speedup_percent(speedups: &[f64]) -> f64 {
    if speedups.is_empty() {
        return 0.0;
    }
    let product: f64 = speedups.iter().map(|s| (1.0 + s / 100.0).max(MIN_SPEEDUP_FACTOR)).product();
    (product.powf(1.0 / speedups.len() as f64) - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_speedup_geomean() {
        assert_eq!(average_speedup_percent(&[]), 0.0);
        // 21% and 0%: geomean = sqrt(1.21) - 1 = 10%.
        let avg = average_speedup_percent(&[21.0, 0.0]);
        assert!((avg - 10.0).abs() < 1e-9, "{avg}");
    }

    #[test]
    fn average_speedup_survives_total_losses() {
        // Regression: a speedup at or below −100% used to make the
        // product non-positive and the fractional power NaN.
        for bad in [-100.0, -150.0, -1e6] {
            let avg = average_speedup_percent(&[bad, 10.0]);
            assert!(avg.is_finite(), "speedup {bad} must not poison the mean: {avg}");
            assert!((-100.0..0.0).contains(&avg), "{avg}");
        }
        // A lone catastrophic cell reads as (almost) total loss.
        let lone = average_speedup_percent(&[-250.0]);
        assert!(lone.is_finite() && lone <= -99.9, "{lone}");
        // And ordinary negatives are untouched by the clamp.
        let mild = average_speedup_percent(&[-10.0, -10.0]);
        assert!((mild + 10.0).abs() < 1e-9, "{mild}");
    }

    #[test]
    fn run_point_produces_stats() {
        // Small smoke: cap the cost by using the cheapest benchmark at
        // scale 1 with the null prefetcher.
        let s = run_point(Benchmark::Turb3d, PrefetcherKind::None, 1);
        assert!(s.cpu.committed >= 300_000);
        assert!(s.ipc() > 0.0);
    }
}
