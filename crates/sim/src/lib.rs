//! Full-system cycle-level simulator for the PSB reproduction.
//!
//! Wires the out-of-order core (`psb-cpu`), the memory hierarchy
//! (`psb-mem`) and the stream-buffer prefetchers (`psb-core`) into one
//! machine, runs workload traces (`psb-workloads`) through it, and
//! collects every statistic the paper reports.
//!
//! # Example
//!
//! ```no_run
//! use psb_sim::{MachineConfig, PrefetcherKind, Simulation};
//! use psb_workloads::Benchmark;
//!
//! let base = MachineConfig::baseline();
//! let psb = base.with_prefetcher(PrefetcherKind::PsbConfPriority);
//! let trace = Benchmark::DeltaBlue.trace(1);
//!
//! let s0 = Simulation::new(base, trace.clone(), u64::MAX).run();
//! let s1 = Simulation::new(psb, trace, u64::MAX).run();
//! println!("speedup: {:.1}%", s1.speedup_percent_over(&s0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod config;
mod eventlog;
mod experiment;
/// Incremental result journal: crash-safe sweeps with `--resume`.
pub mod journal;
mod memsys;
/// Generic ordered worker pool (model-checked via `cargo xtask model`).
pub mod pool;
/// Live sweep progress tracking for the `--serve` observability plane.
pub mod progress;
mod report;
mod simulator;
mod stats;
/// Parallel sweep harness: deterministic grid runs over a worker pool.
pub mod sweep;

pub use artifact::{
    json_report, sweep_cell_entry, sweep_report, sweep_report_from_texts, RUN_SCHEMA, SWEEP_SCHEMA,
};
pub use config::{MachineConfig, ParsePrefetcherError, PrefetcherKind};
pub use eventlog::{MemEvent, MemEventKind, MemLog, SharedMemLog};
pub use experiment::{
    average_speedup_percent, run_config, run_paper_row, run_point, DEFAULT_SCALE,
};
pub use journal::{read_journal, run_journaled, JournalError, JournalEvent, JOURNAL_SCHEMA};
pub use memsys::SimMemory;
pub use pool::{run_ordered, run_ordered_tracked, PoolPanic};
pub use progress::{SweepTracker, PROGRESS_SCHEMA};
pub use report::{f2, pct, Table};
pub use simulator::Simulation;
pub use stats::SimStats;
pub use sweep::{
    paper_cells, run_sweep, run_sweep_with, shootout_cells, try_run_sweep_tracked,
    try_run_sweep_with, SweepCell, SweepError, SweepOutcome, SweepProgress,
};
