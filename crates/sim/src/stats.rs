//! Aggregated run statistics.

use psb_core::PrefetchStats;
use psb_cpu::CpuStats;
use psb_mem::{CacheStats, LowerStats, TlbStats};

/// Everything measured by one simulation run — the union of the
/// quantities reported across Table 2 and Figures 5–11.
#[derive(Clone, Debug)]
pub struct SimStats {
    /// Core statistics (IPC, committed mix, load latency, branches).
    pub cpu: CpuStats,
    /// L1 data-cache hit/miss counters (in-flight counts as miss).
    pub l1d: CacheStats,
    /// L1 instruction-cache counters.
    pub l1i: CacheStats,
    /// L2 counters.
    pub lower: LowerStats,
    /// Prefetch engine counters.
    pub prefetch: PrefetchStats,
    /// Data TLB counters.
    pub dtlb: TlbStats,
    /// Busy cycles on the L1↔L2 bus.
    pub l1_l2_busy: u64,
    /// Busy cycles on the L2↔memory bus.
    pub l2_mem_busy: u64,
}

impl SimStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.cpu.ipc()
    }

    /// L1 data-cache miss rate (accesses to in-flight blocks count as
    /// misses, per the paper's definition).
    pub fn l1d_miss_rate(&self) -> f64 {
        self.l1d.miss_rate()
    }

    /// Average load latency in cycles (Figure 8).
    pub fn avg_load_latency(&self) -> f64 {
        self.cpu.load_latency.mean()
    }

    /// Prefetch accuracy (Figure 6).
    pub fn prefetch_accuracy(&self) -> f64 {
        self.prefetch.accuracy()
    }

    /// L1↔L2 bus utilization in percent (Figure 9, left axis).
    pub fn l1_l2_bus_percent(&self) -> f64 {
        percent(self.l1_l2_busy, self.cpu.cycles)
    }

    /// L2↔memory bus utilization in percent (Figure 9, right axis).
    pub fn l2_mem_bus_percent(&self) -> f64 {
        percent(self.l2_mem_busy, self.cpu.cycles)
    }

    /// Percent speedup of `self` over `base`, by IPC (Figures 5 and 10).
    pub fn speedup_percent_over(&self, base: &SimStats) -> f64 {
        if base.ipc() == 0.0 {
            0.0
        } else {
            (self.ipc() / base.ipc() - 1.0) * 100.0
        }
    }

    /// Column names matching [`SimStats::csv_row`], for scripting over
    /// many runs.
    pub const CSV_HEADER: &'static str = "cycles,committed,ipc,loads,stores,branches,\
        forwarded_loads,avg_load_latency,l1d_accesses,l1d_miss_rate,l2_miss_rate,\
        bpred_accuracy,pf_lookups,pf_hits,pf_issued,pf_used,pf_accuracy,\
        pf_allocations,l1_l2_bus_pct,l2_mem_bus_pct,dtlb_misses";

    /// One comma-separated row of every headline statistic.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{:.4},{},{},{},{},{:.2},{},{:.4},{:.4},{:.4},{},{},{},{},{:.4},{},{:.2},{:.2},{}",
            self.cpu.cycles,
            self.cpu.committed,
            self.ipc(),
            self.cpu.loads,
            self.cpu.stores,
            self.cpu.branches,
            self.cpu.forwarded_loads,
            self.avg_load_latency(),
            self.l1d.accesses(),
            self.l1d_miss_rate(),
            self.lower.l2_miss_rate(),
            self.cpu.bpred.accuracy(),
            self.prefetch.lookups,
            self.prefetch.hits,
            self.prefetch.issued,
            self.prefetch.used,
            self.prefetch_accuracy(),
            self.prefetch.allocations,
            self.l1_l2_bus_percent(),
            self.l2_mem_bus_percent(),
            self.dtlb.misses,
        )
    }
}

fn percent(busy: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        0.0
    } else {
        100.0 * busy as f64 / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with_ipc(committed: u64, cycles: u64) -> SimStats {
        SimStats {
            cpu: CpuStats { committed, cycles, ..Default::default() },
            l1d: CacheStats::default(),
            l1i: CacheStats::default(),
            lower: LowerStats::default(),
            prefetch: PrefetchStats::default(),
            dtlb: TlbStats::default(),
            l1_l2_busy: 0,
            l2_mem_busy: 0,
        }
    }

    #[test]
    fn speedup_is_ipc_ratio() {
        let base = stats_with_ipc(1000, 1000); // IPC 1.0
        let fast = stats_with_ipc(1000, 800); // IPC 1.25
        assert!((fast.speedup_percent_over(&base) - 25.0).abs() < 1e-9);
        assert!((base.speedup_percent_over(&base)).abs() < 1e-9);
    }

    #[test]
    fn bus_percent_normalizes_by_cycles() {
        let mut s = stats_with_ipc(100, 200);
        s.l1_l2_busy = 50;
        s.l2_mem_busy = 10;
        assert_eq!(s.l1_l2_bus_percent(), 25.0);
        assert_eq!(s.l2_mem_bus_percent(), 5.0);
    }

    #[test]
    fn zero_cycle_guards() {
        let s = stats_with_ipc(0, 0);
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.l1_l2_bus_percent(), 0.0);
        assert_eq!(s.speedup_percent_over(&s), 0.0);
    }

    #[test]
    fn csv_row_matches_header_width() {
        let s = stats_with_ipc(100, 200);
        let header_cols = SimStats::CSV_HEADER.split(',').count();
        let row_cols = s.csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        assert_eq!(header_cols, 21);
        // Sane values in place.
        let cells: Vec<&str> = s.csv_row().leak().split(',').collect();
        assert_eq!(cells[0], "200");
        assert_eq!(cells[1], "100");
        assert_eq!(cells[2], "0.5000");
    }
}
