//! Incremental result journal: crash-safe sweep progress on disk.
//!
//! A long sweep that dies at cell 30 of 36 used to cost 30 cells of
//! redone work. The journal fixes that: `psbsweep --journal <file>`
//! appends one self-delimiting `psb-sweep-journal-v1` record per
//! completed cell — written, flushed and fsync'd before the cell is
//! considered done — and `--resume <file>` replays completed cells from
//! disk, re-runs only the missing ones, and emits a final `psb-sweep-v1`
//! artifact **byte-identical** to an uninterrupted run.
//!
//! # Format
//!
//! Line-oriented JSON (one document per `\n`-terminated line):
//!
//! * line 1 — header: `{"schema":"psb-sweep-journal-v1","total":N,`
//!   `"grid":[...]}` where `grid` carries one coordinate descriptor per
//!   cell (benchmark, config label, scale, plus `max` when the cell is
//!   commit-capped). Resume refuses a journal whose grid differs from
//!   the requested one ([`JournalError::GridMismatch`]) — replaying
//!   cell 7 of a *different* sweep would corrupt results silently.
//! * lines 2.. — records: `{"index":I,"cell":E}` where `E` is exactly
//!   the cell's `psb-sweep-v1` entry ([`crate::sweep_cell_entry`]).
//!
//! # Byte-identity
//!
//! Records store the entry's rendered *text*, and resume splices that
//! text verbatim into the final artifact
//! ([`crate::sweep_report_from_texts`]). Nothing is ever re-serialized
//! from a parsed tree, so a float's formatting cannot drift between an
//! interrupted and an uninterrupted run.
//!
//! # Crash tolerance
//!
//! A process killed mid-append leaves a torn final line. [`read_journal`]
//! tolerates exactly that: an unparseable **last** line is ignored and
//! reported via `valid_len`, and resume truncates the file back to the
//! last complete record before appending. An unparseable line in the
//! *middle*, a duplicate index, or an out-of-range index is real
//! corruption and fails loudly ([`JournalError::Corrupt`]).

use crate::artifact::sweep_cell_entry;
use crate::progress::SweepTracker;
use crate::stats::SimStats;
use crate::sweep::{SweepCell, SweepError};
use crate::{sweep::try_run_sweep_tracked, SweepProgress};
use psb_obs::{json, Json, Obs};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

/// Schema identifier stamped into every journal header.
pub const JOURNAL_SCHEMA: &str = "psb-sweep-journal-v1";

/// Why a journaled sweep could not run to completion.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure reading, writing or syncing the journal.
    Io(std::io::Error),
    /// The journal is unreadable beyond crash-truncation: a torn or
    /// alien line before the end, a duplicate or out-of-range record.
    Corrupt {
        /// 1-based journal line of the problem.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// The journal's header describes a different grid than the one
    /// being resumed; replaying its records would corrupt results.
    GridMismatch(String),
    /// A cell's simulation panicked while running the missing cells.
    Sweep(SweepError),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt { line, reason } => {
                write!(f, "journal corrupt at line {line}: {reason}")
            }
            JournalError::GridMismatch(detail) => {
                write!(f, "journal belongs to a different sweep grid: {detail}")
            }
            JournalError::Sweep(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Sweep(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// One cell's grid-coordinate descriptor, as stored in the header.
fn grid_entry(cell: &SweepCell) -> Json {
    let mut fields = vec![
        ("benchmark", Json::str(cell.bench.name())),
        ("config", Json::str(cell.label())),
        ("scale", Json::u64(cell.scale as u64)),
    ];
    if cell.max_commits != u64::MAX {
        fields.push(("max", Json::u64(cell.max_commits)));
    }
    Json::obj(fields)
}

/// The header line for a grid.
fn header_line(cells: &[SweepCell]) -> String {
    Json::obj(vec![
        ("schema", Json::str(JOURNAL_SCHEMA)),
        ("total", Json::u64(cells.len() as u64)),
        ("grid", Json::Arr(cells.iter().map(grid_entry).collect())),
    ])
    .to_string()
}

/// Appends one line and forces it to stable storage before returning —
/// a record the caller acts on (marking a cell done) must survive a
/// crash immediately after.
fn append_synced(file: &mut File, line: &str) -> std::io::Result<()> {
    file.write_all(line.as_bytes())?;
    file.write_all(b"\n")?;
    file.flush()?;
    file.sync_data()
}

/// A parsed journal: header plus every complete record.
#[derive(Debug)]
pub struct JournalFile {
    /// Grid size declared by the header.
    pub total: usize,
    /// Rendered grid descriptors, one per cell, for identity checks.
    pub grid: Vec<String>,
    /// Complete records as `(grid index, raw entry text)`, in file order.
    pub records: Vec<(usize, String)>,
    /// Byte length of the valid prefix — everything past it is a torn
    /// tail from a crash mid-append; resume truncates to here.
    pub valid_len: u64,
}

/// The raw entry text of a record line `{"index":I,"cell":E}`: `E`,
/// by byte-slicing so the stored rendering survives untouched. The line
/// has already been validated as JSON with these exact two keys.
fn slice_entry_text(line: &str) -> Option<&str> {
    let marker = ",\"cell\":";
    let at = line.find(marker)?;
    let entry = &line[at + marker.len()..line.len().checked_sub(1)?];
    line.ends_with('}').then_some(entry)
}

/// Reads and validates a journal file. Tolerates a torn final line
/// (crash mid-append); anything else malformed is [`JournalError::Corrupt`].
pub fn read_journal(path: &Path) -> Result<JournalFile, JournalError> {
    let bytes = std::fs::read(path)?;
    let text = String::from_utf8(bytes).map_err(|e| JournalError::Corrupt {
        line: 0,
        reason: format!("journal is not UTF-8: {e}"),
    })?;

    // Walk \n-terminated lines, tracking the byte offset where each
    // starts so `valid_len` can point at the last complete record.
    let mut offset = 0usize;
    let mut line_no = 0usize;
    let mut header: Option<(usize, Vec<String>)> = None;
    let mut records: Vec<(usize, String)> = Vec::new();
    let mut valid_len = 0u64;

    while offset < text.len() {
        line_no += 1;
        let rest = &text[offset..];
        // The newline is the commit marker: an unterminated final line
        // is a torn append from a crash — ignored, whatever it holds.
        let Some(nl) = rest.find('\n') else { break };
        let line = &rest[..nl];
        match parse_journal_line(line, line_no, header.as_ref(), &records)? {
            ParsedLine::Header(total, grid) => header = Some((total, grid)),
            ParsedLine::Record(index, entry) => records.push((index, entry)),
        }
        offset += nl + 1;
        valid_len = offset as u64;
    }

    let Some((total, grid)) = header else {
        return Err(JournalError::Corrupt {
            line: 1,
            reason: "missing or unreadable header line".to_string(),
        });
    };
    Ok(JournalFile { total, grid, records, valid_len })
}

enum ParsedLine {
    Header(usize, Vec<String>),
    Record(usize, String),
}

fn parse_journal_line(
    line: &str,
    line_no: usize,
    header: Option<&(usize, Vec<String>)>,
    records: &[(usize, String)],
) -> Result<ParsedLine, JournalError> {
    let corrupt = |reason: String| JournalError::Corrupt { line: line_no, reason };
    let doc = json::parse(line).map_err(|e| corrupt(format!("unparseable line: {e}")))?;
    if line_no == 1 {
        if doc.get("schema").and_then(Json::as_str) != Some(JOURNAL_SCHEMA) {
            return Err(corrupt(format!("header schema is not {JOURNAL_SCHEMA:?}")));
        }
        let total = doc
            .get("total")
            .and_then(Json::as_u64)
            .ok_or_else(|| corrupt("header missing numeric `total`".to_string()))?
            as usize;
        let grid = doc
            .get("grid")
            .and_then(Json::as_arr)
            .ok_or_else(|| corrupt("header missing `grid` array".to_string()))?;
        if grid.len() != total {
            return Err(corrupt(format!(
                "header grid has {} entries but total is {total}",
                grid.len()
            )));
        }
        return Ok(ParsedLine::Header(total, grid.iter().map(Json::to_string).collect()));
    }
    let Some(&(total, _)) = header else {
        return Err(corrupt("record before header".to_string()));
    };
    let index =
        doc.get("index")
            .and_then(Json::as_u64)
            .ok_or_else(|| corrupt("record missing numeric `index`".to_string()))? as usize;
    if index >= total {
        return Err(corrupt(format!("record index {index} out of range (total {total})")));
    }
    if records.iter().any(|&(i, _)| i == index) {
        return Err(corrupt(format!("duplicate record for index {index}")));
    }
    if doc.get("cell").is_none() {
        return Err(corrupt("record missing `cell` entry".to_string()));
    }
    let entry = slice_entry_text(line).ok_or_else(|| {
        corrupt("record is not in canonical {\"index\":I,\"cell\":E} form".to_string())
    })?;
    Ok(ParsedLine::Record(index, entry.to_string()))
}

/// One completed cell, streamed to the caller of [`run_journaled`] in
/// completion order — replayed cells first (journal order), then fresh
/// cells as their simulations finish.
#[derive(Copy, Clone, Debug)]
pub struct JournalEvent<'a> {
    /// The cell's index in the full grid.
    pub index: usize,
    /// Cells complete so far (replayed + fresh), counting this one.
    pub done: usize,
    /// Total cells in the grid.
    pub total: usize,
    /// The completed cell.
    pub cell: &'a SweepCell,
    /// The cell's rendered `psb-sweep-v1` entry text.
    pub entry_text: &'a str,
    /// Came from the journal (`true`) vs freshly simulated (`false`).
    pub replayed: bool,
    /// Wall-clock cost in microseconds; 0 for replayed cells.
    pub wall_micros: u64,
    /// Full statistics for freshly simulated cells; `None` for replays,
    /// whose numbers live only in `entry_text` (the journal stores the
    /// rendered entry, not the raw counters).
    pub stats: Option<&'a SimStats>,
}

/// Runs `cells` with an incremental journal at `path`, returning every
/// cell's entry text in submission order — ready for
/// [`crate::sweep_report_from_texts`].
///
/// With `resume` false the journal is created (truncating any previous
/// file) and every cell runs. With `resume` true the journal is read
/// first: completed cells replay from disk (no simulation), a torn
/// final line from a crash is truncated away, and only missing cells
/// run — appending to the same journal, so an interrupted resume can
/// itself be resumed.
///
/// `obs` and `tracker` observe only the freshly-run portion (the
/// tracker additionally learns the replayed count); `on_event` fires
/// once per completed cell — replays first, then fresh completions.
pub fn run_journaled(
    cells: &[SweepCell],
    threads: usize,
    obs: Option<&Obs>,
    path: &Path,
    resume: bool,
    tracker: Option<&SweepTracker>,
    mut on_event: impl FnMut(JournalEvent<'_>),
) -> Result<Vec<String>, JournalError> {
    let total = cells.len();
    let mut entries: Vec<Option<String>> = vec![None; total];

    let mut file = if resume {
        let journal = read_journal(path)?;
        let expected: Vec<String> = cells.iter().map(|c| grid_entry(c).to_string()).collect();
        if journal.total != total {
            return Err(JournalError::GridMismatch(format!(
                "journal has {} cells, requested sweep has {total}",
                journal.total
            )));
        }
        if let Some(i) = (0..total).find(|&i| journal.grid[i] != expected[i]) {
            return Err(JournalError::GridMismatch(format!(
                "cell {i} differs: journal {} vs requested {}",
                journal.grid[i], expected[i]
            )));
        }
        for (index, text) in journal.records {
            entries[index] = Some(text);
        }
        // Drop the torn tail, then append after the last good record.
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(journal.valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        file
    } else {
        let mut file = File::create(path)?;
        append_synced(&mut file, &header_line(cells))?;
        file
    };

    let replayed = entries.iter().filter(|e| e.is_some()).count();
    if let Some(t) = tracker {
        t.set_replayed(replayed);
    }
    let mut done = 0;
    for (index, entry) in entries.iter().enumerate() {
        if let Some(text) = entry {
            done += 1;
            on_event(JournalEvent {
                index,
                done,
                total,
                cell: &cells[index],
                entry_text: text,
                replayed: true,
                wall_micros: 0,
                stats: None,
            });
        }
    }

    let missing: Vec<usize> = (0..total).filter(|&i| entries[i].is_none()).collect();
    let missing_cells: Vec<SweepCell> = missing.iter().map(|&i| cells[i]).collect();

    // Journal appends happen inside the sweep's completion callback,
    // which cannot return errors; park the first failure here and
    // surface it after the sweep drains.
    let mut append_err: Option<std::io::Error> = None;
    {
        let entries = &mut entries;
        let on_fresh = |p: SweepProgress<'_>| {
            let index = missing[p.index];
            let entry = sweep_cell_entry(p.cell, p.stats).to_string();
            if append_err.is_none() {
                let record = format!("{{\"index\":{index},\"cell\":{entry}}}");
                if let Err(e) = append_synced(&mut file, &record) {
                    append_err = Some(e);
                }
            }
            done += 1;
            on_event(JournalEvent {
                index,
                done,
                total,
                cell: p.cell,
                entry_text: &entry,
                replayed: false,
                wall_micros: p.wall_micros,
                stats: Some(p.stats),
            });
            entries[index] = Some(entry);
        };
        try_run_sweep_tracked(&missing_cells, threads, obs, tracker, Some(&missing), on_fresh)
            .map_err(JournalError::Sweep)?;
    }
    if let Some(e) = append_err {
        return Err(JournalError::Io(e));
    }

    Ok(entries
        .into_iter()
        .map(|e| {
            // Invariant: every index was either replayed or just ran.
            e.expect("invariant: every grid cell has an entry")
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MachineConfig, PrefetcherKind};
    use psb_workloads::Benchmark;

    fn grid() -> Vec<SweepCell> {
        [PrefetcherKind::None, PrefetcherKind::PcStride]
            .into_iter()
            .flat_map(|k| {
                [Benchmark::Turb3d, Benchmark::DeltaBlue].into_iter().map(move |b| {
                    SweepCell::new(b, MachineConfig::baseline().with_prefetcher(k), 1)
                        .with_max_commits(10_000)
                })
            })
            .collect()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("psb-journal-unit");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn fresh_run_writes_header_and_one_record_per_cell() {
        let cells = grid();
        let path = tmp("fresh.jsonl");
        let mut events = Vec::new();
        let texts = run_journaled(&cells, 2, None, &path, false, None, |e| {
            events.push((e.index, e.replayed, e.done));
        })
        .expect("journaled run");
        assert_eq!(texts.len(), cells.len());

        let journal = read_journal(&path).expect("journal parses");
        assert_eq!(journal.total, cells.len());
        assert_eq!(journal.records.len(), cells.len());
        // Stored entry text is exactly what the run returned.
        for (index, text) in &journal.records {
            assert_eq!(&texts[*index], text);
        }
        // Every event was fresh, `done` counted up to the total.
        assert!(events.iter().all(|&(_, replayed, _)| !replayed));
        assert_eq!(events.last().map(|&(_, _, d)| d), Some(cells.len()));
        // valid_len covers the whole (cleanly finished) file.
        assert_eq!(journal.valid_len, std::fs::metadata(&path).expect("meta").len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn complete_journal_resumes_without_running_anything() {
        let cells = grid();
        let path = tmp("complete.jsonl");
        let straight = run_journaled(&cells, 1, None, &path, false, None, |_| {}).expect("run");
        let mut replays = 0;
        let resumed = run_journaled(&cells, 1, None, &path, true, None, |e| {
            assert!(e.replayed, "nothing should re-run");
            replays += 1;
        })
        .expect("resume");
        assert_eq!(replays, cells.len());
        assert_eq!(straight, resumed);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncated() {
        let cells = grid();
        let path = tmp("torn.jsonl");
        run_journaled(&cells, 1, None, &path, false, None, |_| {}).expect("run");
        // Simulate a crash mid-append: drop the last record's tail and
        // leave garbage.
        let full = std::fs::read_to_string(&path).expect("read");
        let keep: Vec<&str> = full.lines().take(3).collect(); // header + 2 records
        std::fs::write(&path, format!("{}\n{{\"index\":3,\"ce", keep.join("\n"))).expect("write");

        let journal = read_journal(&path).expect("torn tail tolerated");
        assert_eq!(journal.records.len(), 2);
        let mut fresh = Vec::new();
        let resumed = run_journaled(&cells, 2, None, &path, true, None, |e| {
            if !e.replayed {
                fresh.push(e.index);
            }
        })
        .expect("resume");
        fresh.sort_unstable();
        assert_eq!(fresh, vec![2, 3], "only the missing cells re-ran");
        let straight = run_journaled(&cells, 1, None, &tmp("torn-ref.jsonl"), false, None, |_| {})
            .expect("reference run");
        assert_eq!(resumed, straight, "resume must reproduce the uninterrupted entries");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(tmp("torn-ref.jsonl")).ok();
    }

    #[test]
    fn grid_mismatch_is_refused() {
        let cells = grid();
        let path = tmp("mismatch.jsonl");
        run_journaled(&cells, 1, None, &path, false, None, |_| {}).expect("run");
        let mut other = cells.clone();
        other[1].scale = 3;
        let err = run_journaled(&other, 1, None, &path, true, None, |_| {})
            .expect_err("grid mismatch must refuse");
        assert!(matches!(err, JournalError::GridMismatch(_)), "{err:?}");
        assert!(err.to_string().contains("cell 1"), "{err}");
        // A wrong total is also a mismatch.
        let err = run_journaled(&cells[..2], 1, None, &path, true, None, |_| {})
            .expect_err("total mismatch must refuse");
        assert!(matches!(err, JournalError::GridMismatch(_)), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_before_the_end_fails_loudly() {
        let cells = grid();
        let path = tmp("corrupt.jsonl");
        run_journaled(&cells, 1, None, &path, false, None, |_| {}).expect("run");
        let full = std::fs::read_to_string(&path).expect("read");
        let mut lines: Vec<String> = full.lines().map(str::to_string).collect();
        lines[2] = "{\"index\":1,\"ce".to_string(); // torn line in the middle
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).expect("write");
        let err = read_journal(&path).expect_err("mid-file corruption is fatal");
        assert!(matches!(err, JournalError::Corrupt { line: 3, .. }), "{err:?}");

        // Duplicate record index: fatal even at the end.
        let mut dup: Vec<String> = full.lines().map(str::to_string).collect();
        dup.push(dup[1].clone());
        std::fs::write(&path, format!("{}\n", dup.join("\n"))).expect("write");
        let err = read_journal(&path).expect_err("duplicate index is fatal");
        assert!(matches!(err, JournalError::Corrupt { .. }), "{err:?}");
        assert!(err.to_string().contains("duplicate"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unterminated_final_record_is_not_committed() {
        // The newline is the commit marker: a record missing it replays
        // nothing and gets truncated away on resume.
        let cells = grid();
        let path = tmp("unterminated.jsonl");
        run_journaled(&cells, 1, None, &path, false, None, |_| {}).expect("run");
        let full = std::fs::read_to_string(&path).expect("read");
        let trimmed = full.strip_suffix('\n').expect("file ends with newline");
        std::fs::write(&path, trimmed).expect("write");
        let journal = read_journal(&path).expect("parses");
        assert_eq!(journal.records.len(), cells.len() - 1, "uncommitted record dropped");
        assert_eq!(journal.valid_len as usize, trimmed.rfind('\n').expect("nl") + 1);
        std::fs::remove_file(&path).ok();
    }
}
