//! Parallel (benchmark × machine × scale) sweep harness.
//!
//! The paper's headline results are a grid: six benchmarks times at
//! least six machine configurations (Figures 5–9), more for the
//! geometry sweeps. Running that grid serially regenerates each
//! benchmark's trace once per cell and leaves every core but one idle.
//! This module fixes both:
//!
//! * **Work queue.** [`run_sweep`] fans the cells out across the
//!   ordered worker pool in [`crate::pool`] (one worker per available
//!   core by default). Workers claim cells from a shared atomic cursor,
//!   so the pool stays busy even when cell costs are wildly uneven (a
//!   `sis` run costs ~10× a `turb3d` run at equal scale).
//! * **Trace sharing.** Workers fetch traces through
//!   [`Benchmark::shared_trace`], so N configurations of one benchmark
//!   share a single generated trace instead of regenerating it N times.
//!
//! **Determinism.** Each cell is an isolated, fully deterministic
//! simulation, and results land in a slice slot chosen by the cell's
//! *submission* index — never by completion order. The output of
//! [`run_sweep`] is therefore bit-identical for any worker count,
//! including 1; only the wall-clock (and the [`SweepOutcome::wall_micros`]
//! timings, which are reported for progress display but deliberately
//! kept out of the `psb-sweep-v1` artifact) varies between runs.
//!
//! **Failure.** A panicking cell (a deadlocked or asserting simulation
//! is a bug, never a legal outcome) does not hang or silently kill the
//! sweep: [`try_run_sweep_with`] drains the remaining cells, joins
//! every worker, and returns a [`SweepError`] naming the cell —
//! benchmark, machine label and scale — that died.

use crate::pool::run_ordered_tracked;
use crate::progress::SweepTracker;
use crate::{MachineConfig, PrefetcherKind, SimStats, Simulation};
use psb_obs::Obs;
use psb_workloads::Benchmark;

/// One point of a sweep grid: a benchmark, a full machine configuration
/// and a trace scale, plus an optional commit cap for test-sized runs.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SweepCell {
    /// The workload.
    pub bench: Benchmark,
    /// The machine to run it on (prefetcher, caches, core).
    pub config: MachineConfig,
    /// Trace scale (see [`Benchmark::trace`]).
    pub scale: u32,
    /// Commit at most this many instructions (`u64::MAX` drains the
    /// trace — the figure-run default).
    pub max_commits: u64,
}

impl SweepCell {
    /// A cell that drains the whole trace.
    pub fn new(bench: Benchmark, config: MachineConfig, scale: u32) -> Self {
        SweepCell { bench, config, scale, max_commits: u64::MAX }
    }

    /// Caps the cell at `max` committed instructions.
    pub fn with_max_commits(mut self, max: u64) -> Self {
        self.max_commits = max;
        self
    }

    /// A human/CSV label for the machine half of the cell: the
    /// prefetcher's figure label, plus the L1D geometry when it deviates
    /// from the paper baseline (e.g. `ConfAlloc-Priority/16k2`).
    pub fn label(&self) -> String {
        let l1d = self.config.mem.l1d;
        let base = MachineConfig::baseline().mem.l1d;
        if l1d == base {
            self.config.prefetcher.label().to_owned()
        } else {
            format!("{}/{}k{}", self.config.prefetcher.label(), l1d.size / 1024, l1d.assoc)
        }
    }

    fn run(&self) -> SimStats {
        let trace = self.bench.shared_trace(self.scale);
        Simulation::new_shared(self.config, trace, self.max_commits).run()
    }
}

/// The result of one sweep cell.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Full simulation statistics for the cell.
    pub stats: SimStats,
    /// Wall-clock cost of the cell on its worker, in microseconds.
    /// Host-dependent: reported for progress/telemetry, never part of
    /// the deterministic artifact.
    pub wall_micros: u64,
}

/// Completion notification handed to the progress callback of
/// [`run_sweep_with`], in completion order on the coordinating thread.
#[derive(Copy, Clone, Debug)]
pub struct SweepProgress<'a> {
    /// Submission index of the finished cell.
    pub index: usize,
    /// Cells finished so far, counting this one.
    pub done: usize,
    /// Total cells in the sweep.
    pub total: usize,
    /// The finished cell.
    pub cell: &'a SweepCell,
    /// The cell's full simulation statistics (the same value that lands
    /// in the outcome slot) — incremental consumers like the result
    /// journal serialize from here instead of waiting for the sweep to
    /// return.
    pub stats: &'a SimStats,
    /// Wall-clock cost of the cell in microseconds.
    pub wall_micros: u64,
}

/// A sweep cell whose simulation panicked, with enough identity to
/// reproduce it: `psbsweep --benches <bench> --prefetchers <label>` at
/// the reported scale re-runs exactly this cell.
#[derive(Clone, Debug)]
pub struct SweepError {
    /// Submission index of the failing cell.
    pub index: usize,
    /// The cell's workload.
    pub bench: Benchmark,
    /// The cell's machine label (see [`SweepCell::label`]).
    pub label: String,
    /// The cell's trace scale.
    pub scale: u32,
    /// The worker's panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sweep cell {} ({}/{}, scale {}) panicked: {}",
            self.index,
            self.bench.name(),
            self.label,
            self.scale,
            self.message
        )
    }
}

impl std::error::Error for SweepError {}

/// The paper grid for `benches`: every [`PrefetcherKind::PAPER`]
/// configuration of every benchmark, in Figure 5 order (benchmark-major).
pub fn paper_cells(benches: &[Benchmark], scale: u32) -> Vec<SweepCell> {
    benches
        .iter()
        .flat_map(|&bench| {
            PrefetcherKind::PAPER.into_iter().map(move |kind| {
                SweepCell::new(bench, MachineConfig::baseline().with_prefetcher(kind), scale)
            })
        })
        .collect()
}

/// The shootout grid for `benches`: every engine in the psb-core
/// registry ([`PrefetcherKind::ALL`]) on every benchmark,
/// benchmark-major in registry order. A superset of [`paper_cells`]
/// that puts the paper's grid beside the historical baselines and the
/// modern competitors (Pangloss, DSPatch).
pub fn shootout_cells(benches: &[Benchmark], scale: u32) -> Vec<SweepCell> {
    benches
        .iter()
        .flat_map(|&bench| {
            PrefetcherKind::ALL.into_iter().map(move |kind| {
                SweepCell::new(bench, MachineConfig::baseline().with_prefetcher(kind), scale)
            })
        })
        .collect()
}

/// Resolves a requested worker count: 0 means one worker per available
/// core, and the pool never exceeds the number of cells.
fn effective_threads(requested: usize, cells: usize) -> usize {
    let auto =
        psb_model::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let wanted = if requested == 0 { auto } else { requested };
    wanted.clamp(1, cells.max(1))
}

/// Runs every cell across a worker pool and returns the outcomes in
/// submission order. `threads == 0` uses one worker per available core.
///
/// See [`run_sweep_with`] for progress callbacks and observability.
pub fn run_sweep(cells: &[SweepCell], threads: usize) -> Vec<SweepOutcome> {
    run_sweep_with(cells, threads, None, |_| {})
}

/// [`run_sweep`] with instrumentation: `obs`, when present, receives the
/// per-cell progress counters (`sweep.cells_total` / `sweep.cells_completed`
/// counters and the `sweep.cell_micros` histogram), and `on_done` is
/// invoked once per finished cell, in completion order, on the calling
/// thread — binaries hang their progress output here, keeping the
/// library print-free.
///
/// # Panics
///
/// Panics with the formatted [`SweepError`] when a worker panics; use
/// [`try_run_sweep_with`] to handle that case (and exit non-zero with a
/// message naming the cell, as `psbsweep` does).
pub fn run_sweep_with(
    cells: &[SweepCell],
    threads: usize,
    obs: Option<&Obs>,
    on_done: impl FnMut(SweepProgress<'_>),
) -> Vec<SweepOutcome> {
    try_run_sweep_with(cells, threads, obs, on_done).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_sweep_with`] returning a [`SweepError`] instead of panicking
/// when a cell's simulation panics. The sweep still drains every
/// remaining cell and joins every worker before reporting; with several
/// failures the smallest submission index wins deterministically.
pub fn try_run_sweep_with(
    cells: &[SweepCell],
    threads: usize,
    obs: Option<&Obs>,
    on_done: impl FnMut(SweepProgress<'_>),
) -> Result<Vec<SweepOutcome>, SweepError> {
    sweep_with_runner(cells, threads, obs, None, None, on_done, &|cell| cell.run())
}

/// [`try_run_sweep_with`] publishing live per-worker state into a
/// [`SweepTracker`] (see `--serve`).
///
/// `indices`, when present, maps each cell's submission index to its
/// index in a larger grid — a journal resume runs only the missing
/// cells but reports their *original* grid positions. It must pair up
/// with `cells`; [`SweepProgress::index`] and the returned outcome
/// order always use the local submission index regardless.
pub fn try_run_sweep_tracked(
    cells: &[SweepCell],
    threads: usize,
    obs: Option<&Obs>,
    tracker: Option<&SweepTracker>,
    indices: Option<&[usize]>,
    on_done: impl FnMut(SweepProgress<'_>),
) -> Result<Vec<SweepOutcome>, SweepError> {
    sweep_with_runner(cells, threads, obs, tracker, indices, on_done, &|cell| cell.run())
}

/// The sweep engine, parameterized over the per-cell runner so tests
/// can inject panicking cells without building a broken simulation.
fn sweep_with_runner(
    cells: &[SweepCell],
    threads: usize,
    obs: Option<&Obs>,
    tracker: Option<&SweepTracker>,
    indices: Option<&[usize]>,
    mut on_done: impl FnMut(SweepProgress<'_>),
    runner: &(dyn Fn(&SweepCell) -> SimStats + Sync),
) -> Result<Vec<SweepOutcome>, SweepError> {
    let total = cells.len();
    if let Some(map) = indices {
        assert_eq!(map.len(), total, "index map must pair up with cells");
    }
    if total == 0 {
        return Ok(Vec::new());
    }
    let workers = effective_threads(threads, total);
    if let Some(obs) = obs {
        obs.record("sweep.cells_total", total as u64);
        obs.record("sweep.workers", workers as u64);
    }
    if let Some(t) = tracker {
        t.begin(workers);
    }
    let completed = obs.map(|o| o.counter("sweep.cells_completed"));
    let cell_micros = obs.map(|o| o.hist("sweep.cell_micros"));

    let mut done = 0;
    run_ordered_tracked(
        cells,
        workers,
        |worker, index, cell| {
            if let Some(t) = tracker {
                let grid_index = indices.map_or(index, |m| m[index]);
                t.worker_started(
                    worker,
                    grid_index,
                    &format!("{}/{}", cell.bench.name(), cell.label()),
                );
            }
            // Host wall-clock for telemetry only — the timing feeds a
            // progress histogram, never the deterministic artifact.
            // psb-lint: allow(determinism)
            let start = std::time::Instant::now();
            let stats = runner(cell);
            let wall_micros = start.elapsed().as_micros() as u64;
            if let Some(t) = tracker {
                t.worker_finished(worker, wall_micros);
            }
            SweepOutcome { stats, wall_micros }
        },
        |index, outcome| {
            if let Some(c) = &completed {
                c.inc();
            }
            if let Some(h) = &cell_micros {
                h.observe(outcome.wall_micros);
            }
            done += 1;
            on_done(SweepProgress {
                index,
                done,
                total,
                cell: &cells[index],
                stats: &outcome.stats,
                wall_micros: outcome.wall_micros,
            });
        },
    )
    .map_err(|p| {
        let cell = &cells[p.index];
        SweepError {
            index: p.index,
            bench: cell.bench,
            label: cell.label(),
            scale: cell.scale,
            message: p.message,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap 2×2 grid with a commit cap, for debug-build speed.
    fn small_grid() -> Vec<SweepCell> {
        let mut cells = Vec::new();
        for bench in [Benchmark::Turb3d, Benchmark::DeltaBlue] {
            for kind in [PrefetcherKind::None, PrefetcherKind::PsbConfPriority] {
                cells.push(
                    SweepCell::new(bench, MachineConfig::baseline().with_prefetcher(kind), 1)
                        .with_max_commits(20_000),
                );
            }
        }
        cells
    }

    #[test]
    fn results_are_identical_across_thread_counts() {
        let cells = small_grid();
        let serial = run_sweep(&cells, 1);
        let parallel = run_sweep(&cells, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.stats.cpu.cycles, b.stats.cpu.cycles);
            assert_eq!(a.stats.cpu.committed, b.stats.cpu.committed);
            assert_eq!(a.stats.prefetch, b.stats.prefetch);
            assert_eq!(a.stats.l1d, b.stats.l1d);
        }
    }

    #[test]
    fn outcomes_land_in_submission_order() {
        let cells = small_grid();
        let outcomes = run_sweep(&cells, 3);
        for (cell, out) in cells.iter().zip(&outcomes) {
            // Re-running any single cell serially reproduces its slot.
            let again = Simulation::new_shared(
                cell.config,
                cell.bench.shared_trace(cell.scale),
                cell.max_commits,
            )
            .run();
            assert_eq!(out.stats.cpu.cycles, again.cpu.cycles);
            assert_eq!(out.stats.prefetch, again.prefetch);
        }
    }

    #[test]
    fn progress_and_obs_counters_cover_every_cell() {
        let cells = small_grid();
        let obs = Obs::new();
        let mut seen = Vec::new();
        let outcomes = run_sweep_with(&cells, 2, Some(&obs), |p| {
            assert_eq!(p.total, cells.len());
            seen.push((p.index, p.done));
        });
        assert_eq!(outcomes.len(), cells.len());
        // Every submission index reported exactly once; `done` counts up.
        let mut indices: Vec<usize> = seen.iter().map(|&(i, _)| i).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..cells.len()).collect::<Vec<_>>());
        assert_eq!(seen.last().map(|&(_, d)| d), Some(cells.len()));
        assert_eq!(obs.counter("sweep.cells_completed").get(), cells.len() as u64);
        assert_eq!(obs.counter("sweep.cells_total").get(), cells.len() as u64);
        assert!(obs.hist("sweep.cell_micros").snapshot().total() >= cells.len() as u64);
    }

    #[test]
    fn empty_grid_is_a_noop() {
        assert!(run_sweep(&[], 4).is_empty());
    }

    #[test]
    fn panicking_cell_reports_bench_label_and_scale() {
        let cells = small_grid();
        let boom: &(dyn Fn(&SweepCell) -> SimStats + Sync) = &|cell| {
            if cell.bench == Benchmark::DeltaBlue
                && cell.config.prefetcher == PrefetcherKind::PsbConfPriority
            {
                panic!("injected cell failure");
            }
            cell.run()
        };
        let err = sweep_with_runner(&cells, 2, None, None, None, |_| {}, boom)
            .expect_err("the injected panic must surface");
        assert_eq!(err.index, 3);
        assert_eq!(err.bench, Benchmark::DeltaBlue);
        assert_eq!(err.label, "ConfAlloc-Priority");
        assert_eq!(err.scale, 1);
        assert!(err.message.contains("injected cell failure"), "got: {}", err.message);
        let shown = err.to_string();
        assert!(
            shown.contains("deltablue") && shown.contains("ConfAlloc-Priority"),
            "error display must name the cell: {shown}"
        );
    }

    #[test]
    fn tracked_sweep_reports_every_cell_with_grid_indices() {
        use psb_obs::{json, Json};
        let cells = small_grid();
        let tracker = SweepTracker::new(10);
        // Pretend these four cells are the tail of a ten-cell grid.
        let grid_indices: Vec<usize> = vec![6, 7, 8, 9];
        tracker.set_replayed(6);
        let outcomes =
            try_run_sweep_tracked(&cells, 2, None, Some(&tracker), Some(&grid_indices), |_| {})
                .expect("no panics");
        assert_eq!(outcomes.len(), cells.len());
        let doc = json::parse(&tracker.progress_json()).expect("valid progress JSON");
        assert_eq!(doc.get("done").and_then(Json::as_u64), Some(10));
        assert_eq!(doc.get("replayed").and_then(Json::as_u64), Some(6));
        assert_eq!(doc.get("running").and_then(Json::as_u64), Some(0));
        let workers = doc.get("workers").and_then(Json::as_arr).expect("worker rows");
        assert_eq!(workers.len(), 2);
        let total_done: u64 =
            workers.iter().map(|w| w.get("done").and_then(Json::as_u64).unwrap()).sum();
        assert_eq!(total_done, 4, "fresh completions split across workers");
        // Work stealing may let one worker drain the whole grid; every
        // worker that did run a cell must report grid-space indices.
        let active: Vec<_> = workers
            .iter()
            .filter(|w| w.get("heartbeats").and_then(Json::as_u64).unwrap() > 0)
            .collect();
        assert!(!active.is_empty(), "at least one worker must beat");
        for w in active {
            let idx = w.get("index").and_then(Json::as_u64).unwrap();
            assert!((6..10).contains(&idx), "worker rows show grid indices, got {idx}");
        }
    }

    #[test]
    fn paper_cells_cover_the_grid_in_order() {
        let cells = paper_cells(&[Benchmark::Health, Benchmark::Gs], 2);
        assert_eq!(cells.len(), 12);
        assert_eq!(cells[0].bench, Benchmark::Health);
        assert_eq!(cells[0].config.prefetcher, PrefetcherKind::None);
        assert_eq!(cells[5].config.prefetcher, PrefetcherKind::PsbConfPriority);
        assert_eq!(cells[6].bench, Benchmark::Gs);
        assert!(cells.iter().all(|c| c.scale == 2 && c.max_commits == u64::MAX));
    }

    #[test]
    fn shootout_cells_cover_the_whole_registry() {
        let cells = shootout_cells(&[Benchmark::Health], 1);
        assert_eq!(cells.len(), PrefetcherKind::ALL.len());
        assert!(cells.len() >= 12, "the shootout must carry at least 12 engines");
        // Registry order, including the modern competitors.
        let labels: Vec<&str> = cells.iter().map(|c| c.config.prefetcher.label()).collect();
        assert!(labels.contains(&"Pangloss"));
        assert!(labels.contains(&"DSPatch"));
        // The paper grid is an ordered subgrid of the shootout.
        let paper: Vec<_> = cells
            .iter()
            .map(|c| c.config.prefetcher)
            .filter(|k| PrefetcherKind::PAPER.contains(k))
            .collect();
        assert_eq!(paper, PrefetcherKind::PAPER);
    }

    #[test]
    fn labels_name_prefetcher_and_nonbaseline_geometry() {
        let base = SweepCell::new(
            Benchmark::Health,
            MachineConfig::baseline().with_prefetcher(PrefetcherKind::PsbConfPriority),
            1,
        );
        assert_eq!(base.label(), "ConfAlloc-Priority");
        let small = SweepCell::new(
            Benchmark::Health,
            MachineConfig::baseline().with_l1d(psb_mem::CacheConfig::l1d_16k_4way()),
            1,
        );
        assert_eq!(small.label(), "Base/16k4");
    }

    #[test]
    fn effective_threads_clamps_sanely() {
        assert_eq!(effective_threads(3, 100), 3);
        assert_eq!(effective_threads(16, 2), 2);
        assert_eq!(effective_threads(1, 0), 1);
        assert!(effective_threads(0, 100) >= 1);
    }
}
