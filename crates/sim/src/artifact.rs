//! Machine-readable run artifacts.
//!
//! Builds the `psb-run-v1` JSON document that `psbsim --json <path>`
//! writes: aggregate statistics for the run, the prefetch-lifecycle
//! accounting, the per-epoch interval time series and every metric
//! registered with the observability hub — one self-describing file per
//! run, consumable by scripts without scraping tables.

use crate::sweep::{SweepCell, SweepOutcome};
use crate::SimStats;
use psb_obs::{Json, Obs};

/// Schema identifier stamped into every run artifact.
pub const RUN_SCHEMA: &str = "psb-run-v1";

/// Schema identifier stamped into every merged sweep artifact.
pub const SWEEP_SCHEMA: &str = "psb-sweep-v1";

fn cache_json(stats: &psb_mem::CacheStats) -> Json {
    Json::obj(vec![
        ("accesses", Json::u64(stats.accesses())),
        ("hits", Json::u64(stats.hits)),
        ("misses", Json::u64(stats.misses)),
        ("miss_rate", Json::f64(stats.miss_rate())),
    ])
}

/// Serializes the aggregate statistics of one run.
fn aggregate_json(stats: &SimStats) -> Json {
    Json::obj(vec![
        ("cycles", Json::u64(stats.cpu.cycles)),
        ("committed", Json::u64(stats.cpu.committed)),
        ("ipc", Json::f64(stats.ipc())),
        ("loads", Json::u64(stats.cpu.loads)),
        ("stores", Json::u64(stats.cpu.stores)),
        ("branches", Json::u64(stats.cpu.branches)),
        ("forwarded_loads", Json::u64(stats.cpu.forwarded_loads)),
        ("avg_load_latency", Json::f64(stats.avg_load_latency())),
        ("bpred_accuracy", Json::f64(stats.cpu.bpred.accuracy())),
        ("l1d", cache_json(&stats.l1d)),
        ("l1i", cache_json(&stats.l1i)),
        (
            "l2",
            Json::obj(vec![
                ("hits", Json::u64(stats.lower.l2_hits)),
                ("misses", Json::u64(stats.lower.l2_misses)),
                ("miss_rate", Json::f64(stats.lower.l2_miss_rate())),
            ]),
        ),
        (
            "prefetch",
            Json::obj(vec![
                ("lookups", Json::u64(stats.prefetch.lookups)),
                ("hits", Json::u64(stats.prefetch.hits)),
                ("issued", Json::u64(stats.prefetch.issued)),
                ("used", Json::u64(stats.prefetch.used)),
                ("predictions", Json::u64(stats.prefetch.predictions)),
                ("suppressed", Json::u64(stats.prefetch.suppressed)),
                ("allocations", Json::u64(stats.prefetch.allocations)),
                ("alloc_rejected", Json::u64(stats.prefetch.alloc_rejected)),
                ("accuracy", Json::f64(stats.prefetch_accuracy())),
            ]),
        ),
        (
            "dtlb",
            Json::obj(vec![
                ("hits", Json::u64(stats.dtlb.hits)),
                ("misses", Json::u64(stats.dtlb.misses)),
                ("prefetch_misses", Json::u64(stats.dtlb.prefetch_misses)),
            ]),
        ),
        (
            "bus",
            Json::obj(vec![
                ("l1_l2_busy_cycles", Json::u64(stats.l1_l2_busy)),
                ("l2_mem_busy_cycles", Json::u64(stats.l2_mem_busy)),
                ("l1_l2_util_pct", Json::f64(stats.l1_l2_bus_percent())),
                ("l2_mem_util_pct", Json::f64(stats.l2_mem_bus_percent())),
            ]),
        ),
    ])
}

/// Builds the full `psb-run-v1` run artifact.
///
/// `benchmark` and `prefetcher` label the run; `obs`, when present,
/// contributes the lifecycle accounting, the interval epochs and the
/// metrics registry (all empty/absent-but-well-formed otherwise, so
/// consumers can rely on the keys existing).
pub fn json_report(benchmark: &str, prefetcher: &str, stats: &SimStats, obs: Option<&Obs>) -> Json {
    let (lifecycle, epochs, metrics) = match obs {
        Some(obs) => (obs.lifecycle_json(), obs.epochs_json(), obs.registry_json()),
        None => (Json::Null, Json::Arr(Vec::new()), Json::Null),
    };
    Json::obj(vec![
        ("schema", Json::str(RUN_SCHEMA)),
        ("benchmark", Json::str(benchmark)),
        ("prefetcher", Json::str(prefetcher)),
        ("aggregate", aggregate_json(stats)),
        ("lifecycle", lifecycle),
        ("epochs", epochs),
        ("metrics", metrics),
    ])
}

/// Builds the merged `psb-sweep-v1` artifact for one sweep: one entry
/// per cell, in submission order, each carrying the cell's coordinates
/// (benchmark, config label, scale) and its aggregate statistics.
///
/// The document is fully deterministic — cell wall-clock timings are
/// deliberately excluded — so sweeps of the same grid are byte-identical
/// regardless of worker count (`psbsweep --threads N`).
///
/// # Panics
///
/// Panics if `cells` and `outcomes` disagree in length (they come from
/// one [`crate::sweep::run_sweep`] call).
pub fn sweep_report(cells: &[SweepCell], outcomes: &[SweepOutcome]) -> Json {
    assert_eq!(cells.len(), outcomes.len(), "cells and outcomes must pair up");
    let entries =
        cells.iter().zip(outcomes).map(|(cell, out)| sweep_cell_entry(cell, &out.stats)).collect();
    Json::obj(vec![("schema", Json::str(SWEEP_SCHEMA)), ("cells", Json::Arr(entries))])
}

/// One cell's entry in the `psb-sweep-v1` `cells` array: coordinates
/// plus aggregate statistics. This is also the document the result
/// journal records per completed cell, so a journal replay can splice
/// stored entry *text* straight into the final artifact byte-for-byte
/// (the serializer emits no whitespace, making tree rendering and text
/// concatenation identical — see [`sweep_report_from_texts`]).
pub fn sweep_cell_entry(cell: &SweepCell, stats: &SimStats) -> Json {
    Json::obj(vec![
        ("benchmark", Json::str(cell.bench.name())),
        ("config", Json::str(cell.label())),
        ("scale", Json::u64(cell.scale as u64)),
        ("aggregate", aggregate_json(stats)),
    ])
}

/// Assembles the final `psb-sweep-v1` document from pre-rendered cell
/// entry texts (each a [`sweep_cell_entry`] rendering), in submission
/// order.
///
/// Splicing text instead of re-rendering parsed trees is what makes
/// `--resume` byte-exact: a float that survived one
/// serialize→parse→serialize round trip could legally re-render
/// differently, but stored bytes concatenated verbatim cannot. The
/// output is guaranteed identical to
/// `sweep_report(...).to_string()` over the same cells because the
/// serializer is whitespace-free (asserted by test).
pub fn sweep_report_from_texts(entry_texts: &[String]) -> String {
    let mut out = String::from("{\"schema\":\"");
    out.push_str(SWEEP_SCHEMA);
    out.push_str("\",\"cells\":[");
    for (i, entry) in entry_texts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(entry);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_sweep, MachineConfig, PrefetcherKind, Simulation};
    use psb_common::Addr;
    use psb_obs::json;

    fn tiny_stats(obs: Option<Obs>) -> SimStats {
        let mut b = psb_workloads::TraceBuilder::new(Addr::new(0x40_0000));
        for i in 0..2000u64 {
            b.expect_pc(Addr::new(0x40_0000));
            b.load(1, Some(1), Addr::new(0x1000_0000 + (i % 512) * 64));
            b.alu(2, Some(1), None);
            b.cond(Some(2), i + 1 < 2000, Addr::new(0x40_0000));
        }
        let config = MachineConfig::baseline().with_prefetcher(PrefetcherKind::PsbConfPriority);
        let mut sim = Simulation::new(config, b.finish(), u64::MAX);
        if let Some(obs) = obs {
            sim = sim.with_obs(obs);
        }
        sim.run()
    }

    #[test]
    fn artifact_round_trips_through_the_parser() {
        let obs = Obs::default();
        obs.enable_interval(500);
        let stats = tiny_stats(Some(obs.clone()));
        let doc = json_report("health", "conf-priority", &stats, Some(&obs));
        let text = doc.to_string();
        let back = json::parse(&text).expect("artifact must be valid JSON");
        assert_eq!(back.get("schema").and_then(Json::as_str), Some(RUN_SCHEMA));
        assert_eq!(back.get("benchmark").and_then(Json::as_str), Some("health"));
        let agg = back.get("aggregate").expect("aggregate section");
        assert!(agg.get("ipc").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(agg.get("l1d").unwrap().get("accesses").and_then(Json::as_u64).unwrap() > 0);
        // Interval sampling was on: epochs must be non-empty and span
        // the run from cycle zero.
        let epochs = back.get("epochs").and_then(Json::as_arr).expect("epochs array");
        assert!(!epochs.is_empty());
        assert_eq!(epochs[0].get("start").and_then(Json::as_u64), Some(0));
        // The metrics registry carries the component instruments.
        let metrics = back.get("metrics").expect("metrics section");
        assert!(metrics.get("gauges").unwrap().get("l1d.mshr.occupancy").is_some());
        // Lifecycle counters are present and self-consistent.
        let life = back.get("lifecycle").expect("lifecycle section");
        let issued = life.get("issued").and_then(Json::as_u64).unwrap();
        let used = life.get("used").and_then(Json::as_u64).unwrap();
        assert!(issued >= used);
    }

    #[test]
    fn sweep_artifact_is_byte_identical_across_thread_counts() {
        use psb_workloads::Benchmark;
        let cells: Vec<_> = [PrefetcherKind::None, PrefetcherKind::PcStride]
            .into_iter()
            .flat_map(|k| {
                [Benchmark::Turb3d, Benchmark::DeltaBlue].into_iter().map(move |b| {
                    crate::sweep::SweepCell::new(b, MachineConfig::baseline().with_prefetcher(k), 1)
                        .with_max_commits(15_000)
                })
            })
            .collect();
        let serial = sweep_report(&cells, &run_sweep(&cells, 1)).to_string();
        let parallel = sweep_report(&cells, &run_sweep(&cells, 4)).to_string();
        assert_eq!(serial, parallel, "sweep artifact must not depend on worker count");
        let back = json::parse(&serial).expect("sweep artifact must be valid JSON");
        assert_eq!(back.get("schema").and_then(Json::as_str), Some(SWEEP_SCHEMA));
        let entries = back.get("cells").and_then(Json::as_arr).expect("cells array");
        assert_eq!(entries.len(), 4);
        assert_eq!(entries[0].get("benchmark").and_then(Json::as_str), Some("turb3d"));
        assert_eq!(entries[1].get("config").and_then(Json::as_str), Some("Base"));
        assert!(
            entries[0].get("aggregate").and_then(|a| a.get("cycles")).is_some(),
            "each cell carries aggregate stats"
        );
    }

    #[test]
    fn text_splicing_equals_tree_rendering_byte_for_byte() {
        use psb_workloads::Benchmark;
        let cells: Vec<_> = [Benchmark::Turb3d, Benchmark::DeltaBlue]
            .into_iter()
            .map(|b| {
                crate::sweep::SweepCell::new(b, MachineConfig::baseline(), 1)
                    .with_max_commits(10_000)
            })
            .collect();
        let outcomes = run_sweep(&cells, 1);
        let tree = sweep_report(&cells, &outcomes).to_string();
        let texts: Vec<String> = cells
            .iter()
            .zip(&outcomes)
            .map(|(c, o)| sweep_cell_entry(c, &o.stats).to_string())
            .collect();
        let spliced = sweep_report_from_texts(&texts);
        assert_eq!(tree, spliced, "splicing stored entry texts must reproduce the tree render");
        assert!(json::parse(&spliced).is_ok());
        assert_eq!(sweep_report_from_texts(&[]), "{\"schema\":\"psb-sweep-v1\",\"cells\":[]}");
    }

    #[test]
    fn artifact_without_obs_keeps_stable_shape() {
        let stats = tiny_stats(None);
        let doc = json_report("health", "conf-priority", &stats, None);
        let back = json::parse(&doc.to_string()).unwrap();
        assert!(matches!(back.get("lifecycle"), Some(Json::Null)));
        assert_eq!(back.get("epochs").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
    }
}
