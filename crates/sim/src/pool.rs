//! Generic ordered worker pool: the concurrency core of the sweep
//! harness, factored out so `cargo xtask model` can exhaustively
//! explore its interleavings with cheap payloads instead of full
//! simulations.
//!
//! The shape is claim-by-cursor fan-out with submission-order results:
//! workers claim item indices from a shared atomic cursor, send
//! `(index, result)` pairs over a channel, and the coordinator (the
//! calling thread) files each result into the slot its *submission*
//! index names — completion order decides nothing but progress
//! callbacks. A panicking item is caught on the worker, reported with
//! its index, and never takes the pool down: remaining items still run,
//! every worker joins, and the caller gets a typed error naming the
//! first failing item.
//!
//! All synchronization goes through the [`psb_model`] shims, so the
//! code model-checked by `crates/sim/tests/model.rs` is exactly the
//! code production sweeps run.

use psb_model::sync::atomic::{AtomicUsize, Ordering};
use psb_model::sync::mpsc;
use psb_model::thread;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A panic captured from a pool worker while it ran one item.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolPanic {
    /// Submission index of the item whose work function panicked.
    pub index: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for PoolPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work item {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for PoolPanic {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `work` over every item on `workers` threads and returns the
/// results in submission order.
///
/// `on_done` fires once per successful item, in completion order, on
/// the calling thread — callers hang progress display and other
/// single-threaded aggregation (e.g. `Obs` counters) there.
///
/// A panic inside `work` does not poison the pool: the worker catches
/// it, reports it, and keeps draining items. When any item panicked the
/// call returns the [`PoolPanic`] with the smallest index (a
/// deterministic choice — completion order never picks the error).
pub fn run_ordered<I: Sync, T: Send>(
    items: &[I],
    workers: usize,
    work: impl Fn(usize, &I) -> T + Sync,
    on_done: impl FnMut(usize, &T),
) -> Result<Vec<T>, PoolPanic> {
    run_ordered_tracked(items, workers, |_, i, item| work(i, item), on_done)
}

/// [`run_ordered`] with worker identity: `work` receives
/// `(worker, index, item)`, where `worker` is a stable `0..workers` id
/// of the thread running the item. Progress trackers hang per-worker
/// state (current cell, heartbeats) off that id; callers that don't
/// care use [`run_ordered`].
pub fn run_ordered_tracked<I: Sync, T: Send>(
    items: &[I],
    workers: usize,
    work: impl Fn(usize, usize, &I) -> T + Sync,
    mut on_done: impl FnMut(usize, &T),
) -> Result<Vec<T>, PoolPanic> {
    let total = items.len();
    if total == 0 {
        return Ok(Vec::new());
    }
    let workers = workers.clamp(1, total);

    // Submission-order slots: worker completion order decides nothing
    // but the progress callbacks.
    let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
    let mut first_panic: Option<PoolPanic> = None;
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<T, String>)>();
    let work = &work;

    thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let out = catch_unwind(AssertUnwindSafe(|| work(w, i, item)))
                    .map_err(|p| panic_message(p.as_ref()));
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        // The coordinator aggregates on the caller's thread; the scope
        // joins every worker before this block exits, panic or not.
        for (index, out) in rx {
            match out {
                Ok(value) => {
                    on_done(index, &value);
                    slots[index] = Some(value);
                }
                Err(message) => {
                    if first_panic.as_ref().is_none_or(|p| index < p.index) {
                        first_panic = Some(PoolPanic { index, message });
                    }
                }
            }
        }
    });

    if let Some(p) = first_panic {
        return Err(p);
    }
    Ok(slots
        .into_iter()
        .map(|s| {
            // Invariant: the scope joined every worker, and a worker
            // either sends each claimed index or reports its panic (in
            // which case we returned Err above), so every slot is full.
            s.expect("invariant: every submitted item reported a result")
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_land_in_submission_order() {
        let items: Vec<usize> = (0..16).collect();
        let out = run_ordered(&items, 4, |i, &v| (i, v * 2), |_, _| {}).expect("no panics");
        assert_eq!(out.len(), 16);
        for (i, &(idx, doubled)) in out.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(doubled, i * 2);
        }
    }

    #[test]
    fn on_done_fires_once_per_item_on_the_calling_thread() {
        let items: Vec<u32> = (0..9).collect();
        let mut seen = Vec::new();
        run_ordered(&items, 3, |_, &v| v, |i, &v| seen.push((i, v))).expect("no panics");
        seen.sort_unstable();
        assert_eq!(seen, (0..9).map(|v| (v as usize, v)).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_item_reports_its_index_and_pool_joins() {
        let items: Vec<usize> = (0..8).collect();
        let err = run_ordered(
            &items,
            3,
            |_, &v| {
                if v == 5 {
                    panic!("item five exploded");
                }
                v
            },
            |_, _| {},
        )
        .expect_err("item 5 must fail the pool");
        assert_eq!(err.index, 5);
        assert!(err.message.contains("item five exploded"), "got: {}", err.message);
        // Reaching this line at all proves every worker joined.
    }

    #[test]
    fn smallest_failing_index_wins_deterministically() {
        let items: Vec<usize> = (0..12).collect();
        for workers in [1, 2, 4] {
            let err = run_ordered(
                &items,
                workers,
                |_, &v| {
                    if v % 3 == 2 {
                        panic!("boom at {v}");
                    }
                    v
                },
                |_, _| {},
            )
            .expect_err("several items fail");
            assert_eq!(err.index, 2, "workers={workers} must report the smallest index");
        }
    }

    #[test]
    fn tracked_work_sees_in_range_worker_ids_and_matching_indices() {
        let items: Vec<usize> = (0..32).collect();
        let out = run_ordered_tracked(
            &items,
            4,
            |w, i, &v| {
                assert!(w < 4, "worker id out of range: {w}");
                assert_eq!(i, v, "claimed index must match the item");
                (w, v * 3)
            },
            |_, _| {},
        )
        .expect("no panics");
        for (i, &(w, tripled)) in out.iter().enumerate() {
            assert!(w < 4);
            assert_eq!(tripled, i * 3);
        }
    }

    #[test]
    fn empty_input_is_a_noop() {
        let out: Vec<u8> =
            run_ordered(&[], 4, |_, _: &u8| unreachable!(), |_, _| {}).expect("no work");
        assert!(out.is_empty());
    }
}
