//! Live sweep progress: per-worker state, aggregate counts and an ETA,
//! published as self-describing `psb-sweep-progress-v1` JSON documents.
//!
//! A [`SweepTracker`] sits between the sweep's worker pool (which calls
//! [`SweepTracker::worker_started`] / [`SweepTracker::worker_finished`]
//! from worker threads) and whatever wants to watch the sweep — the
//! `--serve` HTTP thread reads the rendered document through a
//! [`Published<String>`] handle, so observation never blocks or even
//! touches the workers. When nothing is attached, nobody calls the
//! tracker and sweeps run exactly as before: the tracker is an
//! `Option<&SweepTracker>` everywhere, costing a branch per cell.
//!
//! Every mutation bumps a global monotonic sequence number and stamps
//! it on the worker row that moved, so a consumer can order per-worker
//! events in *sim-submitted* order across workers without trusting
//! host clocks. The ETA comes from the completed-cell wall-clock
//! histogram: mean cell cost × remaining cells ÷ workers — coarse, but
//! derived entirely from already-measured telemetry (wall-clock never
//! reaches the deterministic artifact; see [`crate::sweep`]).

use psb_common::stats::Log2Histogram;
use psb_model::sync::Mutex;
use psb_obs::Json;
use psb_serve::Published;
use std::sync::Arc;

/// Schema identifier stamped into every progress document.
pub const PROGRESS_SCHEMA: &str = "psb-sweep-progress-v1";

/// One worker's live state.
#[derive(Clone, Debug, Default)]
struct WorkerRow {
    /// Currently simulating a cell (vs. idle/drained).
    running: bool,
    /// Label of the cell being (or last) worked, e.g. `health/Base`.
    cell: String,
    /// Submission index of that cell in the full grid.
    index: Option<usize>,
    /// Cells this worker completed.
    done: usize,
    /// Tracker events from this worker (starts, beats, finishes).
    heartbeats: u64,
    /// Global sequence number of this worker's latest event.
    last_seq: u64,
}

/// Aggregate state behind the tracker's mutex.
#[derive(Debug)]
struct TrackerState {
    total: usize,
    fresh_done: usize,
    replayed: usize,
    seq: u64,
    workers: Vec<WorkerRow>,
    cell_micros: Log2Histogram,
}

impl TrackerState {
    fn row(&mut self, worker: usize) -> &mut WorkerRow {
        if worker >= self.workers.len() {
            self.workers.resize(worker + 1, WorkerRow::default());
        }
        &mut self.workers[worker]
    }

    /// Mean completed-cell cost × remaining ÷ workers, in microseconds;
    /// `None` until at least one cell has completed in this process.
    fn eta_micros(&self) -> Option<u64> {
        let done = self.fresh_done + self.replayed;
        let remaining = self.total.saturating_sub(done);
        if self.cell_micros.total() == 0 || remaining == 0 {
            return None;
        }
        let lanes = self.workers.len().max(1) as f64;
        Some((self.cell_micros.mean() * remaining as f64 / lanes) as u64)
    }

    fn render(&self) -> String {
        let done = self.fresh_done + self.replayed;
        let running = self.workers.iter().filter(|w| w.running).count();
        let workers = self
            .workers
            .iter()
            .enumerate()
            .map(|(id, w)| {
                Json::obj(vec![
                    ("id", Json::u64(id as u64)),
                    ("state", Json::str(if w.running { "running" } else { "idle" })),
                    ("cell", Json::str(&w.cell)),
                    ("index", w.index.map_or(Json::Null, |i| Json::u64(i as u64))),
                    ("done", Json::u64(w.done as u64)),
                    ("heartbeats", Json::u64(w.heartbeats)),
                    ("last_seq", Json::u64(w.last_seq)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::str(PROGRESS_SCHEMA)),
            ("total", Json::u64(self.total as u64)),
            ("done", Json::u64(done as u64)),
            ("replayed", Json::u64(self.replayed as u64)),
            ("running", Json::u64(running as u64)),
            ("workers_configured", Json::u64(self.workers.len() as u64)),
            ("eta_micros", self.eta_micros().map_or(Json::Null, Json::u64)),
            ("seq", Json::u64(self.seq)),
            ("workers", Json::Arr(workers)),
        ])
        .to_string()
    }
}

/// Shared, thread-safe progress tracker for one sweep (or one single
/// run served live — a sweep of one cell). Clone freely: clones share
/// state and the published document.
#[derive(Clone, Debug)]
pub struct SweepTracker {
    state: Arc<Mutex<TrackerState>>,
    doc: Published<String>,
}

impl SweepTracker {
    /// A tracker for a grid of `total` cells, with its initial
    /// (all-zero) document already published.
    pub fn new(total: usize) -> SweepTracker {
        let state = TrackerState {
            total,
            fresh_done: 0,
            replayed: 0,
            seq: 0,
            workers: Vec::new(),
            cell_micros: Log2Histogram::default(),
        };
        let doc = Published::new(state.render());
        SweepTracker { state: Arc::new(Mutex::new(state)), doc }
    }

    /// The handle the HTTP layer serves: always holds the latest
    /// rendered `psb-sweep-progress-v1` document.
    pub fn handle(&self) -> Published<String> {
        self.doc.clone()
    }

    /// The latest rendered progress document.
    pub fn progress_json(&self) -> String {
        (*self.doc.read()).clone()
    }

    /// Applies one mutation, bumps the global sequence number, and
    /// republishes — under one state lock, so the published document
    /// order matches the event order exactly.
    fn mutate(&self, f: impl FnOnce(&mut TrackerState)) {
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut st);
        st.seq += 1;
        self.doc.publish(st.render());
    }

    /// Declares the worker pool: `workers` rows, all idle.
    pub fn begin(&self, workers: usize) {
        self.mutate(|st| {
            st.workers = vec![WorkerRow::default(); workers.max(1)];
        });
    }

    /// Declares `n` cells replayed from a journal (counted into `done`
    /// without touching any worker row or the ETA histogram).
    pub fn set_replayed(&self, n: usize) {
        self.mutate(|st| st.replayed = n);
    }

    /// Worker `worker` began simulating grid cell `index` (`label` is
    /// its human name, e.g. `health/ConfAlloc-Priority`).
    pub fn worker_started(&self, worker: usize, index: usize, label: &str) {
        self.mutate(|st| {
            let seq = st.seq + 1;
            let row = st.row(worker);
            row.running = true;
            row.cell = label.to_string();
            row.index = Some(index);
            row.heartbeats += 1;
            row.last_seq = seq;
        });
    }

    /// Worker `worker` is alive mid-cell (e.g. one interval epoch
    /// closed). Progress consumers use this to tell "slow cell" from
    /// "stuck worker".
    pub fn worker_heartbeat(&self, worker: usize) {
        self.mutate(|st| {
            let seq = st.seq + 1;
            let row = st.row(worker);
            row.heartbeats += 1;
            row.last_seq = seq;
        });
    }

    /// Worker `worker` finished its current cell after `wall_micros`.
    pub fn worker_finished(&self, worker: usize, wall_micros: u64) {
        self.mutate(|st| {
            let seq = st.seq + 1;
            let row = st.row(worker);
            row.running = false;
            row.done += 1;
            row.heartbeats += 1;
            row.last_seq = seq;
            st.fresh_done += 1;
            st.cell_micros.add(wall_micros);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psb_obs::json;

    fn parsed(t: &SweepTracker) -> Json {
        json::parse(&t.progress_json()).expect("progress document must be valid JSON")
    }

    #[test]
    fn initial_document_is_schema_tagged_and_zeroed() {
        let t = SweepTracker::new(12);
        let doc = parsed(&t);
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(PROGRESS_SCHEMA));
        assert_eq!(doc.get("total").and_then(Json::as_u64), Some(12));
        assert_eq!(doc.get("done").and_then(Json::as_u64), Some(0));
        assert!(matches!(doc.get("eta_micros"), Some(Json::Null)));
        assert_eq!(doc.get("workers").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
    }

    #[test]
    fn lifecycle_updates_counts_rows_and_sequence() {
        let t = SweepTracker::new(4);
        t.begin(2);
        t.worker_started(0, 0, "health/Base");
        t.worker_started(1, 1, "health/Stride");
        t.worker_heartbeat(0);
        t.worker_finished(0, 1000);
        let doc = parsed(&t);
        assert_eq!(doc.get("done").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("running").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("workers_configured").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("seq").and_then(Json::as_u64), Some(5));
        let workers = doc.get("workers").and_then(Json::as_arr).expect("workers");
        assert_eq!(workers[0].get("state").and_then(Json::as_str), Some("idle"));
        assert_eq!(workers[0].get("done").and_then(Json::as_u64), Some(1));
        assert_eq!(workers[0].get("heartbeats").and_then(Json::as_u64), Some(3));
        assert_eq!(workers[1].get("state").and_then(Json::as_str), Some("running"));
        assert_eq!(workers[1].get("cell").and_then(Json::as_str), Some("health/Stride"));
        assert_eq!(workers[1].get("index").and_then(Json::as_u64), Some(1));
        // Per-worker last_seq orders events across workers.
        let s0 = workers[0].get("last_seq").and_then(Json::as_u64).unwrap();
        let s1 = workers[1].get("last_seq").and_then(Json::as_u64).unwrap();
        assert!(s0 > s1, "worker 0 moved last: {s0} vs {s1}");
        // One completed cell at 1000us, three remaining, two lanes.
        assert_eq!(doc.get("eta_micros").and_then(Json::as_u64), Some(1500));
    }

    #[test]
    fn replayed_cells_count_into_done_but_not_eta() {
        let t = SweepTracker::new(6);
        t.set_replayed(4);
        let doc = parsed(&t);
        assert_eq!(doc.get("done").and_then(Json::as_u64), Some(4));
        assert_eq!(doc.get("replayed").and_then(Json::as_u64), Some(4));
        assert!(matches!(doc.get("eta_micros"), Some(Json::Null)), "no measured cells yet");
    }

    #[test]
    fn eta_clears_when_the_grid_completes() {
        let t = SweepTracker::new(1);
        t.begin(1);
        t.worker_started(0, 0, "x");
        t.worker_finished(0, 500);
        let doc = parsed(&t);
        assert_eq!(doc.get("done").and_then(Json::as_u64), Some(1));
        assert!(matches!(doc.get("eta_micros"), Some(Json::Null)));
    }

    #[test]
    fn handle_and_progress_json_agree() {
        let t = SweepTracker::new(2);
        t.begin(1);
        let h = t.handle();
        t.worker_started(0, 1, "gs/Base");
        assert_eq!(*h.read(), t.progress_json());
        assert!(h.read().contains("gs/Base"));
    }
}
