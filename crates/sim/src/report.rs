//! Plain-text table formatting for the experiment harness.

use std::fmt;

/// A simple aligned text table, used by the figure/table binaries to
/// print rows the way the paper reports them.
///
/// # Example
///
/// ```
/// use psb_sim::Table;
///
/// let mut t = Table::new(vec!["bench".into(), "IPC".into()]);
/// t.row(vec!["health".into(), "0.83".into()]);
/// let s = t.to_string();
/// assert!(s.contains("health"));
/// assert!(s.contains("IPC"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<String>) -> Self {
        Table { headers, rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimal places (the paper's usual precision).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float as a percentage with 1 decimal place.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "bench".into()]);
        t.row(vec!["1".into(), "x".into()]);
        t.row(vec!["22".into(), "deltablue".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bench"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned numbers line up.
        assert!(lines[2].trim_start().starts_with('1'));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(31.449), "31.4%");
    }
}
