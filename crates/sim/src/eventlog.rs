//! Memory event logging for debugging and teaching.
//!
//! When enabled, the memory system records how each access was served —
//! L1 hit, stream-buffer hit, victim rescue, demand fetch, prefetch — up
//! to a capacity, so a user can watch the prefetcher run ahead of a
//! pointer chase cycle by cycle (`psbsim --log N`).

use psb_common::{Addr, Cycle};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// How a memory event was resolved.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MemEventKind {
    /// Demand load hit the L1.
    L1Hit,
    /// Demand access merged with an in-flight fill.
    L1InFlight,
    /// Demand miss found the block resident in a stream/prefetch buffer.
    SbHitReady,
    /// Demand miss found the block in flight to a stream/prefetch buffer.
    SbHitInFlight,
    /// Demand miss rescued by the victim cache.
    VictimHit,
    /// Demand miss fetched from the L2.
    DemandL2,
    /// Demand miss fetched from main memory.
    DemandMemory,
    /// Store miss (write-allocate fetch, nothing waits on it).
    StoreMiss,
    /// Prefetch issued by the prefetch engine.
    Prefetch,
    /// Instruction-fetch miss.
    IFetchMiss,
}

impl fmt::Display for MemEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemEventKind::L1Hit => "l1-hit",
            MemEventKind::L1InFlight => "l1-inflight",
            MemEventKind::SbHitReady => "sb-hit",
            MemEventKind::SbHitInFlight => "sb-inflight",
            MemEventKind::VictimHit => "victim-hit",
            MemEventKind::DemandL2 => "demand-l2",
            MemEventKind::DemandMemory => "demand-mem",
            MemEventKind::StoreMiss => "store-miss",
            MemEventKind::Prefetch => "prefetch",
            MemEventKind::IFetchMiss => "ifetch-miss",
        };
        f.write_str(s)
    }
}

/// One recorded memory event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MemEvent {
    /// Cycle the access was made.
    pub cycle: Cycle,
    /// PC of the instruction, when applicable.
    pub pc: Option<Addr>,
    /// The accessed (or prefetched) address.
    pub addr: Addr,
    /// Cycle the data is available.
    pub ready: Cycle,
    /// How it resolved.
    pub kind: MemEventKind,
}

impl fmt::Display for MemEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cy{:<8} {:<12} addr={:<12}", self.cycle.raw(), self.kind, self.addr)?;
        if let Some(pc) = self.pc {
            write!(f, " pc={pc}")?;
        }
        write!(f, " ready=cy{} (+{})", self.ready.raw(), self.ready.raw() - self.cycle.raw())
    }
}

/// A bounded event recorder, shared between the memory system's
/// components via [`SharedMemLog`].
#[derive(Debug)]
pub struct MemLog {
    events: Vec<MemEvent>,
    capacity: usize,
    /// Allowed backward cycle skew between consecutive entries, published
    /// to the invariant auditor: demand events are stamped after address
    /// translation, so a TLB miss can push one ahead of later same-cycle
    /// submissions by up to the TLB miss penalty.
    #[cfg(feature = "check")]
    check_skew: u64,
}

/// The shared handle the simulator components write through.
pub type SharedMemLog = Rc<RefCell<MemLog>>;

impl MemLog {
    /// Creates a log keeping the first `capacity` events.
    pub fn shared(capacity: usize) -> SharedMemLog {
        Rc::new(RefCell::new(MemLog {
            events: Vec::new(),
            capacity,
            #[cfg(feature = "check")]
            check_skew: 0,
        }))
    }

    /// Declares the backward cycle skew the auditor should tolerate
    /// between consecutive entries (the owning memory system sets this to
    /// its TLB miss penalty when it attaches the log).
    #[cfg(feature = "check")]
    pub fn set_check_skew(&mut self, skew: u64) {
        self.check_skew = skew;
    }

    /// Records an event if capacity remains.
    pub fn record(&mut self, event: MemEvent) {
        if self.events.len() < self.capacity {
            #[cfg(feature = "check")]
            psb_check::audit(&psb_check::Snapshot::Event {
                prev_cycle: self.events.last().map_or(event.cycle, |e| e.cycle),
                cycle: event.cycle,
                ready: Some(event.ready),
                slack: self.check_skew,
            });
            self.events.push(event);
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[MemEvent] {
        &self.events
    }

    /// True once the capacity is exhausted.
    pub fn is_full(&self) -> bool {
        self.events.len() >= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: MemEventKind) -> MemEvent {
        MemEvent {
            cycle: Cycle::new(cycle),
            pc: Some(Addr::new(0x400)),
            addr: Addr::new(0x1000),
            ready: Cycle::new(cycle + 4),
            kind,
        }
    }

    #[test]
    fn capacity_bounds_recording() {
        let log = MemLog::shared(2);
        log.borrow_mut().record(ev(1, MemEventKind::L1Hit));
        log.borrow_mut().record(ev(2, MemEventKind::Prefetch));
        log.borrow_mut().record(ev(3, MemEventKind::DemandMemory));
        let l = log.borrow();
        assert_eq!(l.events().len(), 2);
        assert!(l.is_full());
        assert_eq!(l.events()[1].kind, MemEventKind::Prefetch);
    }

    #[test]
    fn display_is_informative() {
        let s = ev(42, MemEventKind::SbHitReady).to_string();
        assert!(s.contains("cy42"));
        assert!(s.contains("sb-hit"));
        assert!(s.contains("pc=0x400"));
        assert!(s.contains("(+4)"));
    }

    #[test]
    fn all_kinds_have_labels() {
        for k in [
            MemEventKind::L1Hit,
            MemEventKind::L1InFlight,
            MemEventKind::SbHitReady,
            MemEventKind::SbHitInFlight,
            MemEventKind::VictimHit,
            MemEventKind::DemandL2,
            MemEventKind::DemandMemory,
            MemEventKind::StoreMiss,
            MemEventKind::Prefetch,
            MemEventKind::IFetchMiss,
        ] {
            assert!(!k.to_string().is_empty());
        }
    }
}
