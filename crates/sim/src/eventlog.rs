//! Memory event logging for debugging and teaching.
//!
//! When enabled, the memory system records how each access was served —
//! L1 hit, stream-buffer hit, victim rescue, demand fetch, prefetch — up
//! to a capacity, so a user can watch the prefetcher run ahead of a
//! pointer chase cycle by cycle (`psbsim --log N`).

use psb_common::{Addr, Cycle};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// How a memory event was resolved.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MemEventKind {
    /// Demand load hit the L1.
    L1Hit,
    /// Demand access merged with an in-flight fill.
    L1InFlight,
    /// Demand miss found the block resident in a stream/prefetch buffer.
    SbHitReady,
    /// Demand miss found the block in flight to a stream/prefetch buffer.
    SbHitInFlight,
    /// Demand miss rescued by the victim cache.
    VictimHit,
    /// Demand miss fetched from the L2.
    DemandL2,
    /// Demand miss fetched from main memory.
    DemandMemory,
    /// Store miss (write-allocate fetch, nothing waits on it).
    StoreMiss,
    /// Prefetch issued by the prefetch engine.
    Prefetch,
    /// Instruction-fetch miss.
    IFetchMiss,
    /// Prefetched block arrived in its stream buffer (lifecycle event,
    /// emitted only when observability tracing is attached).
    PrefetchFilled,
    /// Prefetched block was displaced by a stream reallocation before any
    /// demand access touched it (a wasted prefetch).
    PrefetchEvictedUnused,
    /// Demand access consumed a prefetch that was still in flight — the
    /// prefetch was useful but late.
    PrefetchLate,
}

impl fmt::Display for MemEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemEventKind::L1Hit => "l1-hit",
            MemEventKind::L1InFlight => "l1-inflight",
            MemEventKind::SbHitReady => "sb-hit",
            MemEventKind::SbHitInFlight => "sb-inflight",
            MemEventKind::VictimHit => "victim-hit",
            MemEventKind::DemandL2 => "demand-l2",
            MemEventKind::DemandMemory => "demand-mem",
            MemEventKind::StoreMiss => "store-miss",
            MemEventKind::Prefetch => "prefetch",
            MemEventKind::IFetchMiss => "ifetch-miss",
            MemEventKind::PrefetchFilled => "pf-filled",
            MemEventKind::PrefetchEvictedUnused => "pf-evicted",
            MemEventKind::PrefetchLate => "pf-late",
        };
        f.write_str(s)
    }
}

/// One recorded memory event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MemEvent {
    /// Cycle the access was made.
    pub cycle: Cycle,
    /// PC of the instruction, when applicable.
    pub pc: Option<Addr>,
    /// The accessed (or prefetched) address.
    pub addr: Addr,
    /// Cycle the data is available.
    pub ready: Cycle,
    /// How it resolved.
    pub kind: MemEventKind,
}

impl fmt::Display for MemEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cy{:<8} {:<12} addr={:<12}", self.cycle.raw(), self.kind, self.addr)?;
        if let Some(pc) = self.pc {
            write!(f, " pc={pc}")?;
        }
        write!(f, " ready=cy{} (+{})", self.ready.raw(), self.ready.since(self.cycle))
    }
}

/// Retention policy for a [`MemLog`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Retention {
    /// Keep the first `capacity` events, then stop recording — good for
    /// watching a run start up (`psbsim --log N`).
    KeepFirst,
    /// Keep the *last* `capacity` events in a ring, overwriting the
    /// oldest — good for seeing what led up to the end of a run without
    /// unbounded memory.
    KeepLast,
}

/// A bounded event recorder, shared between the memory system's
/// components via [`SharedMemLog`].
#[derive(Debug)]
pub struct MemLog {
    events: Vec<MemEvent>,
    capacity: usize,
    retention: Retention,
    /// Next overwrite slot in [`Retention::KeepLast`] mode.
    head: usize,
    /// Total events submitted, including those dropped or overwritten.
    submitted: u64,
    /// Cycle stamp of the most recently recorded event. The invariant
    /// auditor compares against this rather than `events.last()` because
    /// ring mode rotates storage order away from record order.
    #[cfg(feature = "check")]
    last_recorded: Option<Cycle>,
    /// Allowed backward cycle skew between consecutive entries, published
    /// to the invariant auditor: demand events are stamped after address
    /// translation, so a TLB miss can push one ahead of later same-cycle
    /// submissions by up to the TLB miss penalty.
    #[cfg(feature = "check")]
    check_skew: u64,
}

/// The shared handle the simulator components write through.
pub type SharedMemLog = Rc<RefCell<MemLog>>;

impl MemLog {
    fn with_retention(capacity: usize, retention: Retention) -> SharedMemLog {
        Rc::new(RefCell::new(MemLog {
            events: Vec::new(),
            capacity,
            retention,
            head: 0,
            submitted: 0,
            #[cfg(feature = "check")]
            last_recorded: None,
            #[cfg(feature = "check")]
            check_skew: 0,
        }))
    }

    /// Creates a log keeping the first `capacity` events.
    pub fn shared(capacity: usize) -> SharedMemLog {
        Self::with_retention(capacity, Retention::KeepFirst)
    }

    /// Creates a log keeping the *last* `capacity` events (a ring buffer
    /// that overwrites the oldest entry once full).
    pub fn shared_ring(capacity: usize) -> SharedMemLog {
        Self::with_retention(capacity, Retention::KeepLast)
    }

    /// Declares the backward cycle skew the auditor should tolerate
    /// between consecutive entries (the owning memory system sets this to
    /// its TLB miss penalty when it attaches the log).
    #[cfg(feature = "check")]
    pub fn set_check_skew(&mut self, skew: u64) {
        self.check_skew = skew;
    }

    /// Records an event, subject to the retention policy.
    pub fn record(&mut self, event: MemEvent) {
        self.submitted += 1;
        if self.capacity == 0 {
            return;
        }
        let keep = match self.retention {
            Retention::KeepFirst => self.events.len() < self.capacity,
            Retention::KeepLast => true,
        };
        if !keep {
            return;
        }
        #[cfg(feature = "check")]
        {
            psb_check::audit(&psb_check::Snapshot::Event {
                prev_cycle: self.last_recorded.unwrap_or(event.cycle),
                cycle: event.cycle,
                ready: Some(event.ready),
                slack: self.check_skew,
            });
            self.last_recorded = Some(event.cycle);
        }
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            // Ring mode, saturated: overwrite the oldest entry. Plain
            // wrap-around comparison instead of `%` keeps the recording
            // hot path free of a division (and its zero-divisor panic
            // class — capacity >= 1 is already guarded above).
            self.events[self.head] = event;
            self.head = if self.head + 1 == self.capacity { 0 } else { self.head + 1 };
        }
    }

    /// The recorded events in *storage* order. In keep-first mode this is
    /// record order; in ring mode use [`MemLog::ordered`] for record
    /// order once the ring has wrapped.
    pub fn events(&self) -> &[MemEvent] {
        &self.events
    }

    /// The recorded events in record (chronological-submission) order,
    /// un-rotating the ring when necessary.
    pub fn ordered(&self) -> Vec<MemEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// Total events submitted, including any dropped (keep-first) or
    /// overwritten (ring).
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// True once the capacity is exhausted. A keep-first log stops
    /// recording at this point; a ring starts overwriting.
    pub fn is_full(&self) -> bool {
        self.events.len() >= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: MemEventKind) -> MemEvent {
        MemEvent {
            cycle: Cycle::new(cycle),
            pc: Some(Addr::new(0x400)),
            addr: Addr::new(0x1000),
            ready: Cycle::new(cycle + 4),
            kind,
        }
    }

    #[test]
    fn capacity_bounds_recording() {
        let log = MemLog::shared(2);
        log.borrow_mut().record(ev(1, MemEventKind::L1Hit));
        log.borrow_mut().record(ev(2, MemEventKind::Prefetch));
        log.borrow_mut().record(ev(3, MemEventKind::DemandMemory));
        let l = log.borrow();
        assert_eq!(l.events().len(), 2);
        assert!(l.is_full());
        assert_eq!(l.events()[1].kind, MemEventKind::Prefetch);
    }

    #[test]
    fn display_is_informative() {
        let s = ev(42, MemEventKind::SbHitReady).to_string();
        assert!(s.contains("cy42"));
        assert!(s.contains("sb-hit"));
        assert!(s.contains("pc=0x400"));
        assert!(s.contains("(+4)"));
    }

    #[test]
    fn all_kinds_have_labels() {
        for k in [
            MemEventKind::L1Hit,
            MemEventKind::L1InFlight,
            MemEventKind::SbHitReady,
            MemEventKind::SbHitInFlight,
            MemEventKind::VictimHit,
            MemEventKind::DemandL2,
            MemEventKind::DemandMemory,
            MemEventKind::StoreMiss,
            MemEventKind::Prefetch,
            MemEventKind::IFetchMiss,
            MemEventKind::PrefetchFilled,
            MemEventKind::PrefetchEvictedUnused,
            MemEventKind::PrefetchLate,
        ] {
            assert!(!k.to_string().is_empty());
        }
    }

    #[test]
    fn ring_keeps_last_n_in_order() {
        let log = MemLog::shared_ring(3);
        for c in 1..=5u64 {
            log.borrow_mut().record(ev(c, MemEventKind::L1Hit));
        }
        let l = log.borrow();
        assert_eq!(l.submitted(), 5);
        assert!(l.is_full());
        let cycles: Vec<u64> = l.ordered().iter().map(|e| e.cycle.raw()).collect();
        assert_eq!(cycles, vec![3, 4, 5], "ring keeps the most recent events");
        // Storage order has rotated, but nothing is lost.
        assert_eq!(l.events().len(), 3);
    }

    #[test]
    fn ordered_matches_events_before_wrap() {
        let log = MemLog::shared_ring(4);
        log.borrow_mut().record(ev(1, MemEventKind::Prefetch));
        log.borrow_mut().record(ev(2, MemEventKind::PrefetchFilled));
        let l = log.borrow();
        assert_eq!(l.ordered(), l.events().to_vec());
    }

    #[test]
    fn zero_capacity_counts_but_stores_nothing() {
        let log = MemLog::shared_ring(0);
        log.borrow_mut().record(ev(1, MemEventKind::L1Hit));
        assert_eq!(log.borrow().submitted(), 1);
        assert!(log.borrow().events().is_empty());
    }
}
