//! The composed memory system presented to the pipeline.

use crate::eventlog::{MemEvent, MemEventKind, SharedMemLog};
use crate::MachineConfig;
use psb_common::{Addr, Cycle};
use psb_core::{PrefetchSink, Prefetcher, SbLookup, SharedStreamObs, StreamObs};
use psb_cpu::MemSystem;
use psb_mem::{L1Access, L1Cache, LowerMemory, Tlb, VictimCache};
use psb_obs::{IntervalSample, LifeStage, Obs};
use std::rc::Rc;

/// Bridges the observability hub onto the core engines' [`StreamObs`]
/// sink trait. Core crates no longer depend on `psb-obs` (layering:
/// hardware model below observability); this newtype is where the
/// simulator reconnects the two.
struct ObsBridge(Obs);

impl StreamObs for ObsBridge {
    fn counter(&self, name: &str) -> psb_common::metrics::Counter {
        self.0.counter(name)
    }
    fn wants_block_events(&self) -> bool {
        self.0.wants_block_events()
    }
    fn name_buffer_track(&self, buffer: usize, name: &str) {
        self.0.name_buffer_track(buffer, name);
    }
    fn stream_allocated(&self, now: u64, buffer: usize, pc: u64, confidence: u64, displaced: u64) {
        self.0.stream_allocated(now, buffer, pc, confidence, displaced);
    }
    fn evicted_unused_block(&self, now: u64, buffer: usize, block_base: u64) {
        self.0.evicted_unused_block(now, buffer, block_base);
    }
    fn predicted(&self, now: u64, buffer: usize, block_base: u64) {
        self.0.predicted(now, buffer, block_base);
    }
    fn issued(&self, now: u64, buffer: usize, block_base: u64, ready: u64) {
        self.0.issued(now, buffer, block_base, ready);
    }
    fn filled(&self, now: u64, buffer: usize, count: u64) {
        self.0.filled(now, buffer, count);
    }
    fn filled_block(&self, now: u64, buffer: usize, block_base: u64) {
        self.0.filled_block(now, buffer, block_base);
    }
    fn used(&self, now: u64, buffer: usize, block_base: u64, late_by: u64) {
        self.0.used(now, buffer, block_base, late_by);
    }
    fn demand_raced(&self, now: u64, buffer: usize, block_base: u64) {
        self.0.demand_raced(now, buffer, block_base);
    }
    fn buffer_occupancy(&self, now: u64, buffer: usize, ready: u64, in_flight: u64, priority: u64) {
        self.0.buffer_occupancy(now, buffer, ready, in_flight, priority);
    }
}

/// Wraps the hub in a shareable [`StreamObs`] handle for the engines.
fn stream_obs(obs: &Obs) -> SharedStreamObs {
    Rc::new(ObsBridge(obs.clone()))
}

/// The lower world shared by demand misses and prefetches: the L2 +
/// memory system and the data TLB. Split out so the prefetcher can borrow
/// it as its [`PrefetchSink`] while remaining a sibling field.
#[derive(Debug)]
struct Lower {
    lower: LowerMemory,
    dtlb: Tlb,
    l1_block: u64,
    log: Option<SharedMemLog>,
}

impl PrefetchSink for Lower {
    fn bus_free(&self, now: Cycle) -> bool {
        self.lower.l1_bus_free(now)
    }

    fn fetch(&mut self, now: Cycle, addr: Addr) -> Cycle {
        // The paper only issues prefetches when the L1-L2 bus is free at
        // the start of the cycle; publish the observation so the auditor
        // can catch an engine that fetches over a busy bus.
        #[cfg(feature = "check")]
        psb_check::audit(&psb_check::Snapshot::PrefetchFetch {
            now,
            bus_free: self.lower.l1_bus_free(now),
        });
        // Prefetches carry virtual addresses: translate first. A TLB miss
        // delays the prefetch and warms the TLB (TLB prefetching,
        // Section 4.5).
        let (ready, _) = self.dtlb.translate(now, addr, true);
        let done = self.lower.fetch_block(ready, addr, self.l1_block).ready;
        if let Some(log) = &self.log {
            log.borrow_mut().record(MemEvent {
                cycle: now,
                pc: None,
                addr,
                ready: done,
                kind: MemEventKind::Prefetch,
            });
        }
        done
    }
}

/// The full memory system: L1 caches, stream-buffer prefetcher, unified
/// L2, buses, DRAM and D-TLB.
///
/// Implements [`MemSystem`] for the pipeline. The per-access protocol for
/// a demand load mirrors Section 4.1 of the paper:
///
/// 1. The L1 and the stream buffers are probed in parallel (we model the
///    stream-buffer lookup latency as equal to the L1 latency).
/// 2. An L1 miss that hits a stream buffer moves the block into the L1
///    (resident) or hands the tag to an MSHR (in flight).
/// 3. An L1 miss trains the address predictor (the "write-back stage"
///    update; only *primary* misses train, keeping the miss stream
///    clean), and a miss in both structures requests a stream allocation
///    and fetches the block from the lower memory system.
pub struct SimMemory {
    l1d: L1Cache,
    l1i: L1Cache,
    inner: Lower,
    prefetcher: Box<dyn Prefetcher>,
    victim: Option<VictimCache>,
    log: Option<SharedMemLog>,
    obs: Option<Obs>,
    /// Next cycle the interval sampler is due, or `u64::MAX` when
    /// interval sampling is off — keeps the per-cycle
    /// [`MemSystem::sample`] hook to a single compare.
    next_sample: u64,
    /// Epoch width in cycles (zero when interval sampling is off).
    sample_every: u64,
    /// Cached [`Prefetcher::quiescent`] verdict from the last real tick.
    /// While true, [`MemSystem::tick`] skips the engine's virtual
    /// dispatch entirely: the engine has promised its tick is a no-op
    /// until the next lookup / allocation / fetch observation, and every
    /// path that could change that (all inside [`SimMemory::miss`] and
    /// [`MemSystem::fetched_load`]) clears the flag. Most pipeline
    /// cycles perform no memory access, so whole quiescent epochs step
    /// through a single predicted branch.
    pf_idle: bool,
    /// When set, [`Prefetcher::quiescent`] verdicts are ignored and the
    /// engine is ticked every cycle. The skip-ahead is an optimization
    /// with an exactness claim; forcing every tick is how the
    /// differential suites and the mutation-testing kill suite pin that
    /// claim down. Enabled by [`SimMemory::set_force_tick`] or the
    /// `PSB_FORCE_TICK` environment switch (any value but `0`), read
    /// once at construction so the hot path never touches the
    /// environment.
    force_tick: bool,
}

/// Reads the `PSB_FORCE_TICK` environment switch: set and not `"0"`
/// means every cycle performs a real prefetcher tick.
fn force_tick_env() -> bool {
    std::env::var_os("PSB_FORCE_TICK").is_some_and(|v| !v.is_empty() && v != "0")
}

impl SimMemory {
    /// Builds the memory system described by `config`.
    pub fn new(config: &MachineConfig) -> Self {
        Self::with_engine(config, config.prefetcher.build())
    }

    /// Builds the memory system with a custom prefetch engine (used by
    /// the ablation harness to sweep predictor/scheduler parameters that
    /// [`crate::PrefetcherKind`] does not enumerate).
    pub fn with_engine(config: &MachineConfig, prefetcher: Box<dyn Prefetcher>) -> Self {
        let mem = &config.mem;
        SimMemory {
            l1d: L1Cache::new(mem.l1d, mem.l1_latency, mem.l1d_mshrs),
            l1i: L1Cache::new(mem.l1i, mem.l1_latency, mem.l1i_mshrs),
            inner: Lower {
                lower: LowerMemory::new(mem),
                dtlb: Tlb::new(
                    mem.dtlb_entries,
                    mem.dtlb_assoc,
                    mem.page_size,
                    mem.dtlb_miss_latency,
                ),
                l1_block: mem.l1d.block,
                log: None,
            },
            prefetcher,
            victim: (config.victim_entries > 0)
                .then(|| VictimCache::new(config.victim_entries, mem.l1d.block, 1)),
            log: None,
            obs: None,
            next_sample: u64::MAX,
            sample_every: 0,
            pf_idle: false,
            force_tick: force_tick_env(),
        }
    }

    /// Forces a real prefetcher tick every cycle, defeating the
    /// quiescence skip-ahead (see the `force_tick` field). Programmatic
    /// equivalent of the `PSB_FORCE_TICK` environment switch; forcing
    /// must never change any reported result, and the differential
    /// suites assert exactly that.
    pub fn set_force_tick(&mut self, on: bool) {
        self.force_tick = on;
        self.pf_idle = false;
    }

    /// Attaches a shared event log; demand accesses, prefetches and
    /// I-fetch misses are recorded until it fills.
    pub fn attach_log(&mut self, log: SharedMemLog) {
        #[cfg(feature = "check")]
        log.borrow_mut().set_check_skew(self.inner.dtlb.miss_latency());
        self.inner.log = Some(log.clone());
        self.log = Some(log);
        self.pf_idle = false;
        if let Some(obs) = &self.obs {
            // With both a log and an obs hub attached, route the
            // prefetch-lifecycle events into the log too; re-attach the
            // prefetcher so it refreshes its cached event-detail flag.
            obs.enable_lifecycle_log();
            self.prefetcher.attach_obs(&stream_obs(obs));
        }
    }

    /// Attaches the observability hub: every component registers its
    /// counters/histograms/gauges with the hub's registry, the stream
    /// engine starts emitting lifecycle and trace events through it, and
    /// (when the hub has an interval sampler) per-epoch time series are
    /// recorded from [`MemSystem::sample`].
    pub fn attach_obs(&mut self, obs: &Obs) {
        self.l1d.attach_obs(obs.gauge("l1d.mshr.occupancy"), obs.counter("l1d.mshr.full_rejects"));
        self.l1i.attach_obs(obs.gauge("l1i.mshr.occupancy"), obs.counter("l1i.mshr.full_rejects"));
        self.inner.lower.attach_obs(obs);
        if let Some(victim) = &mut self.victim {
            victim.attach_obs(obs.counter("victim.rescues"));
        }
        if self.log.is_some() {
            // Must precede `prefetcher.attach_obs`: the stream engine
            // caches whether block-level lifecycle events are wanted.
            obs.enable_lifecycle_log();
        }
        self.prefetcher.attach_obs(&stream_obs(obs));
        self.pf_idle = false;
        if let Some(every) = obs.interval_every() {
            self.sample_every = every;
            self.next_sample = every;
        }
        self.obs = Some(obs.clone());
    }

    /// Builds the cumulative counter snapshot the interval sampler
    /// differences into per-epoch rates.
    fn interval_snapshot(&self, cycle: u64, committed: u64) -> IntervalSample {
        let l1d = self.l1d.stats();
        let pf = self.prefetcher.stats();
        IntervalSample {
            cycle,
            committed,
            l1d_accesses: l1d.accesses(),
            l1d_misses: l1d.misses,
            pf_issued: pf.issued,
            pf_used: pf.used,
            bus_busy: self.inner.lower.l1_l2_bus().busy_cycles(),
        }
    }

    /// Flushes a final (possibly partial) epoch at the end of a run so
    /// the time series covers every cycle. No-op when interval sampling
    /// is off.
    pub fn finish_sampling(&mut self, now: Cycle, committed: u64) {
        if self.sample_every == 0 {
            return;
        }
        if let Some(obs) = &self.obs {
            obs.interval_record(self.interval_snapshot(now.raw(), committed));
        }
    }

    fn record(&self, cycle: Cycle, pc: Option<Addr>, addr: Addr, ready: Cycle, kind: MemEventKind) {
        if let Some(log) = &self.log {
            log.borrow_mut().record(MemEvent { cycle, pc, addr, ready, kind });
        }
    }

    /// The victim cache, if configured.
    pub fn victim(&self) -> Option<&VictimCache> {
        self.victim.as_ref()
    }

    /// The L1 data cache (for statistics).
    pub fn l1d(&self) -> &L1Cache {
        &self.l1d
    }

    /// The L1 instruction cache (for statistics).
    pub fn l1i(&self) -> &L1Cache {
        &self.l1i
    }

    /// The lower memory system (for statistics).
    pub fn lower(&self) -> &LowerMemory {
        &self.inner.lower
    }

    /// The data TLB (for statistics).
    pub fn dtlb(&self) -> &Tlb {
        &self.inner.dtlb
    }

    /// The prefetch engine (for statistics).
    pub fn prefetcher(&self) -> &dyn Prefetcher {
        self.prefetcher.as_ref()
    }

    /// Handles an L1D miss shared by loads and stores: probe the stream
    /// buffers, then fall back to the lower memory system. Returns the
    /// data-ready cycle. `is_load` gates predictor training/allocation.
    fn miss(&mut self, now: Cycle, pc: Addr, addr: Addr, is_load: bool) -> Cycle {
        // Any miss may wake the prefetcher (a lookup hit frees an entry;
        // an allocation opens a stream): drop the idle-tick shortcut.
        self.pf_idle = false;
        if is_load {
            // Write-back-stage predictor update: primary load misses only.
            self.prefetcher.train(now, pc, addr);
        }
        // Victim cache (when configured): rescue recent conflict evictions
        // before consulting the prefetcher or the lower hierarchy.
        if let Some(victim) = &mut self.victim {
            for b in self.l1d.take_evicted() {
                victim.fill(b);
            }
            if victim.probe(addr) {
                self.l1d.install(addr);
                // The rescued block now lives in the L1; the probe must
                // have removed it from the victim cache (exclusivity).
                #[cfg(feature = "check")]
                victim.audit_exclusive(
                    now,
                    self.l1d.block_of(addr),
                    self.l1d.covers_block(self.l1d.block_of(addr)),
                );
                let ready = now + self.l1d.latency() + victim.latency();
                self.record(now, Some(pc), addr, ready, MemEventKind::VictimHit);
                return ready;
            }
        }
        let block = self.l1d.block_of(addr);
        match self.prefetcher.lookup(now, addr) {
            SbLookup::Hit { ready } => {
                if ready <= now {
                    // Resident in a stream buffer: move into the L1.
                    self.l1d.install(addr);
                    let ready = now + self.l1d.latency();
                    self.record(now, Some(pc), addr, ready, MemEventKind::SbHitReady);
                    ready
                } else {
                    // In flight: the tag moves to an MSHR and the data
                    // cache handles the fill when it arrives.
                    let _ = self.l1d.start_fill(block, ready);
                    self.record(now, Some(pc), addr, ready, MemEventKind::SbHitInFlight);
                    ready
                }
            }
            SbLookup::Miss => {
                if is_load {
                    self.prefetcher.allocate(now, pc, addr);
                }
                let completion = self.inner.lower.fetch_block(now, addr, self.inner.l1_block);
                let _ = self.l1d.start_fill(block, completion.ready);
                let kind = if is_load {
                    if completion.l2_hit {
                        MemEventKind::DemandL2
                    } else {
                        MemEventKind::DemandMemory
                    }
                } else {
                    MemEventKind::StoreMiss
                };
                self.record(now, Some(pc), addr, completion.ready, kind);
                completion.ready
            }
        }
    }
}

impl MemSystem for SimMemory {
    fn load(&mut self, now: Cycle, pc: Addr, addr: Addr) -> Cycle {
        let (start, _) = self.inner.dtlb.translate(now, addr, false);
        match self.l1d.lookup(start, addr) {
            L1Access::Hit { ready } => {
                self.record(start, Some(pc), addr, ready, MemEventKind::L1Hit);
                ready
            }
            L1Access::InFlight { ready } => {
                let ready = ready.max(start + self.l1d.latency());
                self.record(start, Some(pc), addr, ready, MemEventKind::L1InFlight);
                ready
            }
            L1Access::Miss => self.miss(start, pc, addr, true),
        }
    }

    fn store(&mut self, now: Cycle, pc: Addr, addr: Addr) {
        let (start, _) = self.inner.dtlb.translate(now, addr, false);
        match self.l1d.lookup(start, addr) {
            L1Access::Hit { .. } | L1Access::InFlight { .. } => {}
            // Write-allocate: the store fetches the block, but commit
            // never waits on it.
            L1Access::Miss => {
                self.miss(start, pc, addr, false);
            }
        }
    }

    fn ifetch(&mut self, now: Cycle, pc: Addr) -> Cycle {
        match self.l1i.lookup(now, pc) {
            L1Access::Hit { .. } => now,
            L1Access::InFlight { ready } => ready,
            L1Access::Miss => {
                let block = self.l1i.block_of(pc);
                let completion = self.inner.lower.fetch_block(now, pc, self.inner.l1_block);
                let _ = self.l1i.start_fill(block, completion.ready);
                self.record(now, None, pc, completion.ready, MemEventKind::IFetchMiss);
                completion.ready
            }
        }
    }

    fn tick(&mut self, now: Cycle) {
        if !self.pf_idle {
            self.prefetcher.tick(now, &mut self.inner);
            self.pf_idle = !self.force_tick && self.prefetcher.quiescent();
        }
        // Route staged prefetch-lifecycle events (filled / evicted-unused
        // / late) into the memory event log. The obs hub only stages them
        // when `enable_lifecycle_log` was called, so this stays free for
        // runs without both a log and an obs hub.
        if let (Some(obs), Some(log)) = (&self.obs, &self.log) {
            let events = obs.drain_life_events();
            if !events.is_empty() {
                let mut log = log.borrow_mut();
                for e in events {
                    let kind = match e.stage {
                        LifeStage::Filled => MemEventKind::PrefetchFilled,
                        LifeStage::EvictedUnused => MemEventKind::PrefetchEvictedUnused,
                        LifeStage::Late => MemEventKind::PrefetchLate,
                    };
                    let cycle = Cycle::new(e.cycle);
                    log.record(MemEvent {
                        cycle,
                        pc: None,
                        addr: Addr::new(e.block_base),
                        ready: cycle,
                        kind,
                    });
                }
            }
        }
    }

    fn sample(&mut self, now: Cycle, committed: u64) {
        let t = now.raw();
        if t < self.next_sample {
            return;
        }
        let snapshot = self.interval_snapshot(t, committed);
        if let Some(obs) = &self.obs {
            obs.interval_record(snapshot);
        }
        while self.next_sample <= t {
            self.next_sample += self.sample_every;
        }
    }

    fn fetched_load(&mut self, now: Cycle, pc: Addr) {
        self.pf_idle = false;
        self.prefetcher.observe_fetch(now, pc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrefetcherKind;

    fn memsys(kind: PrefetcherKind) -> SimMemory {
        SimMemory::new(&MachineConfig::baseline().with_prefetcher(kind))
    }

    #[test]
    fn l1i_and_l1d_mshrs_size_independently() {
        // Regression: the i-cache used to be built with `l1d_mshrs`, so
        // the two files could never be sized apart.
        let mut config = MachineConfig::baseline();
        config.mem.l1d_mshrs = 4;
        config.mem.l1i_mshrs = 2;
        let m = SimMemory::new(&config);
        assert_eq!(m.l1d().mshr_capacity(), 4);
        assert_eq!(m.l1i().mshr_capacity(), 2);
    }

    #[test]
    fn cold_load_pays_full_miss_then_hits() {
        let mut m = memsys(PrefetcherKind::None);
        let a = Addr::new(0x1000_0000);
        let r1 = m.load(Cycle::ZERO, Addr::new(0x400), a);
        // TLB miss (30) + L1 bus (4) + L2 (12) + mem bus (16) + DRAM (120).
        assert!(r1 > Cycle::new(150), "{r1:?}");
        let r2 = m.load(r1, Addr::new(0x400), a);
        assert_eq!(r2, r1 + 1, "warm load is an L1 hit");
        assert_eq!(m.l1d().stats().misses, 1);
        assert_eq!(m.l1d().stats().hits, 1);
    }

    #[test]
    fn inflight_load_merges() {
        let mut m = memsys(PrefetcherKind::None);
        let a = Addr::new(0x1000_0000);
        let r1 = m.load(Cycle::ZERO, Addr::new(0x400), a);
        let r2 = m.load(Cycle::new(40), Addr::new(0x404), Addr::new(0x1000_0008));
        assert_eq!(r2, r1, "same block in flight");
        assert_eq!(m.l1d().stats().misses, 2, "in-flight access counts as a miss");
    }

    #[test]
    fn strided_loads_get_prefetched() {
        let mut m = memsys(PrefetcherKind::PcStride);
        let pc = Addr::new(0x400);
        let mut now = Cycle::ZERO;
        let mut miss_latencies = Vec::new();
        // March through 64 blocks with one load PC; the stream buffer
        // should start covering misses after the filter opens.
        for i in 0..64u64 {
            let a = Addr::new(0x1000_0000 + 64 * i);
            let done = m.load(now, pc, a);
            miss_latencies.push(done.since(now));
            now = done + 20; // give the prefetcher bus slack
            for c in 0..20 {
                m.tick(done + c);
            }
        }
        let early: u64 = miss_latencies[..8].iter().sum();
        let late: u64 = miss_latencies[56..].iter().sum();
        assert!(
            late * 3 < early,
            "prefetching must slash late miss latency: early {early}, late {late}"
        );
        assert!(m.prefetcher().stats().used > 20);
    }

    #[test]
    fn stores_allocate_but_do_not_train() {
        let mut m = memsys(PrefetcherKind::PcStride);
        for i in 0..10u64 {
            m.store(Cycle::new(i * 200), Addr::new(0x500), Addr::new(0x2000_0000 + 64 * i));
        }
        // Stores never train or allocate the predictor-side tables.
        assert_eq!(m.prefetcher().stats().allocations, 0);
        assert_eq!(m.prefetcher().stats().alloc_rejected, 0);
    }

    #[test]
    fn ifetch_misses_use_the_shared_bus() {
        let mut m = memsys(PrefetcherKind::None);
        let r = m.ifetch(Cycle::ZERO, Addr::new(0x40_0000));
        assert!(r > Cycle::ZERO, "cold I-miss stalls fetch");
        let r2 = m.ifetch(r, Addr::new(0x40_0000));
        assert_eq!(r2, r, "warm I-fetch is free");
        assert!(m.lower().l1_l2_bus().transactions() >= 1);
    }

    #[test]
    fn tlb_prefetching_warms_translations() {
        let mut m = memsys(PrefetcherKind::PcStride);
        // Train a big stride that crosses pages.
        let pc = Addr::new(0x600);
        let mut now = Cycle::ZERO;
        for i in 0..16u64 {
            let a = Addr::new(0x4000_0000 + 8192 * i);
            let done = m.load(now, pc, a);
            for c in 0..40 {
                m.tick(done + c);
            }
            now = done + 40;
        }
        assert!(m.dtlb().stats().prefetch_misses > 0, "prefetches must walk the TLB");
    }
}
