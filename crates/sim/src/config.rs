//! Whole-machine configuration.

use psb_core::registry::{engine_index, paper_engine_count, ENGINES};
use psb_core::Prefetcher;
use psb_cpu::{CpuConfig, Disambiguation};
use psb_mem::{CacheConfig, MemConfig};

/// Which prefetcher sits beside the L1 data cache.
///
/// A `PrefetcherKind` is an index into the psb-core engine registry
/// ([`psb_core::ENGINES`]): every registered engine is a valid kind, and
/// the named constants below are provided for the configurations code
/// refers to directly. Labels, CLI names and construction all delegate
/// to the registry row, so adding an engine there makes it reachable
/// here with no further edits.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct PrefetcherKind(u16);

#[allow(non_upper_case_globals)] // constants stand in for former enum variants
impl PrefetcherKind {
    /// No prefetching (the paper's `Base`).
    pub const None: PrefetcherKind = PrefetcherKind::of("none");
    /// Jouppi-style sequential stream buffers (historical baseline).
    pub const Sequential: PrefetcherKind = PrefetcherKind::of("sequential");
    /// Smith's next-line prefetching (demand-based baseline, Section 3.2).
    pub const NextLine: PrefetcherKind = PrefetcherKind::of("next-line");
    /// Joseph & Grunwald's demand Markov prefetcher (Section 3.2).
    pub const DemandMarkov: PrefetcherKind = PrefetcherKind::of("demand-markov");
    /// Chen & Baer-style fetch-stream stride prefetching (Section 3.1).
    pub const FetchDirected: PrefetcherKind = PrefetcherKind::of("fetch-directed");
    /// Pangloss: compressed frequency-based Markov chain over deltas
    /// (arXiv:1906.00877).
    pub const Pangloss: PrefetcherKind = PrefetcherKind::of("pangloss");
    /// DSPatch: dual spatial bit-pattern prefetcher (arXiv:1910.03075).
    pub const Dspatch: PrefetcherKind = PrefetcherKind::of("dspatch");
    /// PC-stride stream buffers of Farkas et al. (the paper's
    /// "PC-stride" comparison point).
    pub const PcStride: PrefetcherKind = PrefetcherKind::of("pc-stride");
    /// PSB, two-miss filter, round-robin scheduling ("2Miss-RR").
    pub const Psb2MissRr: PrefetcherKind = PrefetcherKind::of("2miss-rr");
    /// PSB, two-miss filter, priority scheduling ("2Miss-Priority").
    pub const Psb2MissPriority: PrefetcherKind = PrefetcherKind::of("2miss-priority");
    /// PSB, confidence allocation, round-robin ("ConfAlloc-RR").
    pub const PsbConfRr: PrefetcherKind = PrefetcherKind::of("conf-rr");
    /// PSB, confidence allocation, priority scheduling
    /// ("ConfAlloc-Priority") — the paper's best configuration.
    pub const PsbConfPriority: PrefetcherKind = PrefetcherKind::of("conf-priority");

    /// Every registered kind, in registry (CLI/reporting) order.
    pub const ALL: [PrefetcherKind; ENGINES.len()] = {
        let mut all = [PrefetcherKind(0); ENGINES.len()];
        let mut i = 0;
        while i < all.len() {
            all[i] = PrefetcherKind(i as u16);
            i += 1;
        }
        all
    };

    /// The six configurations of Figures 5–9, in reporting order (the
    /// registry's `paper` rows, whose table order is the figures' order).
    pub const PAPER: [PrefetcherKind; paper_engine_count()] = {
        let mut paper = [PrefetcherKind(0); paper_engine_count()];
        let mut i = 0;
        let mut n = 0;
        while i < ENGINES.len() {
            if ENGINES[i].paper {
                paper[n] = PrefetcherKind(i as u16);
                n += 1;
            }
            i += 1;
        }
        paper
    };

    /// Resolves a registry CLI name into a kind at compile time.
    ///
    /// # Panics
    ///
    /// Compile error (const panic) when `name` is not in the registry.
    const fn of(name: &str) -> Self {
        PrefetcherKind(engine_index(name) as u16)
    }

    /// The registry row backing this kind.
    fn descriptor(self) -> &'static psb_core::EngineDescriptor {
        &ENGINES[self.0 as usize]
    }

    /// The label used in the paper's figures and report tables.
    pub fn label(self) -> &'static str {
        self.descriptor().label
    }

    /// The name the command-line front ends accept for this kind
    /// (the inverse of the `FromStr` impl).
    pub fn cli_name(self) -> &'static str {
        self.descriptor().name
    }

    /// Instantiates the prefetch engine in its registered baseline
    /// configuration.
    pub fn build(self) -> Box<dyn Prefetcher> {
        (self.descriptor().build)()
    }
}

impl std::fmt::Debug for PrefetcherKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PrefetcherKind({})", self.cli_name())
    }
}

/// Error returned when parsing an unknown prefetcher name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePrefetcherError(String);

impl std::fmt::Display for ParsePrefetcherError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown prefetcher `{}` (expected one of ", self.0)?;
        for (i, e) in ENGINES.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(e.name)?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParsePrefetcherError {}

impl std::str::FromStr for PrefetcherKind {
    type Err = ParsePrefetcherError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ENGINES
            .iter()
            .position(|e| e.name == s)
            .map(|i| PrefetcherKind(i as u16))
            .ok_or_else(|| ParsePrefetcherError(s.to_owned()))
    }
}

/// Full machine configuration: core, memory hierarchy, prefetcher.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Out-of-order core parameters.
    pub cpu: CpuConfig,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// Prefetcher selection.
    pub prefetcher: PrefetcherKind,
    /// Victim-cache entries beside the L1D (0 disables it, the paper's
    /// configuration; nonzero enables the `ablate_victim` comparison).
    pub victim_entries: usize,
}

impl MachineConfig {
    /// The paper's baseline machine (Section 5.1) with no prefetching.
    pub fn baseline() -> Self {
        MachineConfig {
            cpu: CpuConfig::baseline(),
            mem: MemConfig::baseline(),
            prefetcher: PrefetcherKind::None,
            victim_entries: 0,
        }
    }

    /// Adds an N-entry victim cache beside the L1D.
    pub fn with_victim_cache(mut self, entries: usize) -> Self {
        self.victim_entries = entries;
        self
    }

    /// Swaps the prefetcher.
    pub fn with_prefetcher(mut self, kind: PrefetcherKind) -> Self {
        self.prefetcher = kind;
        self
    }

    /// Swaps the L1 data-cache geometry (Figure 10 sweep).
    pub fn with_l1d(mut self, l1d: CacheConfig) -> Self {
        self.mem.l1d = l1d;
        self
    }

    /// Swaps the disambiguation policy (Figure 11).
    pub fn with_disambiguation(mut self, d: Disambiguation) -> Self {
        self.cpu.disambiguation = d;
        self
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_cover_figure_five() {
        let labels: Vec<&str> = PrefetcherKind::PAPER.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Base",
                "PC-stride",
                "2Miss-RR",
                "2Miss-Priority",
                "ConfAlloc-RR",
                "ConfAlloc-Priority"
            ]
        );
    }

    #[test]
    fn all_covers_the_registry_in_order() {
        assert_eq!(PrefetcherKind::ALL.len(), ENGINES.len());
        for (k, e) in PrefetcherKind::ALL.iter().zip(ENGINES) {
            assert_eq!(k.cli_name(), e.name);
            assert_eq!(k.label(), e.label);
        }
        assert!(
            PrefetcherKind::ALL.len() >= 12,
            "the modern-competitor zoo keeps at least 12 engines"
        );
    }

    #[test]
    fn paper_grid_is_a_registry_subset() {
        for k in PrefetcherKind::PAPER {
            assert!(
                ENGINES[k.0 as usize].paper,
                "{} must be flagged as a paper engine",
                k.cli_name()
            );
            assert!(PrefetcherKind::ALL.contains(&k));
        }
    }

    #[test]
    fn labels_and_cli_names_are_unique() {
        for (i, a) in PrefetcherKind::ALL.iter().enumerate() {
            for b in &PrefetcherKind::ALL[i + 1..] {
                assert_ne!(a.cli_name(), b.cli_name());
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn build_produces_matching_engines() {
        assert_eq!(PrefetcherKind::None.build().name(), "none");
        assert_eq!(PrefetcherKind::PcStride.build().name(), "pc-stride");
        assert_eq!(PrefetcherKind::Psb2MissRr.build().name(), "psb-2miss-rr");
        assert_eq!(PrefetcherKind::PsbConfPriority.build().name(), "psb-confalloc-priority");
        assert_eq!(PrefetcherKind::Sequential.build().name(), "sequential");
        assert_eq!(PrefetcherKind::Pangloss.build().name(), "pangloss");
        assert_eq!(PrefetcherKind::Dspatch.build().name(), "dspatch");
    }

    #[test]
    fn cli_names_round_trip() {
        for k in PrefetcherKind::ALL {
            assert_eq!(k.cli_name().parse::<PrefetcherKind>(), Ok(k));
        }
        let err = "bogus".parse::<PrefetcherKind>().unwrap_err();
        // The error enumerates the live registry, not a stale copy.
        for e in ENGINES {
            assert!(err.to_string().contains(e.name), "{err} should list {}", e.name);
        }
    }

    #[test]
    fn debug_prints_the_cli_name() {
        assert_eq!(format!("{:?}", PrefetcherKind::Pangloss), "PrefetcherKind(pangloss)");
    }

    #[test]
    fn builders_compose() {
        let m = MachineConfig::baseline()
            .with_prefetcher(PrefetcherKind::PsbConfPriority)
            .with_l1d(CacheConfig::l1d_16k_4way())
            .with_disambiguation(Disambiguation::WaitForStores);
        assert_eq!(m.prefetcher, PrefetcherKind::PsbConfPriority);
        assert_eq!(m.mem.l1d.size, 16 * 1024);
        assert_eq!(m.cpu.disambiguation, Disambiguation::WaitForStores);
    }
}
