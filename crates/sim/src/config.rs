//! Whole-machine configuration.

use psb_core::{
    DemandMarkovPrefetcher, FetchDirectedPrefetcher, NextLinePrefetcher, NoPrefetch, Prefetcher,
    PsbPrefetcher, SbConfig, SequentialStreamBuffers, StrideStreamBuffers,
};
use psb_cpu::{CpuConfig, Disambiguation};
use psb_mem::{CacheConfig, MemConfig};

/// Which prefetcher sits beside the L1 data cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// No prefetching (the paper's `Base`).
    None,
    /// Jouppi-style sequential stream buffers (historical baseline).
    Sequential,
    /// Smith's next-line prefetching (demand-based baseline, Section 3.2).
    NextLine,
    /// Joseph & Grunwald's demand Markov prefetcher (Section 3.2).
    DemandMarkov,
    /// Chen & Baer-style fetch-stream stride prefetching (Section 3.1).
    FetchDirected,
    /// PC-stride stream buffers of Farkas et al. (the paper's
    /// "PC-stride" comparison point).
    PcStride,
    /// PSB, two-miss filter, round-robin scheduling ("2Miss-RR").
    Psb2MissRr,
    /// PSB, two-miss filter, priority scheduling ("2Miss-Priority").
    Psb2MissPriority,
    /// PSB, confidence allocation, round-robin ("ConfAlloc-RR").
    PsbConfRr,
    /// PSB, confidence allocation, priority scheduling
    /// ("ConfAlloc-Priority") — the paper's best configuration.
    PsbConfPriority,
}

impl PrefetcherKind {
    /// The six configurations of Figures 5–9, in reporting order.
    pub const PAPER: [PrefetcherKind; 6] = [
        PrefetcherKind::None,
        PrefetcherKind::PcStride,
        PrefetcherKind::Psb2MissRr,
        PrefetcherKind::Psb2MissPriority,
        PrefetcherKind::PsbConfRr,
        PrefetcherKind::PsbConfPriority,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PrefetcherKind::None => "Base",
            PrefetcherKind::Sequential => "Sequential",
            PrefetcherKind::NextLine => "Next-Line",
            PrefetcherKind::DemandMarkov => "Demand-Markov",
            PrefetcherKind::FetchDirected => "Fetch-Directed",
            PrefetcherKind::PcStride => "PC-stride",
            PrefetcherKind::Psb2MissRr => "2Miss-RR",
            PrefetcherKind::Psb2MissPriority => "2Miss-Priority",
            PrefetcherKind::PsbConfRr => "ConfAlloc-RR",
            PrefetcherKind::PsbConfPriority => "ConfAlloc-Priority",
        }
    }

    /// The name the command-line front ends accept for this kind
    /// (the inverse of the `FromStr` impl).
    pub fn cli_name(self) -> &'static str {
        match self {
            PrefetcherKind::None => "none",
            PrefetcherKind::Sequential => "sequential",
            PrefetcherKind::NextLine => "next-line",
            PrefetcherKind::DemandMarkov => "demand-markov",
            PrefetcherKind::FetchDirected => "fetch-directed",
            PrefetcherKind::PcStride => "pc-stride",
            PrefetcherKind::Psb2MissRr => "2miss-rr",
            PrefetcherKind::Psb2MissPriority => "2miss-priority",
            PrefetcherKind::PsbConfRr => "conf-rr",
            PrefetcherKind::PsbConfPriority => "conf-priority",
        }
    }

    /// Every kind, in CLI/reporting order (for help text and `all`
    /// grid specs).
    pub const ALL: [PrefetcherKind; 10] = [
        PrefetcherKind::None,
        PrefetcherKind::Sequential,
        PrefetcherKind::NextLine,
        PrefetcherKind::DemandMarkov,
        PrefetcherKind::FetchDirected,
        PrefetcherKind::PcStride,
        PrefetcherKind::Psb2MissRr,
        PrefetcherKind::Psb2MissPriority,
        PrefetcherKind::PsbConfRr,
        PrefetcherKind::PsbConfPriority,
    ];

    /// Instantiates the prefetch engine.
    pub fn build(self) -> Box<dyn Prefetcher> {
        match self {
            PrefetcherKind::None => Box::new(NoPrefetch::new()),
            PrefetcherKind::Sequential => Box::new(SequentialStreamBuffers::sequential()),
            PrefetcherKind::NextLine => Box::new(NextLinePrefetcher::new(32, 16)),
            PrefetcherKind::DemandMarkov => Box::new(DemandMarkovPrefetcher::baseline()),
            PrefetcherKind::FetchDirected => Box::new(FetchDirectedPrefetcher::baseline()),
            PrefetcherKind::PcStride => Box::new(StrideStreamBuffers::pc_stride()),
            PrefetcherKind::Psb2MissRr => Box::new(PsbPrefetcher::psb(SbConfig::psb_two_miss_rr())),
            PrefetcherKind::Psb2MissPriority => {
                Box::new(PsbPrefetcher::psb(SbConfig::psb_two_miss_priority()))
            }
            PrefetcherKind::PsbConfRr => Box::new(PsbPrefetcher::psb(SbConfig::psb_conf_rr())),
            PrefetcherKind::PsbConfPriority => {
                Box::new(PsbPrefetcher::psb(SbConfig::psb_conf_priority()))
            }
        }
    }
}

/// Error returned when parsing an unknown prefetcher name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePrefetcherError(String);

impl std::fmt::Display for ParsePrefetcherError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown prefetcher `{}` (expected one of ", self.0)?;
        for (i, k) in PrefetcherKind::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(k.cli_name())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for ParsePrefetcherError {}

impl std::str::FromStr for PrefetcherKind {
    type Err = ParsePrefetcherError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PrefetcherKind::ALL
            .into_iter()
            .find(|k| k.cli_name() == s)
            .ok_or_else(|| ParsePrefetcherError(s.to_owned()))
    }
}

/// Full machine configuration: core, memory hierarchy, prefetcher.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct MachineConfig {
    /// Out-of-order core parameters.
    pub cpu: CpuConfig,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// Prefetcher selection.
    pub prefetcher: PrefetcherKind,
    /// Victim-cache entries beside the L1D (0 disables it, the paper's
    /// configuration; nonzero enables the `ablate_victim` comparison).
    pub victim_entries: usize,
}

impl MachineConfig {
    /// The paper's baseline machine (Section 5.1) with no prefetching.
    pub fn baseline() -> Self {
        MachineConfig {
            cpu: CpuConfig::baseline(),
            mem: MemConfig::baseline(),
            prefetcher: PrefetcherKind::None,
            victim_entries: 0,
        }
    }

    /// Adds an N-entry victim cache beside the L1D.
    pub fn with_victim_cache(mut self, entries: usize) -> Self {
        self.victim_entries = entries;
        self
    }

    /// Swaps the prefetcher.
    pub fn with_prefetcher(mut self, kind: PrefetcherKind) -> Self {
        self.prefetcher = kind;
        self
    }

    /// Swaps the L1 data-cache geometry (Figure 10 sweep).
    pub fn with_l1d(mut self, l1d: CacheConfig) -> Self {
        self.mem.l1d = l1d;
        self
    }

    /// Swaps the disambiguation policy (Figure 11).
    pub fn with_disambiguation(mut self, d: Disambiguation) -> Self {
        self.cpu.disambiguation = d;
        self
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_cover_figure_five() {
        let labels: Vec<&str> = PrefetcherKind::PAPER.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Base",
                "PC-stride",
                "2Miss-RR",
                "2Miss-Priority",
                "ConfAlloc-RR",
                "ConfAlloc-Priority"
            ]
        );
    }

    #[test]
    fn build_produces_matching_engines() {
        assert_eq!(PrefetcherKind::None.build().name(), "none");
        assert_eq!(PrefetcherKind::PcStride.build().name(), "pc-stride");
        assert_eq!(PrefetcherKind::Psb2MissRr.build().name(), "psb-2miss-rr");
        assert_eq!(PrefetcherKind::PsbConfPriority.build().name(), "psb-confalloc-priority");
        assert_eq!(PrefetcherKind::Sequential.build().name(), "sequential");
    }

    #[test]
    fn cli_names_round_trip() {
        for k in PrefetcherKind::ALL {
            assert_eq!(k.cli_name().parse::<PrefetcherKind>(), Ok(k));
        }
        let err = "bogus".parse::<PrefetcherKind>().unwrap_err();
        assert!(err.to_string().contains("conf-priority"), "{err}");
    }

    #[test]
    fn builders_compose() {
        let m = MachineConfig::baseline()
            .with_prefetcher(PrefetcherKind::PsbConfPriority)
            .with_l1d(CacheConfig::l1d_16k_4way())
            .with_disambiguation(Disambiguation::WaitForStores);
        assert_eq!(m.prefetcher, PrefetcherKind::PsbConfPriority);
        assert_eq!(m.mem.l1d.size, 16 * 1024);
        assert_eq!(m.cpu.disambiguation, Disambiguation::WaitForStores);
    }
}
