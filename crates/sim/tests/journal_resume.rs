//! Kill-and-resume byte-identity: a sweep interrupted mid-run and
//! resumed from its journal must emit a final `psb-sweep-v1` artifact
//! byte-identical to an uninterrupted run — at every worker count.
//!
//! This extends the `--threads 1/2/4` byte-identity regression
//! (`sweep_determinism.rs`) across process death: the journal's stored
//! entry texts are spliced verbatim into the final document, so not
//! even float formatting can drift.

use psb_sim::{
    run_journaled, run_sweep, sweep_report, sweep_report_from_texts, MachineConfig, PrefetcherKind,
    SweepCell,
};
use psb_workloads::Benchmark;
use std::path::PathBuf;

fn grid() -> Vec<SweepCell> {
    [PrefetcherKind::None, PrefetcherKind::PcStride]
        .into_iter()
        .flat_map(|k| {
            [Benchmark::Turb3d, Benchmark::DeltaBlue].into_iter().map(move |b| {
                SweepCell::new(b, MachineConfig::baseline().with_prefetcher(k), 1)
                    .with_max_commits(10_000)
            })
        })
        .collect()
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("psb-journal-resume");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{}-{name}", std::process::id()))
}

/// Simulates a `kill -9` after `keep` cells: truncates the journal to
/// header + `keep` records and appends a torn half-record, exactly the
/// state a crash mid-append leaves behind.
fn kill_after(path: &PathBuf, keep: usize) {
    let full = std::fs::read_to_string(path).expect("read journal");
    let prefix: Vec<&str> = full.lines().take(1 + keep).collect();
    std::fs::write(path, format!("{}\n{{\"index\":{keep},\"ce", prefix.join("\n")))
        .expect("write torn journal");
}

#[test]
fn kill_and_resume_is_byte_identical_across_thread_counts() {
    let cells = grid();

    // The ground truth: an uninterrupted in-memory sweep, tree-rendered.
    let reference = sweep_report(&cells, &run_sweep(&cells, 1)).to_string();

    for threads in [1usize, 2, 4] {
        // Uninterrupted journaled run.
        let straight_path = tmp(&format!("straight-{threads}.jsonl"));
        let straight = run_journaled(&cells, threads, None, &straight_path, false, None, |_| {})
            .expect("uninterrupted journaled run");
        assert_eq!(
            sweep_report_from_texts(&straight),
            reference,
            "threads={threads}: journaled text splice must match the tree render"
        );

        // Killed after 2 of 4 cells, then resumed.
        let killed_path = tmp(&format!("killed-{threads}.jsonl"));
        run_journaled(&cells, threads, None, &killed_path, false, None, |_| {})
            .expect("run before the kill");
        kill_after(&killed_path, 2);

        let mut fresh = Vec::new();
        let mut replayed = Vec::new();
        let resumed = run_journaled(&cells, threads, None, &killed_path, true, None, |e| {
            if e.replayed {
                replayed.push(e.index);
            } else {
                fresh.push(e.index);
            }
        })
        .expect("resume after the kill");

        // Records land in completion order, so which two cells survive
        // the kill depends on the worker interleaving — but exactly two
        // replay and exactly the complement re-runs.
        assert_eq!(replayed.len(), 2, "threads={threads}: two cells replay");
        assert_eq!(fresh.len(), 2, "threads={threads}: two cells re-run");
        let mut covered = replayed.clone();
        covered.extend(&fresh);
        covered.sort_unstable();
        assert_eq!(covered, vec![0, 1, 2, 3], "threads={threads}: replay+fresh cover the grid");
        assert_eq!(
            sweep_report_from_texts(&resumed),
            reference,
            "threads={threads}: kill+resume must be byte-identical to uninterrupted"
        );

        std::fs::remove_file(&straight_path).ok();
        std::fs::remove_file(&killed_path).ok();
    }
}

#[test]
fn an_interrupted_resume_can_itself_be_resumed() {
    let cells = grid();
    let reference = sweep_report(&cells, &run_sweep(&cells, 1)).to_string();
    let path = tmp("double-kill.jsonl");

    run_journaled(&cells, 2, None, &path, false, None, |_| {}).expect("initial run");
    kill_after(&path, 1);
    run_journaled(&cells, 2, None, &path, true, None, |_| {}).expect("first resume");
    kill_after(&path, 3);
    let resumed = run_journaled(&cells, 2, None, &path, true, None, |_| {}).expect("second resume");
    assert_eq!(sweep_report_from_texts(&resumed), reference);
    std::fs::remove_file(&path).ok();
}
