//! End-to-end invariant-auditor runs: whole-program simulations of two
//! paper benchmarks must complete with every registered checker silent,
//! and the hooks must demonstrably observe state (a silent run with zero
//! audits would prove nothing).
//!
//! The injection tests proving each checker *fires* live in
//! `psb-check`'s own unit tests; this suite proves the production
//! simulator satisfies the invariants those checkers encode.

#![cfg(feature = "check")]

use psb_sim::{MachineConfig, MemLog, PrefetcherKind, Simulation};
use psb_workloads::Benchmark;

fn audited_clean(bench: Benchmark, config: MachineConfig) {
    let log = MemLog::shared(4096);
    let sim = Simulation::new(config, bench.trace(1), u64::MAX).with_event_log(log);
    let (stats, violations) = sim.run_audited();
    assert!(stats.cpu.committed > 0, "{bench:?} must commit instructions");
    assert!(
        violations.is_empty(),
        "{bench:?} clean run raised {} violation(s); first: {}",
        violations.len(),
        violations[0]
    );
    // Hook liveness: a run that never published a snapshot would pass
    // vacuously. Note run_audited() resets the sink, so this counts only
    // this run's observations.
    assert!(psb_check::audits() > 0, "{bench:?} run published no snapshots to the auditor");
}

#[test]
fn health_run_is_invariant_clean() {
    audited_clean(
        Benchmark::Health,
        MachineConfig::baseline().with_prefetcher(PrefetcherKind::PsbConfPriority),
    );
}

#[test]
fn turb3d_run_is_invariant_clean() {
    audited_clean(
        Benchmark::Turb3d,
        MachineConfig::baseline().with_prefetcher(PrefetcherKind::PsbConfPriority),
    );
}

#[test]
fn victim_configured_run_is_invariant_clean() {
    // Exercises the victim/L1 exclusivity hook, which only fires when a
    // victim cache is configured and rescues a conflict miss.
    audited_clean(
        Benchmark::Turb3d,
        MachineConfig::baseline().with_prefetcher(PrefetcherKind::PcStride).with_victim_cache(16),
    );
}
