//! Regression test for the sweep determinism contract: the merged
//! `psb-sweep-v1` artifact must be byte-identical for every worker
//! count. Worker scheduling may only change wall-clock, never results —
//! outcomes land in submission-order slots and host timings are kept
//! out of the artifact by construction.

use psb_sim::{paper_cells, run_sweep, sweep_report, SweepCell};
use psb_workloads::Benchmark;

#[test]
fn sweep_artifact_is_byte_identical_across_thread_counts() {
    // A small but non-trivial grid: two benchmarks across the six paper
    // configurations, commit-capped for debug-build speed. Uneven cell
    // costs make completion order differ from submission order at >1
    // workers, which is exactly what the artifact must not reflect.
    let cells: Vec<SweepCell> = paper_cells(&[Benchmark::Turb3d, Benchmark::DeltaBlue], 1)
        .into_iter()
        .map(|c| c.with_max_commits(15_000))
        .collect();

    let reference = sweep_report(&cells, &run_sweep(&cells, 1)).to_string();
    assert!(reference.contains("psb-sweep-v1"), "the artifact must carry its schema marker");

    for threads in [2, 4] {
        let artifact = sweep_report(&cells, &run_sweep(&cells, threads)).to_string();
        assert_eq!(
            artifact, reference,
            "psb-sweep-v1 artifact differs between --threads 1 and --threads {threads}"
        );
    }
}
