//! Property-based tests of the composed memory system and full machine.

use proptest::prelude::*;
use psb_common::{Addr, Cycle};
use psb_cpu::MemSystem;
use psb_sim::{MachineConfig, PrefetcherKind, SimMemory};

/// An arbitrary mixed access pattern driven directly against SimMemory.
#[derive(Clone, Debug)]
enum Access {
    Load { pc: u8, slot: u16 },
    Store { pc: u8, slot: u16 },
    Ifetch { slot: u8 },
    Tick,
}

fn access() -> impl Strategy<Value = Access> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(pc, slot)| Access::Load { pc, slot }),
        (any::<u8>(), any::<u16>()).prop_map(|(pc, slot)| Access::Store { pc, slot }),
        any::<u8>().prop_map(|slot| Access::Ifetch { slot }),
        Just(Access::Tick),
    ]
}

fn kinds() -> impl Strategy<Value = PrefetcherKind> {
    prop_oneof![
        Just(PrefetcherKind::None),
        Just(PrefetcherKind::Sequential),
        Just(PrefetcherKind::NextLine),
        Just(PrefetcherKind::DemandMarkov),
        Just(PrefetcherKind::PcStride),
        Just(PrefetcherKind::PsbConfPriority),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The memory system never travels back in time, never loses
    /// accounting, and keeps prefetch counters consistent — under every
    /// prefetcher and arbitrary access interleavings.
    #[test]
    fn memory_system_is_causal(
        kind in kinds(),
        ops in proptest::collection::vec(access(), 1..200),
    ) {
        let mut mem = SimMemory::new(&MachineConfig::baseline().with_prefetcher(kind));
        let mut now = Cycle::ZERO;
        let mut accesses = 0u64;
        for op in ops {
            now += 3;
            match op {
                Access::Load { pc, slot } => {
                    let ready = mem.load(now, Addr::new(0x400 + pc as u64 * 4),
                                         Addr::new(0x1000_0000 + slot as u64 * 32));
                    prop_assert!(ready > now, "a load takes at least one cycle");
                    prop_assert!(ready.since(now) < 10_000, "latency must be bounded");
                    accesses += 1;
                }
                Access::Store { pc, slot } => {
                    mem.store(now, Addr::new(0x400 + pc as u64 * 4),
                              Addr::new(0x1000_0000 + slot as u64 * 32));
                    accesses += 1;
                }
                Access::Ifetch { slot } => {
                    let ready = mem.ifetch(now, Addr::new(0x40_0000 + slot as u64 * 32));
                    prop_assert!(ready >= now);
                }
                Access::Tick => mem.tick(now),
            }
            let p = mem.prefetcher().stats();
            prop_assert!(p.used <= p.issued);
            prop_assert!(p.hits <= p.lookups);
        }
        prop_assert_eq!(mem.l1d().stats().accesses(), accesses);
    }

    /// A victim cache never makes latency worse than the same machine
    /// without one, access by access... (not true in general for IPC on
    /// the OoO core, but the per-access L1-path invariant holds: a
    /// victim hit is strictly cheaper than a lower-memory trip).
    #[test]
    fn victim_hits_are_cheap(slots in proptest::collection::vec(0u16..4096, 1..128)) {
        let mut mem = SimMemory::new(&MachineConfig::baseline().with_victim_cache(16));
        let mut now = Cycle::ZERO;
        for slot in slots {
            now += 200;
            let ready = mem.load(now, Addr::new(0x400), Addr::new(0x1000_0000 + slot as u64 * 32));
            // A victim-cache hit costs l1 latency + victim latency (2);
            // everything else goes below. Nothing in between exists.
            let lat = ready.since(now);
            prop_assert!(lat == 1 || lat == 2 || lat >= 12, "odd latency {}", lat);
        }
    }

    /// Stats CSV stays parseable for arbitrary small runs.
    #[test]
    fn csv_always_matches_header(seed in any::<u64>()) {
        use psb_sim::{SimStats, Simulation};
        use psb_workloads::TraceBuilder;
        let mut b = TraceBuilder::new(Addr::new(0x40_0000));
        let n = 16 + (seed % 64);
        for i in 0..n {
            b.load(1, Some(1), Addr::new(0x1000_0000 + (seed.wrapping_mul(i) % 512) * 64));
            b.alu(2, Some(1), None);
        }
        let stats = Simulation::new(MachineConfig::baseline(), b.finish(), u64::MAX).run();
        prop_assert_eq!(
            stats.csv_row().split(',').count(),
            SimStats::CSV_HEADER.split(',').count()
        );
    }
}
