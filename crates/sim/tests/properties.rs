//! Property-style tests of the composed memory system and full
//! machine, over deterministic pseudo-random access patterns (no
//! external test framework, runs offline).

use psb_common::{Addr, Cycle, SplitMix64};
use psb_cpu::MemSystem;
use psb_sim::{MachineConfig, PrefetcherKind, SimMemory};

const KINDS: [PrefetcherKind; 6] = [
    PrefetcherKind::None,
    PrefetcherKind::Sequential,
    PrefetcherKind::NextLine,
    PrefetcherKind::DemandMarkov,
    PrefetcherKind::PcStride,
    PrefetcherKind::PsbConfPriority,
];

/// The memory system never travels back in time, never loses
/// accounting, and keeps prefetch counters consistent — under every
/// prefetcher and arbitrary access interleavings.
#[test]
fn memory_system_is_causal() {
    let mut meta = SplitMix64::new(0xCA05A1);
    for case in 0..32 {
        let kind = KINDS[meta.below(KINDS.len() as u64) as usize];
        let mut mem = SimMemory::new(&MachineConfig::baseline().with_prefetcher(kind));
        let mut now = Cycle::ZERO;
        let mut accesses = 0u64;
        let ops = 1 + meta.below(199);
        for _ in 0..ops {
            now += 3;
            let pc = meta.below(256);
            let slot = meta.below(1 << 16);
            match meta.below(4) {
                0 => {
                    let ready = mem.load(
                        now,
                        Addr::new(0x400 + pc * 4),
                        Addr::new(0x1000_0000 + slot * 32),
                    );
                    assert!(ready > now, "case {case}: a load takes at least one cycle");
                    assert!(ready.since(now) < 10_000, "case {case}: latency must be bounded");
                    accesses += 1;
                }
                1 => {
                    mem.store(now, Addr::new(0x400 + pc * 4), Addr::new(0x1000_0000 + slot * 32));
                    accesses += 1;
                }
                2 => {
                    let ready = mem.ifetch(now, Addr::new(0x40_0000 + (slot % 256) * 32));
                    assert!(ready >= now, "case {case}");
                }
                _ => mem.tick(now),
            }
            let p = mem.prefetcher().stats();
            assert!(p.used <= p.issued, "case {case} ({kind:?})");
            assert!(p.hits <= p.lookups, "case {case} ({kind:?})");
        }
        assert_eq!(mem.l1d().stats().accesses(), accesses, "case {case} ({kind:?})");
    }
}

/// A victim hit is strictly cheaper than a lower-memory trip: the
/// per-access latency is L1 (1), L1+victim (2), or a full trip below
/// (>= 12). Nothing in between exists.
#[test]
fn victim_hits_are_cheap() {
    let mut meta = SplitMix64::new(0x71C71);
    for case in 0..32 {
        let mut mem = SimMemory::new(&MachineConfig::baseline().with_victim_cache(16));
        let mut now = Cycle::ZERO;
        let n = 1 + meta.below(127);
        for _ in 0..n {
            now += 200;
            let slot = meta.below(4096);
            let ready = mem.load(now, Addr::new(0x400), Addr::new(0x1000_0000 + slot * 32));
            let lat = ready.since(now);
            assert!(lat == 1 || lat == 2 || lat >= 12, "case {case}: odd latency {lat}");
        }
    }
}

/// Stats CSV stays parseable for arbitrary small runs.
#[test]
fn csv_always_matches_header() {
    use psb_sim::{SimStats, Simulation};
    use psb_workloads::TraceBuilder;
    let mut meta = SplitMix64::new(0xC57);
    for case in 0..8 {
        let seed = meta.next_u64();
        let mut b = TraceBuilder::new(Addr::new(0x40_0000));
        let n = 16 + (seed % 64);
        for i in 0..n {
            b.load(1, Some(1), Addr::new(0x1000_0000 + (seed.wrapping_mul(i) % 512) * 64));
            b.alu(2, Some(1), None);
        }
        let stats = Simulation::new(MachineConfig::baseline(), b.finish(), u64::MAX).run();
        assert_eq!(
            stats.csv_row().split(',').count(),
            SimStats::CSV_HEADER.split(',').count(),
            "case {case}"
        );
    }
}
