//! Differential test for the quiescence skip-ahead fast path.
//!
//! [`SimMemory::tick`] skips the per-cycle prefetcher dispatch once the
//! engine reports [`psb_core::Prefetcher::quiescent`], resuming on the
//! next lookup, allocation or fetch. The claim is cycle-exactness: the
//! skip must be an *externally unobservable* optimization. This test
//! runs every benchmark twice — once normally, once under the supported
//! forced-tick switch ([`Simulation::with_forced_ticks`], equivalently
//! the `PSB_FORCE_TICK` environment variable used by the mutation kill
//! suite) — and requires the full `psb-run-v1` reports to be
//! byte-identical.

use psb_sim::{json_report, MachineConfig, PrefetcherKind, Simulation};
use psb_workloads::Benchmark;
use std::sync::Mutex;

/// Serializes tests that read or write `PSB_FORCE_TICK`: the variable is
/// process-global and `SimMemory` samples it at construction, so a fast
/// (unforced) run must never be built while another test holds the
/// switch on.
static ENV_LOCK: Mutex<()> = Mutex::new(());

const BENCHMARKS: [Benchmark; 6] = [
    Benchmark::Health,
    Benchmark::Burg,
    Benchmark::DeltaBlue,
    Benchmark::Gs,
    Benchmark::Sis,
    Benchmark::Turb3d,
];

#[test]
fn skip_ahead_is_cycle_exact_on_every_benchmark() {
    let _env = ENV_LOCK.lock().unwrap();
    let kind = PrefetcherKind::PsbConfPriority;
    let window = 40_000u64;
    for bench in BENCHMARKS {
        let trace = bench.trace(1);
        let cfg = MachineConfig::baseline().with_prefetcher(kind);
        let fast = Simulation::new(cfg, trace.clone(), window).run();
        let forced = Simulation::new(cfg, trace, window).with_forced_ticks().run();
        let fast_json = json_report(bench.name(), kind.cli_name(), &fast, None).to_string();
        let forced_json = json_report(bench.name(), kind.cli_name(), &forced, None).to_string();
        assert_eq!(
            fast_json, forced_json,
            "{bench:?}: skipping quiescent ticks changed the run report"
        );
    }
}

#[test]
fn skip_ahead_is_cycle_exact_across_engines() {
    // The other engine families exercise different quiescence shapes:
    // NoPrefetch is always quiescent, PC-stride goes idle in bursts.
    let _env = ENV_LOCK.lock().unwrap();
    let window = 40_000u64;
    for kind in [PrefetcherKind::None, PrefetcherKind::PcStride, PrefetcherKind::Psb2MissRr] {
        let trace = Benchmark::DeltaBlue.trace(1);
        let cfg = MachineConfig::baseline().with_prefetcher(kind);
        let fast = Simulation::new(cfg, trace.clone(), window).run();
        let forced = Simulation::new(cfg, trace, window).with_forced_ticks().run();
        let fast_json = json_report("deltablue", kind.cli_name(), &fast, None).to_string();
        let forced_json = json_report("deltablue", kind.cli_name(), &forced, None).to_string();
        assert_eq!(fast_json, forced_json, "{kind:?}: skip-ahead changed the run report");
    }
}

#[test]
fn force_tick_env_switch_is_cycle_exact() {
    // The kill suite reaches the switch through the environment (it
    // cannot edit call sites), so prove that path too: a run built with
    // PSB_FORCE_TICK=1 in the environment matches the unforced report.
    let _env = ENV_LOCK.lock().unwrap();
    let kind = PrefetcherKind::PsbConfPriority;
    let trace = Benchmark::Health.trace(1);
    let cfg = MachineConfig::baseline().with_prefetcher(kind);
    let fast = Simulation::new(cfg, trace.clone(), 40_000).run();
    std::env::set_var("PSB_FORCE_TICK", "1");
    let forced = Simulation::new(cfg, trace, 40_000).run();
    std::env::remove_var("PSB_FORCE_TICK");
    let fast_json = json_report("health", kind.cli_name(), &fast, None).to_string();
    let forced_json = json_report("health", kind.cli_name(), &forced, None).to_string();
    assert_eq!(fast_json, forced_json, "PSB_FORCE_TICK changed the run report");
}
