//! Differential test for the quiescence skip-ahead fast path.
//!
//! [`SimMemory::tick`] skips the per-cycle prefetcher dispatch once the
//! engine reports [`psb_core::Prefetcher::quiescent`], resuming on the
//! next lookup, allocation or fetch. The claim is cycle-exactness: the
//! skip must be an *externally unobservable* optimization. This test
//! runs every benchmark twice — once normally, once with the engine
//! wrapped so `quiescent()` always answers "no" (forcing a real tick
//! every cycle) — and requires the full `psb-run-v1` reports to be
//! byte-identical.

use psb_common::{Addr, Cycle};
use psb_core::{PrefetchSink, PrefetchStats, Prefetcher, SbLookup};
use psb_sim::{json_report, MachineConfig, PrefetcherKind, Simulation};
use psb_workloads::Benchmark;

/// Forwards everything to the wrapped engine but never reports
/// quiescence, so the simulator ticks it every single cycle.
struct ForceTick(Box<dyn Prefetcher>);

impl Prefetcher for ForceTick {
    fn lookup(&mut self, now: Cycle, addr: Addr) -> SbLookup {
        self.0.lookup(now, addr)
    }

    fn train(&mut self, now: Cycle, pc: Addr, addr: Addr) {
        self.0.train(now, pc, addr);
    }

    fn allocate(&mut self, now: Cycle, pc: Addr, addr: Addr) {
        self.0.allocate(now, pc, addr);
    }

    fn tick(&mut self, now: Cycle, sink: &mut dyn PrefetchSink) {
        self.0.tick(now, sink);
    }

    fn quiescent(&self) -> bool {
        false
    }

    fn observe_fetch(&mut self, now: Cycle, pc: Addr) {
        self.0.observe_fetch(now, pc);
    }

    fn attach_obs(&mut self, obs: &psb_core::SharedStreamObs) {
        self.0.attach_obs(obs);
    }

    fn stats(&self) -> PrefetchStats {
        self.0.stats()
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

const BENCHMARKS: [Benchmark; 6] = [
    Benchmark::Health,
    Benchmark::Burg,
    Benchmark::DeltaBlue,
    Benchmark::Gs,
    Benchmark::Sis,
    Benchmark::Turb3d,
];

#[test]
fn skip_ahead_is_cycle_exact_on_every_benchmark() {
    let kind = PrefetcherKind::PsbConfPriority;
    let window = 40_000u64;
    for bench in BENCHMARKS {
        let trace = bench.trace(1);
        let cfg = MachineConfig::baseline().with_prefetcher(kind);
        let fast = Simulation::new(cfg, trace.clone(), window).run();
        let forced = Simulation::new(cfg, trace, window)
            .with_engine(Box::new(ForceTick(kind.build())))
            .run();
        let fast_json = json_report(bench.name(), kind.cli_name(), &fast, None).to_string();
        let forced_json = json_report(bench.name(), kind.cli_name(), &forced, None).to_string();
        assert_eq!(
            fast_json, forced_json,
            "{bench:?}: skipping quiescent ticks changed the run report"
        );
    }
}

#[test]
fn skip_ahead_is_cycle_exact_across_engines() {
    // The other engine families exercise different quiescence shapes:
    // NoPrefetch is always quiescent, PC-stride goes idle in bursts.
    let window = 40_000u64;
    for kind in [PrefetcherKind::None, PrefetcherKind::PcStride, PrefetcherKind::Psb2MissRr] {
        let trace = Benchmark::DeltaBlue.trace(1);
        let cfg = MachineConfig::baseline().with_prefetcher(kind);
        let fast = Simulation::new(cfg, trace.clone(), window).run();
        let forced = Simulation::new(cfg, trace, window)
            .with_engine(Box::new(ForceTick(kind.build())))
            .run();
        let fast_json = json_report("deltablue", kind.cli_name(), &fast, None).to_string();
        let forced_json = json_report("deltablue", kind.cli_name(), &forced, None).to_string();
        assert_eq!(fast_json, forced_json, "{kind:?}: skip-ahead changed the run report");
    }
}
