//! Model-checked tests for the sweep worker pool
//! (`psb_sim::pool::run_ordered` — the engine under `run_sweep`).
//!
//! This file only compiles under `--cfg psb_model` (run it through
//! `cargo xtask model`); in normal builds it is an empty test crate.
//! Work payloads are cheap integers, not simulations: the concurrency
//! skeleton being explored is exactly the one production sweeps run,
//! because `run_ordered` is the shared implementation.

#![cfg(psb_model)]

use psb_model::sched::{explore, ModelConfig, EXPECTED_PANIC_MARKER};
use psb_model::sync::atomic::{AtomicUsize, Ordering};
use psb_sim::{run_ordered, run_ordered_tracked, SweepTracker};
use std::sync::Arc;

fn cfg(max_dfs: usize, random: usize) -> ModelConfig {
    ModelConfig { max_dfs, random, ..ModelConfig::default() }.from_env()
}

/// Every interleaving of a pool run must fill every result slot exactly
/// once, in submission order, with each work item executed exactly once.
fn assert_pool_exact(workers: usize, items: usize, max_dfs: usize, random: usize) {
    let report = explore(&format!("pool_{workers}w_{items}i"), &cfg(max_dfs, random), move || {
        let items_vec: Vec<usize> = (0..items).collect();
        let runs: Arc<Vec<AtomicUsize>> =
            Arc::new((0..items).map(|_| AtomicUsize::new(0)).collect());
        let runs_in = runs.clone();
        let mut done_indices = Vec::new();
        let out = run_ordered(
            &items_vec,
            workers,
            move |i, &v| {
                assert_eq!(i, v, "claimed index must match the item");
                runs_in[i].fetch_add(1, Ordering::SeqCst);
                v * 10
            },
            |i, &v| {
                assert_eq!(v, i * 10);
                done_indices.push(i);
            },
        )
        .expect("no cell panics in this body");

        // Results drain in submission order regardless of completion order.
        let expect: Vec<usize> = (0..items).map(|v| v * 10).collect();
        assert_eq!(out, expect, "slots must be filled in submission order");
        // Each item ran exactly once.
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.load(Ordering::SeqCst), 1, "item {i} must run exactly once");
        }
        // Progress fired once per item.
        done_indices.sort_unstable();
        assert_eq!(done_indices, (0..items).collect::<Vec<_>>());
    });
    assert!(report.executions > 1, "a multi-worker pool must branch");
}

#[test]
fn pool_two_workers_four_items_exact_once_in_order() {
    assert_pool_exact(2, 4, 4000, 400);
}

#[test]
fn pool_three_workers_six_items_exact_once_in_order() {
    assert_pool_exact(3, 6, 3000, 300);
}

/// The progress-snapshot handoff: workers publish tracker events while
/// a reader thread polls the published document. Under every explored
/// interleaving the reader must parse a complete, monotone document (no
/// torn epoch row, `done` never exceeds `total` or regresses), the
/// reader and the publishing workers must not deadlock, and the final
/// document must account for every heartbeat (none lost).
#[test]
fn tracker_handoff_loses_no_heartbeat_and_never_tears() {
    use psb_obs::{json, Json};
    let report = explore(
        "tracker_handoff",
        &ModelConfig { max_dfs: 3000, random: 300, ..ModelConfig::default() }.from_env(),
        || {
            let items: Vec<usize> = (0..3).collect();
            let tracker = SweepTracker::new(items.len());
            tracker.begin(2);
            let handle = tracker.handle();
            let reader = psb_model::thread::spawn(move || {
                let mut last_done = 0;
                for _ in 0..2 {
                    let doc = json::parse(&handle.read())
                        .expect("a published progress document is never torn");
                    let done = doc.get("done").and_then(Json::as_u64).expect("done");
                    let total = doc.get("total").and_then(Json::as_u64).expect("total");
                    assert!(done <= total, "done {done} must not exceed total {total}");
                    assert!(done >= last_done, "done regressed: {done} after {last_done}");
                    last_done = done;
                }
            });
            run_ordered_tracked(
                &items,
                2,
                |w, i, &v| {
                    tracker.worker_started(w, i, "cell");
                    tracker.worker_finished(w, 10);
                    v
                },
                |_, _| {},
            )
            .expect("no panics");
            reader.join().expect("reader must not deadlock or panic");
            let doc = json::parse(&tracker.progress_json()).expect("final document");
            assert_eq!(doc.get("done").and_then(Json::as_u64), Some(3));
            assert_eq!(doc.get("running").and_then(Json::as_u64), Some(0));
            let workers = doc.get("workers").and_then(Json::as_arr).expect("workers");
            let beats: u64 = workers
                .iter()
                .map(|w| w.get("heartbeats").and_then(Json::as_u64).expect("heartbeats"))
                .sum();
            assert_eq!(beats, 6, "start+finish per item, none lost");
        },
    );
    assert!(report.executions > 1, "tracker handoff must branch");
}

/// A panicking work item must leave the pool joinable: the run returns
/// an error naming the item instead of hanging or tearing the process
/// down, under every explored interleaving.
#[test]
fn pool_survives_a_panicking_item_and_names_it() {
    explore("pool_panic_joinable", &cfg(2500, 300), || {
        let items: Vec<usize> = (0..4).collect();
        let err = run_ordered(
            &items,
            2,
            |_, &v| {
                if v == 1 {
                    panic!("{EXPECTED_PANIC_MARKER} injected item failure");
                }
                v
            },
            |i, _| assert_ne!(i, 1, "the panicked item must not report success"),
        )
        .expect_err("item 1 panics in every interleaving");
        // Reaching here at all proves every worker joined (a hang would
        // surface as a deadlock violation).
        assert_eq!(err.index, 1, "the error must name the failing item");
        assert!(err.message.contains("injected item failure"));
    });
}
