//! Live serving end-to-end: a tracked sweep published over the real
//! HTTP stack, polled concurrently by a reader over raw sockets — the
//! same wiring `psbsweep --serve` runs.

use psb_obs::{json, Json, Obs};
use psb_serve::{Published, Route, Server};
use psb_sim::{
    try_run_sweep_tracked, MachineConfig, PrefetcherKind, SweepCell, SweepTracker, PROGRESS_SCHEMA,
};
use psb_workloads::Benchmark;
use std::io::{Read, Write};
use std::net::TcpStream;

fn grid() -> Vec<SweepCell> {
    [PrefetcherKind::None, PrefetcherKind::PcStride]
        .into_iter()
        .flat_map(|k| {
            [Benchmark::Turb3d, Benchmark::DeltaBlue].into_iter().map(move |b| {
                SweepCell::new(b, MachineConfig::baseline().with_prefetcher(k), 1)
                    .with_max_commits(10_000)
            })
        })
        .collect()
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("response");
    response.split_once("\r\n\r\n").expect("head/body").1.to_string()
}

#[test]
fn progress_and_metrics_serve_live_during_a_sweep() {
    let cells = grid();
    let tracker = SweepTracker::new(cells.len());
    let metrics = Published::new(String::new());
    let server = Server::bind(
        "127.0.0.1:0",
        vec![
            Route::new("/progress", "application/json", tracker.handle()),
            Route::new("/metrics", "text/plain; version=0.0.4", metrics.clone()),
        ],
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();

    // A live reader polling over real sockets while the sweep runs.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader_stop = stop.clone();
    let reader = std::thread::spawn(move || {
        let mut polls = 0u32;
        while !reader_stop.load(std::sync::atomic::Ordering::SeqCst) {
            let body = http_get(addr, "/progress");
            let doc = json::parse(&body).expect("every /progress body is valid JSON");
            assert_eq!(doc.get("schema").and_then(Json::as_str), Some(PROGRESS_SCHEMA));
            let done = doc.get("done").and_then(Json::as_u64).expect("done");
            let total = doc.get("total").and_then(Json::as_u64).expect("total");
            assert!(done <= total, "done must never exceed total");
            polls += 1;
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        polls
    });

    let obs = Obs::new();
    try_run_sweep_tracked(&cells, 2, Some(&obs), Some(&tracker), None, |_| {
        // The same republish `psbsweep --serve` does per finished cell.
        metrics.publish(psb_obs::prometheus::render(&obs.registry_snapshot()));
    })
    .expect("sweep");

    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let polls = reader.join().expect("reader thread");
    assert!(polls > 0, "the reader must have observed the sweep live");

    // Final progress document: everything done, nonzero heartbeats.
    let doc = json::parse(&http_get(addr, "/progress")).expect("final progress");
    assert_eq!(doc.get("done").and_then(Json::as_u64), Some(cells.len() as u64));
    assert_eq!(doc.get("running").and_then(Json::as_u64), Some(0));
    let workers = doc.get("workers").and_then(Json::as_arr).expect("workers");
    let beats: u64 =
        workers.iter().map(|w| w.get("heartbeats").and_then(Json::as_u64).unwrap()).sum();
    assert!(beats >= 2 * cells.len() as u64, "start+finish per cell, got {beats}");

    // Final metrics document: Prometheus text with the sweep counters.
    let metrics_body = http_get(addr, "/metrics");
    assert!(metrics_body.contains("# TYPE psb_sweep_cells_completed counter"), "{metrics_body}");
    assert!(
        metrics_body.contains(&format!("psb_sweep_cells_completed {}", cells.len())),
        "{metrics_body}"
    );
    assert!(metrics_body.contains("psb_sweep_cell_micros_count"), "{metrics_body}");

    server.shutdown();
}
