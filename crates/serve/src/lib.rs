//! `psb-serve` — the live serving half of sweep-as-a-service.
//!
//! A zero-dependency crate providing:
//!
//! * [`publish`] — [`Published<T>`], the snapshot handoff cell between
//!   the simulation/coordinator threads (writers) and the serving
//!   thread (reader). Writers publish whole immutable snapshots; the
//!   reader swaps an `Arc` out from under a lock held only for the
//!   pointer exchange, so it can never observe a torn document.
//! * [`http`] — a std-only (`TcpListener`) HTTP/1.1 listener serving
//!   `GET` routes whose bodies are `Published<String>` documents:
//!   `psbsweep --serve` hangs `/progress`, `/metrics` and `/report`
//!   here.
//!
//! All synchronization goes through the [`psb_model`] shims, so the
//! handoff explored by `cargo xtask model` (`tests/model.rs`) is
//! exactly the code production serving runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Std-only HTTP listener for `GET`-only snapshot routes.
pub mod http;
/// The cross-thread snapshot handoff cell.
pub mod publish;

pub use http::{Route, Server};
pub use publish::Published;
