//! A std-only HTTP/1.1 listener serving `GET`-only snapshot routes.
//!
//! [`Server::bind`] takes a set of [`Route`]s — each a fixed path, a
//! content type, and a [`Published<String>`] body cell — and spawns one
//! background thread that accepts connections serially. Every request
//! is answered from whatever document is *currently* published on the
//! matching route, so the simulation threads never block on, or even
//! see, the network: they publish snapshots and move on.
//!
//! Scope is deliberately tiny: `GET`, exact path match, one response
//! per connection (`Connection: close`), request head capped at 8 KiB,
//! a short socket timeout so a stalled client can't wedge the serving
//! thread. That is all `curl`, Prometheus scrapers, and browsers need
//! from a diagnostics endpoint, and nothing more is implemented.

use crate::publish::Published;
use psb_model::sync::atomic::{AtomicBool, Ordering};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Maximum bytes of request head (request line + headers) we read.
const MAX_HEAD: usize = 8 * 1024;

/// Per-connection socket timeout. A diagnostics client that cannot
/// deliver its request line in this window is dropped so the serial
/// accept loop stays live for the next scrape.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(2);

/// One served path: requests for exactly `path` answer with the latest
/// document published on `body`.
#[derive(Debug, Clone)]
pub struct Route {
    path: &'static str,
    content_type: &'static str,
    body: Published<String>,
}

impl Route {
    /// A route serving `body`'s current snapshot at `path` (which must
    /// start with `/`) with the given `Content-Type`.
    pub fn new(path: &'static str, content_type: &'static str, body: Published<String>) -> Route {
        assert!(path.starts_with('/'), "route path must start with '/': {path:?}");
        Route { path, content_type, body }
    }
}

/// A running HTTP listener; dropping it (or calling
/// [`Server::shutdown`]) stops the accept loop and joins its thread.
pub struct Server {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<psb_model::thread::JoinHandle<()>>,
}

// Manual: the model-checked JoinHandle shim has no Debug impl.
impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local", &self.local)
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:9090"`, port `0` for ephemeral)
    /// and starts the accept loop on a background thread.
    pub fn bind(addr: &str, routes: Vec<Route>) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let handle = psb_model::thread::spawn(move || accept_loop(listener, routes, &loop_stop));
        Ok(Server { local, stop, handle: Some(handle) })
    }

    /// The bound address — the real port when bound with port `0`.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else { return };
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `accept`; a throwaway local
        // connection wakes it so it can observe the stop flag.
        let _ = TcpStream::connect(self.local);
        let _ = handle.join();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serial accept loop: one connection at a time, first match wins.
fn accept_loop(listener: TcpListener, routes: Vec<Route>, stop: &AtomicBool) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Per-connection failures (slow client, mid-request hangup) are
        // the client's problem; the loop serves the next scrape.
        let _ = handle_connection(stream, &routes);
    }
}

/// Reads one request head and writes one response.
fn handle_connection(mut stream: TcpStream, routes: &[Route]) -> io::Result<()> {
    stream.set_read_timeout(Some(SOCKET_TIMEOUT))?;
    stream.set_write_timeout(Some(SOCKET_TIMEOUT))?;
    let head = read_head(&mut stream)?;
    let Some((method, path)) = parse_request_line(&head) else {
        return respond(&mut stream, "400 Bad Request", "text/plain", "bad request\n");
    };
    if method != "GET" {
        return respond(&mut stream, "405 Method Not Allowed", "text/plain", "GET only\n");
    }
    match routes.iter().find(|r| r.path == path) {
        Some(route) => {
            let body = route.body.read();
            respond(&mut stream, "200 OK", route.content_type, &body)
        }
        None => {
            let known: Vec<&str> = routes.iter().map(|r| r.path).collect();
            let body = format!("not found; routes: {}\n", known.join(" "));
            respond(&mut stream, "404 Not Found", "text/plain", &body)
        }
    }
}

/// Reads until the blank line ending the request head, up to
/// [`MAX_HEAD`] bytes. Request bodies are never read: all routes are
/// `GET`, and the connection closes after one response anyway.
fn read_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= MAX_HEAD {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&head).into_owned())
}

/// Splits the request line into `(method, path)`, stripping any query
/// string (`/progress?x=1` matches the `/progress` route).
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split_ascii_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    let path = target.split('?').next().unwrap_or(target);
    Some((method, path))
}

/// Writes one `Connection: close` response.
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parses_and_strips_query() {
        assert_eq!(
            parse_request_line("GET /progress HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET", "/progress"))
        );
        assert_eq!(
            parse_request_line("GET /metrics?x=1 HTTP/1.0\r\n\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(parse_request_line("POST /x HTTP/1.1\r\n\r\n"), Some(("POST", "/x")));
        assert_eq!(parse_request_line("GARBAGE"), None);
        assert_eq!(parse_request_line("GET /x SPDY/3"), None);
        assert_eq!(parse_request_line(""), None);
    }

    #[test]
    #[should_panic(expected = "must start with '/'")]
    fn route_paths_must_be_absolute() {
        let _ = Route::new("progress", "text/plain", Published::new(String::new()));
    }
}
