//! [`Published<T>`]: the writer→reader snapshot handoff.
//!
//! The simulator's observability state lives behind `Rc` handles that
//! must stay on their owning thread. To serve that state live, writers
//! build a complete immutable snapshot (a rendered JSON document, a
//! [`psb_obs::RegistrySnapshot`], …) and [`Published::publish`] it; the
//! HTTP thread [`Published::read`]s whichever snapshot is current.
//!
//! The cell holds an `Arc<T>` behind a mutex that is locked only for
//! the pointer exchange — never while a snapshot is built or rendered —
//! so both sides are wait-free in practice and, crucially, a reader
//! can never observe a *torn* snapshot: it gets the previous document
//! or the next one, whole, with nothing in between. The mutex comes
//! from the [`psb_model`] shims, so `cargo xtask model` explores this
//! exact handoff (see `tests/model.rs`: no lost publication, no
//! deadlock between worker publish and HTTP read).

use psb_model::sync::Mutex;
use std::sync::Arc;

/// A cross-thread cell holding the latest published snapshot.
///
/// Cloning is cheap and shares the cell; any clone may publish or read.
///
/// # Example
///
/// ```
/// use psb_serve::Published;
///
/// let cell = Published::new(String::from("v0"));
/// let reader = cell.clone();
/// cell.publish(String::from("v1"));
/// assert_eq!(*reader.read(), "v1");
/// ```
#[derive(Debug)]
pub struct Published<T> {
    slot: Arc<Mutex<Arc<T>>>,
}

impl<T> Clone for Published<T> {
    fn clone(&self) -> Self {
        Published { slot: Arc::clone(&self.slot) }
    }
}

impl<T: Default> Default for Published<T> {
    fn default() -> Self {
        Published::new(T::default())
    }
}

impl<T> Published<T> {
    /// Creates a cell whose current snapshot is `initial`.
    pub fn new(initial: T) -> Published<T> {
        Published { slot: Arc::new(Mutex::new(Arc::new(initial))) }
    }

    /// Replaces the current snapshot, whole. The lock is held only for
    /// the pointer swap; building `value` happened on the caller's
    /// thread, outside any lock.
    pub fn publish(&self, value: T) {
        let next = Arc::new(value);
        *self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = next;
    }

    /// The latest published snapshot. The lock is held only for the
    /// `Arc` clone; the returned handle stays valid (and unchanged)
    /// however many publications happen after it.
    pub fn read(&self) -> Arc<T> {
        Arc::clone(&self.slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_read_round_trips() {
        let cell = Published::new(1u64);
        assert_eq!(*cell.read(), 1);
        cell.publish(2);
        assert_eq!(*cell.read(), 2);
    }

    #[test]
    fn a_read_handle_outlives_later_publications() {
        let cell = Published::new(String::from("old"));
        let held = cell.read();
        cell.publish(String::from("new"));
        assert_eq!(*held, "old", "an out-of-date handle stays intact");
        assert_eq!(*cell.read(), "new");
    }

    #[test]
    fn clones_share_the_slot() {
        let a = Published::new(0u32);
        let b = a.clone();
        a.publish(7);
        assert_eq!(*b.read(), 7);
    }

    #[test]
    fn concurrent_publish_and_read_never_tear() {
        // A (pair, double) invariant: readers must never see a torn
        // combination. This is the smoke version; the exhaustive
        // interleaving exploration lives in tests/model.rs.
        let cell = Published::new((0u64, 0u64));
        let writer_cell = cell.clone();
        let writer = psb_model::thread::spawn(move || {
            for n in 1..=1000u64 {
                writer_cell.publish((n, 2 * n));
            }
        });
        for _ in 0..1000 {
            let snap = cell.read();
            assert_eq!(snap.1, 2 * snap.0, "torn snapshot: {snap:?}");
        }
        writer.join().expect("writer must not panic");
        assert_eq!(*cell.read(), (1000, 2000));
    }
}
