//! End-to-end test of the std-only HTTP listener over real sockets.

#![cfg(not(psb_model))]

use psb_serve::{Published, Route, Server};
use std::io::{Read, Write};
use std::net::TcpStream;

/// One raw HTTP/1.1 request; returns (status line, body).
fn get(addr: std::net::SocketAddr, target: &str) -> (String, String) {
    request(addr, &format!("GET {target} HTTP/1.1\r\nHost: test\r\n\r\n"))
}

fn request(addr: std::net::SocketAddr, raw: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("head/body split");
    let status = head.lines().next().expect("status line").to_string();
    (status, body.to_string())
}

#[test]
fn serves_published_documents_and_sees_republication() {
    let progress = Published::new(String::from("{\"done\":0}"));
    let metrics = Published::new(String::from("psb_up 1\n"));
    let server = Server::bind(
        "127.0.0.1:0",
        vec![
            Route::new("/progress", "application/json", progress.clone()),
            Route::new("/metrics", "text/plain; version=0.0.4", metrics.clone()),
        ],
    )
    .expect("bind");
    let addr = server.local_addr();

    let (status, body) = get(addr, "/progress");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "{\"done\":0}");

    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "psb_up 1\n");

    // A later publication is visible to the next request, whole.
    progress.publish(String::from("{\"done\":3}"));
    let (status, body) = get(addr, "/progress?cache_bust=1");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "{\"done\":3}", "query strings strip to the route path");

    server.shutdown();
}

#[test]
fn unknown_paths_404_and_non_get_405() {
    let server = Server::bind(
        "127.0.0.1:0",
        vec![Route::new("/progress", "application/json", Published::new(String::from("{}")))],
    )
    .expect("bind");
    let addr = server.local_addr();

    let (status, body) = get(addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    assert!(body.contains("/progress"), "404 body lists known routes: {body}");

    let (status, _) = request(addr, "POST /progress HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");

    let (status, _) = request(addr, "GARBAGE\r\n\r\n");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");

    server.shutdown();
}

#[test]
fn shutdown_joins_and_drop_is_equivalent() {
    let addr;
    {
        let server =
            Server::bind("127.0.0.1:0", vec![Route::new("/x", "text/plain", Published::default())])
                .expect("bind");
        addr = server.local_addr();
        let (status, _) = get(addr, "/x");
        assert_eq!(status, "HTTP/1.1 200 OK");
        // Dropped here without an explicit shutdown() call.
    }
    // The listener is gone: a fresh bind on the same port succeeds.
    let rebound = Server::bind(&addr.to_string(), vec![]).expect("port released after drop");
    rebound.shutdown();
}
