//! Model-checked tests for the [`psb_serve::Published`] snapshot
//! handoff — the cell between sweep workers (publishers) and the HTTP
//! serving thread (reader).
//!
//! This file only compiles under `--cfg psb_model` (run it through
//! `cargo xtask model`); in normal builds it is an empty test crate.
//! The properties explored: a reader can never observe a torn
//! document, publications are never lost (the final read sees the last
//! publish), and the publish/read pair cannot deadlock.

#![cfg(psb_model)]

use psb_model::sched::{explore, ModelConfig};
use psb_model::thread;
use psb_serve::Published;
use std::sync::Arc;

fn cfg(max_dfs: usize, random: usize) -> ModelConfig {
    ModelConfig { max_dfs, random, ..ModelConfig::default() }.from_env()
}

/// A writer publishes `(n, 2n)` pairs while a reader polls. Under every
/// interleaving the reader must see an internally consistent pair —
/// never a half-updated document — and monotonically non-decreasing
/// versions (a later read can't resurrect an older snapshot).
#[test]
fn published_snapshots_are_never_torn_and_never_regress() {
    let report = explore("published_no_tear", &cfg(4000, 400), || {
        let cell = Published::new((0u64, 0u64));
        let writer_cell = cell.clone();
        let writer = thread::spawn(move || {
            for n in 1..=3u64 {
                writer_cell.publish((n, 2 * n));
            }
        });
        let mut last = 0u64;
        for _ in 0..3 {
            let snap = cell.read();
            assert_eq!(snap.1, 2 * snap.0, "torn snapshot: {snap:?}");
            assert!(snap.0 >= last, "snapshot regressed: {} after {last}", snap.0);
            last = snap.0;
        }
        writer.join().expect("writer must not panic");
        // No lost publication: after join, the last publish is visible.
        assert_eq!(*cell.read(), (3, 6));
    });
    assert!(report.executions > 1, "writer/reader handoff must branch");
}

/// Two publishers racing into one cell (as two sweep workers finishing
/// cells do): the reader must always see one writer's document whole,
/// and the cell must end holding one of the two final publications.
#[test]
fn concurrent_publishers_remain_atomic() {
    explore("published_two_writers", &cfg(4000, 400), || {
        let cell: Published<(u64, u64)> = Published::new((0, 0));
        let a_cell = cell.clone();
        let b_cell = cell.clone();
        let a = thread::spawn(move || a_cell.publish((1, 2)));
        let b = thread::spawn(move || b_cell.publish((10, 20)));
        let snap = cell.read();
        assert!(
            matches!(*snap, (0, 0) | (1, 2) | (10, 20)),
            "reader saw a document no writer published: {snap:?}"
        );
        a.join().expect("writer a");
        b.join().expect("writer b");
        let last = cell.read();
        assert!(matches!(*last, (1, 2) | (10, 20)), "a final publish was lost: {last:?}");
    });
}

/// The tracker-shaped loop: a publisher emits heartbeats 1..=N while a
/// reader holds snapshots across publications. Handles captured from
/// `read()` must stay valid and unchanged while the cell moves on —
/// the HTTP thread renders a response from its own `Arc`, never from a
/// document the workers might still be writing.
#[test]
fn held_read_handles_survive_later_publications() {
    explore("published_held_handle", &cfg(3000, 300), || {
        let cell = Published::new(Arc::new(0u64));
        let writer_cell = cell.clone();
        let writer = thread::spawn(move || {
            for beat in 1..=3u64 {
                writer_cell.publish(Arc::new(beat));
            }
        });
        let held = cell.read();
        let held_value = **held;
        let _ = cell.read();
        assert_eq!(**held, held_value, "a held snapshot mutated under the reader");
        writer.join().expect("writer must not panic");
        assert_eq!(**cell.read(), 3, "final heartbeat lost");
    });
}
