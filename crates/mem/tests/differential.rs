//! Differential suite for the arena-flattened cache tag array.
//!
//! [`psb_mem::Cache`] packs validity into per-line LRU stamps (stamp 0 =
//! invalid) over two flat arrays and indexes sets by mask/shift when the
//! set count is a power of two. This file re-implements the tag array
//! the obvious way — per-way structs with explicit `valid` flags, a
//! prefer-first-invalid victim scan, `%` / `/` indexing — and drives
//! both through identical SplitMix64 workloads, comparing every
//! externally visible output after every operation.
//!
//! The `teeth_*` test proves the comparator bites: a variant whose set
//! mask is off by one (`num_sets - 2`, folding odd sets onto even ones)
//! must be flagged as divergent.

use psb_common::{Addr, BlockAddr, SplitMix64};
use psb_mem::{Cache, CacheConfig};

const CASES: u64 = 30;

#[derive(Copy, Clone)]
struct ModelWay {
    tag: u64,
    lru: u64,
    valid: bool,
}

/// The pre-arena tag array: explicit validity, branchy victim choice.
struct ModelCache {
    ways: Vec<ModelWay>,
    num_sets: u64,
    assoc: usize,
    block: u64,
    stamp: u64,
    mask_bug: bool,
}

impl ModelCache {
    fn new(config: &CacheConfig, mask_bug: bool) -> Self {
        let num_sets = config.num_sets();
        ModelCache {
            ways: vec![ModelWay { tag: 0, lru: 0, valid: false }; num_sets as usize * config.assoc],
            num_sets,
            assoc: config.assoc,
            block: config.block,
            stamp: 0,
            mask_bug,
        }
    }

    fn set_and_tag(&self, block: BlockAddr) -> (usize, u64) {
        if self.mask_bug {
            // Deliberately broken: mask one short of the set count.
            ((block.0 & (self.num_sets - 2)) as usize, block.0 / self.num_sets)
        } else {
            ((block.0 % self.num_sets) as usize, block.0 / self.num_sets)
        }
    }

    fn ways(&self, set: usize) -> std::ops::Range<usize> {
        let base = set * self.assoc;
        base..base + self.assoc
    }

    fn probe_block(&self, block: BlockAddr) -> bool {
        let (set, tag) = self.set_and_tag(block);
        self.ways(set).any(|i| self.ways[i].valid && self.ways[i].tag == tag)
    }

    fn access_block(&mut self, block: BlockAddr) -> bool {
        let (set, tag) = self.set_and_tag(block);
        self.stamp += 1;
        for i in self.ways(set) {
            if self.ways[i].valid && self.ways[i].tag == tag {
                self.ways[i].lru = self.stamp;
                return true;
            }
        }
        false
    }

    fn insert_block(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        let (set, tag) = self.set_and_tag(block);
        self.stamp += 1;
        for i in self.ways(set) {
            if self.ways[i].valid && self.ways[i].tag == tag {
                self.ways[i].lru = self.stamp;
                return None;
            }
        }
        // Victim: the first invalid way, else the least recently used.
        let slot = self.ways(set).find(|&i| !self.ways[i].valid).unwrap_or_else(|| {
            self.ways(set)
                .min_by_key(|&i| self.ways[i].lru)
                .expect("assoc >= 1 gives every set at least one way")
        });
        let evicted = self.ways[slot]
            .valid
            .then(|| BlockAddr(self.ways[slot].tag * self.num_sets + set as u64));
        self.ways[slot] = ModelWay { tag, lru: self.stamp, valid: true };
        evicted
    }

    fn invalidate(&mut self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag(addr.block(self.block));
        for i in self.ways(set) {
            if self.ways[i].valid && self.ways[i].tag == tag {
                self.ways[i].valid = false;
                return true;
            }
        }
        false
    }

    fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

/// Drives the arena cache and the model through one identical random
/// workload, comparing every return value. Returns the first divergence
/// as an error so the teeth test can assert on detection.
fn cache_differential(config: CacheConfig, seed: u64, mask_bug: bool) -> Result<(), String> {
    let mut arena = Cache::new(config);
    let mut model = ModelCache::new(arena.config(), mask_bug);
    let mut rng = SplitMix64::new(seed);
    // A block space a few times the cache capacity: plenty of conflict
    // misses, evictions and re-references.
    let space = (arena.capacity_lines() as u64) * 4;
    for op in 0..600 {
        let block = BlockAddr(rng.below(space));
        match rng.below(5) {
            0 => {
                if arena.probe_block(block) != model.probe_block(block) {
                    return Err(format!("op {op}: probe({block:?}) diverged"));
                }
            }
            1 | 2 => {
                if arena.access_block(block) != model.access_block(block) {
                    return Err(format!("op {op}: access({block:?}) diverged"));
                }
            }
            3 => {
                let ea = arena.insert_block(block);
                let em = model.insert_block(block);
                if ea != em {
                    return Err(format!("op {op}: insert({block:?}) evicted {ea:?} vs {em:?}"));
                }
            }
            _ => {
                let addr = Addr::new(block.0 * arena.block_size());
                if arena.invalidate(addr) != model.invalidate(addr) {
                    return Err(format!("op {op}: invalidate({block:?}) diverged"));
                }
            }
        }
        if arena.occupancy() != model.occupancy() {
            return Err(format!(
                "op {op}: occupancy diverged: arena {}, model {}",
                arena.occupancy(),
                model.occupancy()
            ));
        }
    }
    Ok(())
}

#[test]
fn cache_arena_matches_reference_model() {
    // Several set counts down to the single-set (fully associative)
    // edge case, where the whole index is tag.
    let geometries =
        [CacheConfig::new(1024, 2, 32), CacheConfig::new(512, 4, 32), CacheConfig::new(256, 8, 32)];
    for config in geometries {
        for seed in 0..CASES {
            cache_differential(config, 0xCAC4E + seed, false)
                .expect("arena cache must track the reference model");
        }
    }
}

#[test]
fn teeth_cache_off_by_one_set_mask_is_caught() {
    let config = CacheConfig::new(1024, 2, 32); // 16 sets
    let caught = (0..CASES).any(|seed| cache_differential(config, 0xCAC4E + seed, true).is_err());
    assert!(caught, "an off-by-one set mask must diverge from the correct tag array");
}
