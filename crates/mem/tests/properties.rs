//! Property-based tests for the memory-hierarchy components, checked
//! against simple reference models.

use proptest::prelude::*;
use psb_common::{Addr, BlockAddr, Cycle};
use psb_mem::{Bus, Cache, CacheConfig, Mshr, ThroughputPipe};

/// A reference model of a set-associative LRU cache: per-set vectors in
/// recency order.
struct RefCache {
    sets: Vec<Vec<u64>>,
    assoc: usize,
    num_sets: u64,
}

impl RefCache {
    fn new(num_sets: u64, assoc: usize) -> Self {
        RefCache { sets: vec![Vec::new(); num_sets as usize], assoc, num_sets }
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.num_sets) as usize
    }

    fn probe(&self, block: u64) -> bool {
        self.sets[self.set_of(block)].contains(&block)
    }

    fn access(&mut self, block: u64) -> bool {
        let s = self.set_of(block);
        if let Some(pos) = self.sets[s].iter().position(|&b| b == block) {
            let b = self.sets[s].remove(pos);
            self.sets[s].push(b);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, block: u64) -> Option<u64> {
        let s = self.set_of(block);
        if self.access(block) {
            return None;
        }
        let evicted = if self.sets[s].len() == self.assoc {
            Some(self.sets[s].remove(0))
        } else {
            None
        };
        self.sets[s].push(block);
        evicted
    }
}

#[derive(Clone, Debug)]
enum CacheOp {
    Access(u64),
    Insert(u64),
    Probe(u64),
    Invalidate(u64),
}

fn cache_ops() -> impl Strategy<Value = Vec<CacheOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..64).prop_map(CacheOp::Access),
            (0u64..64).prop_map(CacheOp::Insert),
            (0u64..64).prop_map(CacheOp::Probe),
            (0u64..64).prop_map(CacheOp::Invalidate),
        ],
        0..256,
    )
}

proptest! {
    /// The tag array agrees with a straightforward LRU reference model on
    /// arbitrary operation sequences.
    #[test]
    fn cache_matches_reference(ops in cache_ops()) {
        // 4 sets x 2 ways x 32B blocks.
        let mut cache = Cache::new(CacheConfig::new(256, 2, 32));
        let mut reference = RefCache::new(4, 2);
        for op in ops {
            match op {
                CacheOp::Access(b) => {
                    prop_assert_eq!(
                        cache.access_block(BlockAddr(b)),
                        reference.access(b),
                        "access {}", b
                    );
                }
                CacheOp::Insert(b) => {
                    let got = cache.insert_block(BlockAddr(b));
                    let want = reference.insert(b);
                    prop_assert_eq!(got.map(|x| x.0), want, "insert {}", b);
                }
                CacheOp::Probe(b) => {
                    prop_assert_eq!(cache.probe_block(BlockAddr(b)), reference.probe(b));
                }
                CacheOp::Invalidate(b) => {
                    let addr = Addr::new(b * 32);
                    let was = reference.probe(b);
                    prop_assert_eq!(cache.invalidate(addr), was);
                    if was {
                        let s = reference.set_of(b);
                        reference.sets[s].retain(|&x| x != b);
                    }
                }
            }
        }
    }

    /// Occupancy never exceeds capacity and matches insert/invalidate
    /// history at the reference level.
    #[test]
    fn cache_occupancy_bounded(blocks in proptest::collection::vec(0u64..1024, 0..512)) {
        let mut cache = Cache::new(CacheConfig::new(1024, 4, 32));
        for b in blocks {
            cache.insert_block(BlockAddr(b));
            prop_assert!(cache.occupancy() <= cache.capacity_lines());
        }
    }

    /// MSHR: in-flight count is conserved; drained blocks were allocated
    /// and are gone afterwards.
    #[test]
    fn mshr_conservation(
        allocs in proptest::collection::vec((0u64..32, 1u64..1000), 0..64),
        drain_at in 0u64..1200,
    ) {
        let mut m = Mshr::new(64);
        let mut expected = std::collections::HashMap::new();
        for (b, ready) in allocs {
            m.allocate(BlockAddr(b), Cycle::new(ready)).unwrap();
            let e = expected.entry(b).or_insert(ready);
            *e = (*e).min(ready);
        }
        prop_assert_eq!(m.in_flight(), expected.len());
        let drained = m.drain_ready(Cycle::new(drain_at));
        for b in &drained {
            prop_assert!(expected[&b.0] <= drain_at);
        }
        let remaining: Vec<_> = expected.values().filter(|&&r| r > drain_at).collect();
        prop_assert_eq!(m.in_flight(), remaining.len());
    }

    /// Bus: transactions never overlap, start no earlier than requested,
    /// and busy time equals the sum of transfer times.
    #[test]
    fn bus_no_overlap(reqs in proptest::collection::vec((0u64..1000, 1u64..256), 1..64)) {
        let mut bus = Bus::new(8);
        let mut reqs = reqs;
        reqs.sort_by_key(|&(t, _)| t);
        let mut last_end = Cycle::ZERO;
        let mut total = 0;
        for (t, bytes) in reqs {
            let (start, end) = bus.acquire(Cycle::new(t), bytes);
            prop_assert!(start >= Cycle::new(t));
            prop_assert!(start >= last_end, "transactions must not overlap");
            prop_assert_eq!(end.since(start), bytes.div_ceil(8));
            total += end.since(start);
            last_end = end;
        }
        prop_assert_eq!(bus.busy_cycles(), total);
    }

    /// Pipelined port: completions are monotone in submission order and
    /// respect both latency and initiation interval.
    #[test]
    fn pipe_ordering(times in proptest::collection::vec(0u64..500, 1..64)) {
        let mut pipe = ThroughputPipe::new(12, 3);
        let mut times = times;
        times.sort_unstable();
        let mut prev_done = Cycle::ZERO;
        for t in times {
            let done = pipe.access(Cycle::new(t));
            prop_assert!(done.since(Cycle::new(t)) >= 12, "full latency always paid");
            prop_assert!(done >= prev_done, "in-order completion");
            if prev_done > Cycle::ZERO {
                prop_assert!(done.since(Cycle::ZERO) >= prev_done.since(Cycle::ZERO));
            }
            prev_done = done;
        }
    }
}
