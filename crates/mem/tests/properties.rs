//! Property-style tests for the memory-hierarchy components, checked
//! against simple reference models over deterministic pseudo-random
//! operation sequences (no external test framework, runs offline).

use psb_common::{Addr, BlockAddr, Cycle, SplitMix64};
use psb_mem::{Bus, Cache, CacheConfig, Mshr, ThroughputPipe};

const CASES: u64 = 150;

/// A reference model of a set-associative LRU cache: per-set vectors in
/// recency order.
struct RefCache {
    sets: Vec<Vec<u64>>,
    assoc: usize,
    num_sets: u64,
}

impl RefCache {
    fn new(num_sets: u64, assoc: usize) -> Self {
        RefCache { sets: vec![Vec::new(); num_sets as usize], assoc, num_sets }
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.num_sets) as usize
    }

    fn probe(&self, block: u64) -> bool {
        self.sets[self.set_of(block)].contains(&block)
    }

    fn access(&mut self, block: u64) -> bool {
        let s = self.set_of(block);
        if let Some(pos) = self.sets[s].iter().position(|&b| b == block) {
            let b = self.sets[s].remove(pos);
            self.sets[s].push(b);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, block: u64) -> Option<u64> {
        let s = self.set_of(block);
        if self.access(block) {
            return None;
        }
        let evicted =
            if self.sets[s].len() == self.assoc { Some(self.sets[s].remove(0)) } else { None };
        self.sets[s].push(block);
        evicted
    }
}

/// The tag array agrees with a straightforward LRU reference model on
/// arbitrary operation sequences.
#[test]
fn cache_matches_reference() {
    let mut meta = SplitMix64::new(0xCAC4E);
    for case in 0..CASES {
        // 4 sets x 2 ways x 32B blocks.
        let mut cache = Cache::new(CacheConfig::new(256, 2, 32));
        let mut reference = RefCache::new(4, 2);
        let ops = meta.below(256);
        for _ in 0..ops {
            let b = meta.below(64);
            match meta.below(4) {
                0 => {
                    assert_eq!(
                        cache.access_block(BlockAddr(b)),
                        reference.access(b),
                        "case {case}: access {b}"
                    );
                }
                1 => {
                    let got = cache.insert_block(BlockAddr(b));
                    let want = reference.insert(b);
                    assert_eq!(got.map(|x| x.0), want, "case {case}: insert {b}");
                }
                2 => {
                    assert_eq!(
                        cache.probe_block(BlockAddr(b)),
                        reference.probe(b),
                        "case {case}: probe {b}"
                    );
                }
                _ => {
                    let addr = Addr::new(b * 32);
                    let was = reference.probe(b);
                    assert_eq!(cache.invalidate(addr), was, "case {case}: invalidate {b}");
                    if was {
                        let s = reference.set_of(b);
                        reference.sets[s].retain(|&x| x != b);
                    }
                }
            }
        }
    }
}

/// Occupancy never exceeds capacity regardless of insert history.
#[test]
fn cache_occupancy_bounded() {
    let mut meta = SplitMix64::new(0x0CC);
    for case in 0..CASES {
        let mut cache = Cache::new(CacheConfig::new(1024, 4, 32));
        let n = meta.below(512);
        for _ in 0..n {
            cache.insert_block(BlockAddr(meta.below(1024)));
            assert!(
                cache.occupancy() <= cache.capacity_lines(),
                "case {case}: occupancy exceeded capacity"
            );
        }
    }
}

/// MSHR: in-flight count is conserved; drained blocks were allocated,
/// were due, and are gone afterwards.
#[test]
fn mshr_conservation() {
    let mut meta = SplitMix64::new(0x854);
    for case in 0..CASES {
        let mut m = Mshr::new(64);
        let mut expected = std::collections::HashMap::new();
        let n = meta.below(64);
        for _ in 0..n {
            let b = meta.below(32);
            let ready = 1 + meta.below(999);
            m.allocate(BlockAddr(b), Cycle::new(ready))
                .expect("capacity 64 cannot fill from at most 32 distinct blocks");
            let e = expected.entry(b).or_insert(ready);
            *e = (*e).min(ready);
        }
        assert_eq!(m.in_flight(), expected.len(), "case {case}");
        let drain_at = meta.below(1200);
        let drained = m.drain_ready(Cycle::new(drain_at));
        for b in &drained {
            assert!(expected[&b.0] <= drain_at, "case {case}: block {} drained early", b.0);
        }
        let remaining = expected.values().filter(|&&r| r > drain_at).count();
        assert_eq!(m.in_flight(), remaining, "case {case}");
    }
}

/// Bus: transactions never overlap, start no earlier than requested,
/// and busy time equals the sum of transfer times.
#[test]
fn bus_no_overlap() {
    let mut meta = SplitMix64::new(0xB05);
    for case in 0..CASES {
        let mut bus = Bus::new(8);
        let n = 1 + meta.below(63);
        let mut reqs: Vec<(u64, u64)> =
            (0..n).map(|_| (meta.below(1000), 1 + meta.below(255))).collect();
        reqs.sort_by_key(|&(t, _)| t);
        let mut last_end = Cycle::ZERO;
        let mut total = 0;
        for (t, bytes) in reqs {
            let (start, end) = bus.acquire(Cycle::new(t), bytes);
            assert!(start >= Cycle::new(t), "case {case}");
            assert!(start >= last_end, "case {case}: transactions must not overlap");
            assert_eq!(end.since(start), bytes.div_ceil(8), "case {case}");
            total += end.since(start);
            last_end = end;
        }
        assert_eq!(bus.busy_cycles(), total, "case {case}");
    }
}

/// Pipelined port: completions are monotone in submission order and
/// respect both latency and initiation interval.
#[test]
fn pipe_ordering() {
    let mut meta = SplitMix64::new(0x919E);
    for case in 0..CASES {
        let mut pipe = ThroughputPipe::new(12, 3);
        let n = 1 + meta.below(63);
        let mut times: Vec<u64> = (0..n).map(|_| meta.below(500)).collect();
        times.sort_unstable();
        let mut prev_done = Cycle::ZERO;
        for t in times {
            let done = pipe.access(Cycle::new(t));
            assert!(done.since(Cycle::new(t)) >= 12, "case {case}: full latency always paid");
            assert!(done >= prev_done, "case {case}: in-order completion");
            prev_done = done;
        }
    }
}
