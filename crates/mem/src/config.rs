//! Geometry and latency configuration for the memory hierarchy.

/// Geometry of one cache: total size, associativity, block size.
///
/// # Example
///
/// ```
/// use psb_mem::CacheConfig;
/// let l1d = CacheConfig::l1d_32k_4way();
/// assert_eq!(l1d.num_sets(), 32 * 1024 / (4 * 32));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Number of ways per set.
    pub assoc: usize,
    /// Block (line) size in bytes; must be a power of two.
    pub block: u64,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes, non-power-of-two
    /// block, or size not divisible by `assoc * block`).
    pub fn new(size: u64, assoc: usize, block: u64) -> Self {
        assert!(size > 0 && assoc > 0 && block > 0, "zero-sized cache geometry");
        assert!(block.is_power_of_two(), "block size must be a power of two");
        assert!(
            size.is_multiple_of(assoc as u64 * block),
            "cache size {size} not divisible by assoc {assoc} x block {block}"
        );
        let sets = size / (assoc as u64 * block);
        assert!(sets.is_power_of_two(), "number of sets must be a power of two");
        CacheConfig { size, assoc, block }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size / (self.assoc as u64 * self.block)
    }

    /// The paper's baseline L1 data cache: 32 KB, 4-way, 32 B lines.
    pub fn l1d_32k_4way() -> Self {
        CacheConfig::new(32 * 1024, 4, 32)
    }

    /// Figure 10 variant: 32 KB, 2-way, 32 B lines.
    pub fn l1d_32k_2way() -> Self {
        CacheConfig::new(32 * 1024, 2, 32)
    }

    /// Figure 10 variant: 16 KB, 4-way, 32 B lines.
    pub fn l1d_16k_4way() -> Self {
        CacheConfig::new(16 * 1024, 4, 32)
    }

    /// The paper's L1 instruction cache: 32 KB, 2-way, 32 B lines.
    pub fn l1i_32k_2way() -> Self {
        CacheConfig::new(32 * 1024, 2, 32)
    }

    /// The paper's unified L2: 1 MB, 4-way, 64 B lines (associativity is
    /// not stated in the paper; 4-way is the contemporary convention).
    pub fn l2_1m() -> Self {
        CacheConfig::new(1024 * 1024, 4, 64)
    }
}

/// Latencies, bandwidths and structural parameters of the full hierarchy.
///
/// Defaults ([`MemConfig::baseline`]) reproduce Section 5.1 of the paper.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// L1 hit latency in cycles (also the stream-buffer lookup latency).
    pub l1_latency: u64,
    /// L2 access latency in cycles.
    pub l2_latency: u64,
    /// Number of accesses the L2 pipeline can overlap.
    pub l2_pipeline_depth: u64,
    /// Main-memory access latency in cycles.
    pub mem_latency: u64,
    /// L1↔L2 bus bandwidth in bytes per processor cycle.
    pub l1_l2_bytes_per_cycle: u64,
    /// L2↔memory bus bandwidth in bytes per processor cycle.
    pub l2_mem_bytes_per_cycle: u64,
    /// Number of L1 data-cache MSHRs.
    pub l1d_mshrs: usize,
    /// Number of L1 instruction-cache MSHRs (sized independently of the
    /// data cache's).
    pub l1i_mshrs: usize,
    /// Data TLB entries.
    pub dtlb_entries: usize,
    /// Data TLB associativity.
    pub dtlb_assoc: usize,
    /// Data TLB miss penalty in cycles.
    pub dtlb_miss_latency: u64,
    /// Page size in bytes.
    pub page_size: u64,
}

impl MemConfig {
    /// The paper's baseline memory system (Section 5.1).
    pub fn baseline() -> Self {
        MemConfig {
            l1d: CacheConfig::l1d_32k_4way(),
            l1i: CacheConfig::l1i_32k_2way(),
            l2: CacheConfig::l2_1m(),
            l1_latency: 1,
            l2_latency: 12,
            l2_pipeline_depth: 3,
            mem_latency: 120,
            l1_l2_bytes_per_cycle: 8,
            l2_mem_bytes_per_cycle: 4,
            l1d_mshrs: 16,
            l1i_mshrs: 16,
            dtlb_entries: 128,
            dtlb_assoc: 4,
            dtlb_miss_latency: 30,
            page_size: 8192,
        }
    }

    /// Baseline with a different L1D geometry (for the Figure 10 sweep).
    pub fn with_l1d(mut self, l1d: CacheConfig) -> Self {
        self.l1d = l1d;
        self
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::l1d_32k_4way().num_sets(), 256);
        assert_eq!(CacheConfig::l1d_32k_2way().num_sets(), 512);
        assert_eq!(CacheConfig::l1d_16k_4way().num_sets(), 128);
        assert_eq!(CacheConfig::l1i_32k_2way().num_sets(), 512);
        assert_eq!(CacheConfig::l2_1m().num_sets(), 4096);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_block() {
        CacheConfig::new(32 * 1024, 4, 48);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_inconsistent_geometry() {
        CacheConfig::new(1000, 3, 32);
    }

    #[test]
    fn baseline_matches_paper() {
        let m = MemConfig::baseline();
        assert_eq!(m.l2_latency, 12);
        assert_eq!(m.mem_latency, 120);
        assert_eq!(m.l1_l2_bytes_per_cycle, 8);
        assert_eq!(m.l2_mem_bytes_per_cycle, 4);
        assert_eq!(m.l2_pipeline_depth, 3);
        assert_eq!(m.l1d_mshrs, 16);
        assert_eq!(m.l1i_mshrs, 16);
    }

    #[test]
    fn l1i_mshrs_size_independently_of_l1d() {
        // Regression: the i-cache used to be built from `l1d_mshrs`, so
        // shrinking the d-cache's miss parallelism silently throttled
        // instruction fetch too.
        let m = MemConfig { l1d_mshrs: 4, ..MemConfig::baseline() };
        assert_eq!(m.l1i_mshrs, 16, "i-cache MSHRs must not track the d-cache's");
        let m = MemConfig { l1i_mshrs: 2, ..MemConfig::baseline() };
        assert_eq!(m.l1d_mshrs, 16, "d-cache MSHRs must not track the i-cache's");
    }

    #[test]
    fn with_l1d_swaps_geometry() {
        let m = MemConfig::baseline().with_l1d(CacheConfig::l1d_16k_4way());
        assert_eq!(m.l1d.size, 16 * 1024);
        assert_eq!(m.l2, CacheConfig::l2_1m());
    }
}
