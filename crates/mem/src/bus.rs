//! Single-occupancy, bandwidth-limited buses.

use psb_common::Cycle;
use psb_obs::Hist;

/// A bus that carries one transaction at a time at a fixed bandwidth.
///
/// This matches the paper's model: "only one request (miss or prefetch)
/// can be processed by the bus from the L1 to the L2 cache at a time", and
/// the stream buffers "only allow prefetches to occur if the L1-L2 bus is
/// free at the start of any given cycle".
///
/// A transaction occupies the bus for `ceil(bytes / bytes_per_cycle)`
/// cycles starting no earlier than the current cycle and no earlier than
/// the end of the previous transaction. The accumulated busy time is the
/// numerator for the utilization figures (Figure 9, Table 2).
///
/// # Example
///
/// ```
/// use psb_common::Cycle;
/// use psb_mem::Bus;
///
/// let mut bus = Bus::new(8); // 8 bytes/cycle, like the paper's L1<->L2 bus
/// let (start, end) = bus.acquire(Cycle::ZERO, 32);
/// assert_eq!((start, end), (Cycle::new(0), Cycle::new(4)));
/// assert!(!bus.is_free(Cycle::new(3)));
/// assert!(bus.is_free(Cycle::new(4)));
/// ```
#[derive(Clone, Debug)]
pub struct Bus {
    bytes_per_cycle: u64,
    free_at: Cycle,
    busy_cycles: u64,
    transactions: u64,
    /// Queueing delay (start − submit) per transaction, when attached.
    obs_queue_delay: Option<Hist>,
}

impl Bus {
    /// Creates a bus with the given bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(bytes_per_cycle: u64) -> Self {
        assert!(bytes_per_cycle > 0, "a bus must move at least one byte per cycle");
        Bus {
            bytes_per_cycle,
            free_at: Cycle::ZERO,
            busy_cycles: 0,
            transactions: 0,
            obs_queue_delay: None,
        }
    }

    /// Attaches a histogram that receives each transaction's queueing
    /// delay (cycles between submission and bus grant).
    pub fn attach_obs(&mut self, queue_delay: Hist) {
        self.obs_queue_delay = Some(queue_delay);
    }

    /// True if a new transaction could start exactly at `now`.
    pub fn is_free(&self, now: Cycle) -> bool {
        self.free_at <= now
    }

    /// The earliest cycle a new transaction could start.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Cycles needed to move `bytes` over this bus.
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.bytes_per_cycle)
    }

    /// Queues a transaction of `bytes` submitted at `now`. Returns
    /// `(start, end)`: the transaction occupies `[start, end)` and its data
    /// is fully transferred at `end`.
    pub fn acquire(&mut self, now: Cycle, bytes: u64) -> (Cycle, Cycle) {
        let start = now.max(self.free_at);
        let end = start + self.transfer_cycles(bytes);
        self.free_at = end;
        self.busy_cycles += end - start;
        self.transactions += 1;
        if let Some(h) = &self.obs_queue_delay {
            h.observe(start.since(now));
        }
        #[cfg(feature = "check")]
        psb_check::audit(&psb_check::Snapshot::BusGrant { now, start, end });
        (start, end)
    }

    /// Total cycles the bus has been occupied.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of transactions carried.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Utilization in percent over a run of `elapsed` cycles.
    pub fn utilization_percent(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            100.0 * self.busy_cycles as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_transactions_serialize() {
        let mut bus = Bus::new(8);
        let (s1, e1) = bus.acquire(Cycle::ZERO, 32);
        let (s2, e2) = bus.acquire(Cycle::new(1), 32);
        assert_eq!((s1, e1), (Cycle::new(0), Cycle::new(4)));
        assert_eq!((s2, e2), (Cycle::new(4), Cycle::new(8)));
        assert_eq!(bus.busy_cycles(), 8);
        assert_eq!(bus.transactions(), 2);
    }

    #[test]
    fn idle_gap_not_counted_busy() {
        let mut bus = Bus::new(4);
        bus.acquire(Cycle::ZERO, 64); // 16 cycles
        bus.acquire(Cycle::new(100), 64); // idle 84 cycles in between
        assert_eq!(bus.busy_cycles(), 32);
        assert_eq!(bus.utilization_percent(200), 16.0);
    }

    #[test]
    fn partial_beat_rounds_up() {
        let bus = Bus::new(8);
        assert_eq!(bus.transfer_cycles(1), 1);
        assert_eq!(bus.transfer_cycles(8), 1);
        assert_eq!(bus.transfer_cycles(9), 2);
        assert_eq!(bus.transfer_cycles(64), 8);
    }

    #[test]
    fn is_free_boundary() {
        let mut bus = Bus::new(8);
        bus.acquire(Cycle::ZERO, 32);
        assert!(!bus.is_free(Cycle::ZERO));
        assert!(!bus.is_free(Cycle::new(3)));
        assert!(bus.is_free(Cycle::new(4)));
        assert_eq!(bus.free_at(), Cycle::new(4));
    }

    #[test]
    fn queue_delay_histogram_sees_waits() {
        let mut bus = Bus::new(8);
        let h = Hist::new();
        bus.attach_obs(h.clone());
        bus.acquire(Cycle::ZERO, 32); // starts immediately: delay 0
        bus.acquire(Cycle::new(1), 32); // waits until cycle 4: delay 3
        let snap = h.snapshot();
        assert_eq!(snap.total(), 2);
        assert_eq!(snap.bucket(0), 1); // the zero-delay grant
        assert_eq!(snap.max(), Some(3));
    }

    #[test]
    fn zero_elapsed_utilization_is_zero() {
        let bus = Bus::new(8);
        assert_eq!(bus.utilization_percent(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_bandwidth_panics() {
        Bus::new(0);
    }
}
