//! Miss status holding registers.

use psb_common::{BlockAddr, Cycle};
use psb_obs::{Counter, Gauge};
use std::collections::HashMap;

/// Why an MSHR allocation failed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MshrError {
    /// All registers are occupied; the miss must retry later.
    Full,
}

impl std::fmt::Display for MshrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MshrError::Full => write!(f, "all miss status holding registers are occupied"),
        }
    }
}

impl std::error::Error for MshrError {}

/// A file of miss status holding registers.
///
/// Each entry records one in-flight cache block and the cycle at which its
/// fill completes. Secondary misses to the same block merge into the
/// existing entry ([`Mshr::lookup`] returns the pending completion time).
/// The owner drains completed entries with [`Mshr::drain_ready`], inserting
/// the returned blocks into its cache.
///
/// # Example
///
/// ```
/// use psb_common::{BlockAddr, Cycle};
/// use psb_mem::Mshr;
///
/// let mut m = Mshr::new(4);
/// m.allocate(BlockAddr(7), Cycle::new(100)).expect("a register is free for this block");
/// assert_eq!(m.lookup(BlockAddr(7)), Some(Cycle::new(100)));
/// let done = m.drain_ready(Cycle::new(100));
/// assert_eq!(done, vec![BlockAddr(7)]);
/// assert_eq!(m.lookup(BlockAddr(7)), None);
/// ```
#[derive(Clone, Debug)]
pub struct Mshr {
    capacity: usize,
    pending: HashMap<BlockAddr, Cycle>,
    /// Occupancy sampled after every allocation, when attached.
    obs_occupancy: Option<Gauge>,
    /// Allocations rejected because every register was busy.
    obs_full_rejects: Option<Counter>,
}

impl Mshr {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one register");
        Mshr {
            capacity,
            pending: HashMap::with_capacity(capacity),
            obs_occupancy: None,
            obs_full_rejects: None,
        }
    }

    /// Attaches observability handles: `occupancy` is sampled after each
    /// successful allocation, `full_rejects` counts allocations refused
    /// because the file was full.
    pub fn attach_obs(&mut self, occupancy: Gauge, full_rejects: Counter) {
        self.obs_occupancy = Some(occupancy);
        self.obs_full_rejects = Some(full_rejects);
    }

    /// Returns the completion time of an in-flight block, if any.
    pub fn lookup(&self, block: BlockAddr) -> Option<Cycle> {
        self.pending.get(&block).copied()
    }

    /// True if `block` is currently in flight.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.pending.contains_key(&block)
    }

    /// Allocates a register for `block`, completing at `ready`.
    ///
    /// If the block is already in flight this merges (keeping the earlier
    /// completion time) and costs no new register.
    ///
    /// # Errors
    ///
    /// Returns [`MshrError::Full`] when no register is free.
    pub fn allocate(&mut self, block: BlockAddr, ready: Cycle) -> Result<(), MshrError> {
        if let Some(existing) = self.pending.get_mut(&block) {
            if ready < *existing {
                *existing = ready;
            }
            return Ok(());
        }
        if self.pending.len() >= self.capacity {
            if let Some(c) = &self.obs_full_rejects {
                c.inc();
            }
            return Err(MshrError::Full);
        }
        self.pending.insert(block, ready);
        if let Some(g) = &self.obs_occupancy {
            g.sample(self.pending.len() as u64);
        }
        #[cfg(feature = "check")]
        self.audit(ready);
        Ok(())
    }

    /// Publishes the register file to the invariant auditor (duplicate
    /// blocks, capacity bound).
    #[cfg(feature = "check")]
    fn audit(&self, now: Cycle) {
        psb_check::audit(&psb_check::Snapshot::Mshr {
            now,
            capacity: self.capacity,
            blocks: self.pending.keys().copied().collect(),
        });
    }

    /// Removes and returns every block whose fill has completed by `now`,
    /// in deterministic (completion time, block) order.
    pub fn drain_ready(&mut self, now: Cycle) -> Vec<BlockAddr> {
        let mut done: Vec<(Cycle, BlockAddr)> = self
            .pending
            .iter()
            .filter(|(_, &ready)| ready <= now)
            .map(|(&b, &ready)| (ready, b))
            .collect();
        done.sort_unstable();
        for (_, b) in &done {
            self.pending.remove(b);
        }
        #[cfg(feature = "check")]
        self.audit(now);
        done.into_iter().map(|(_, b)| b).collect()
    }

    /// Number of occupied registers.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// True if no register is free.
    pub fn is_full(&self) -> bool {
        self.pending.len() >= self.capacity
    }

    /// Total number of registers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_lookup_drain() {
        let mut m = Mshr::new(2);
        m.allocate(BlockAddr(1), Cycle::new(10)).expect("a register is free for this block");
        m.allocate(BlockAddr(2), Cycle::new(20)).expect("a register is free for this block");
        assert!(m.is_full());
        assert_eq!(m.lookup(BlockAddr(1)), Some(Cycle::new(10)));
        assert_eq!(m.drain_ready(Cycle::new(5)), vec![]);
        assert_eq!(m.drain_ready(Cycle::new(15)), vec![BlockAddr(1)]);
        assert_eq!(m.in_flight(), 1);
        assert_eq!(m.drain_ready(Cycle::new(25)), vec![BlockAddr(2)]);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn full_rejects() {
        let mut m = Mshr::new(1);
        m.allocate(BlockAddr(1), Cycle::new(10)).expect("a register is free for this block");
        assert_eq!(m.allocate(BlockAddr(2), Cycle::new(10)), Err(MshrError::Full));
        // Same block merges even when full.
        assert_eq!(m.allocate(BlockAddr(1), Cycle::new(30)), Ok(()));
    }

    #[test]
    fn merge_keeps_earlier_completion() {
        let mut m = Mshr::new(4);
        m.allocate(BlockAddr(9), Cycle::new(50)).expect("a register is free for this block");
        m.allocate(BlockAddr(9), Cycle::new(40)).expect("a register is free for this block");
        assert_eq!(m.lookup(BlockAddr(9)), Some(Cycle::new(40)));
        m.allocate(BlockAddr(9), Cycle::new(60)).expect("a register is free for this block");
        assert_eq!(m.lookup(BlockAddr(9)), Some(Cycle::new(40)));
        assert_eq!(m.in_flight(), 1);
    }

    #[test]
    fn drain_order_is_deterministic() {
        let mut m = Mshr::new(8);
        m.allocate(BlockAddr(5), Cycle::new(10)).expect("a register is free for this block");
        m.allocate(BlockAddr(3), Cycle::new(10)).expect("a register is free for this block");
        m.allocate(BlockAddr(4), Cycle::new(9)).expect("a register is free for this block");
        assert_eq!(m.drain_ready(Cycle::new(10)), vec![BlockAddr(4), BlockAddr(3), BlockAddr(5)]);
    }

    #[test]
    fn obs_handles_track_occupancy_and_rejects() {
        let mut m = Mshr::new(2);
        let g = Gauge::new();
        let c = Counter::new();
        m.attach_obs(g.clone(), c.clone());
        m.allocate(BlockAddr(1), Cycle::new(10)).expect("register free");
        m.allocate(BlockAddr(2), Cycle::new(10)).expect("register free");
        assert_eq!(m.allocate(BlockAddr(3), Cycle::new(10)), Err(MshrError::Full));
        // Merges cost no register and are not re-sampled.
        m.allocate(BlockAddr(1), Cycle::new(5)).expect("merge");
        assert_eq!(g.snapshot().max(), Some(2));
        assert_eq!(g.snapshot().samples(), 2);
        assert_eq!(c.get(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one register")]
    fn zero_capacity_panics() {
        Mshr::new(0);
    }
}
