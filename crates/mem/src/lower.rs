//! The composed L2 + main-memory system behind the L1 caches.

use crate::{Bus, Cache, MemConfig, ThroughputPipe};
use psb_common::{Addr, BlockAddr, Cycle};
use std::collections::HashMap;

/// Result of fetching one block from the lower memory system.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Completion {
    /// Cycle at which the block is available at the L1 boundary.
    pub ready: Cycle,
    /// Whether the L2 satisfied the request without going to memory.
    pub l2_hit: bool,
}

/// Counters for the lower memory system.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LowerStats {
    /// L2 accesses that hit.
    pub l2_hits: u64,
    /// L2 accesses that missed and went to memory (or merged with an
    /// outstanding fetch).
    pub l2_misses: u64,
}

impl LowerStats {
    /// L2 miss rate in `[0, 1]`.
    pub fn l2_miss_rate(&self) -> f64 {
        let n = self.l2_hits + self.l2_misses;
        if n == 0 {
            0.0
        } else {
            self.l2_misses as f64 / n as f64
        }
    }
}

/// Everything below the L1 caches: the L1↔L2 bus, the pipelined unified
/// L2, the L2↔memory bus and DRAM.
///
/// Both demand misses and stream-buffer prefetches are served through
/// [`LowerMemory::fetch_block`], so they naturally contend for the same
/// bus bandwidth — the effect at the heart of the paper's Figure 9.
/// Demand priority is enforced by the caller: the prefetch engines only
/// issue when [`LowerMemory::l1_bus_free`] reports the bus idle at the
/// start of the cycle.
///
/// Timing model for one L1 block fetch submitted at cycle *t*:
///
/// 1. The L1↔L2 bus is occupied for `ceil(block / 8)` cycles starting at
///    `max(t, bus free)`; this single occupancy stands for both the
///    request and the fill transfer (SimpleScalar's bus model).
/// 2. The L2 pipeline is accessed when the request arrives; an L2 hit is
///    ready `l2_latency` cycles later.
/// 3. An L2 miss additionally occupies the L2↔memory bus for
///    `ceil(l2_block / 4)` cycles and pays the 120-cycle DRAM latency.
///    Concurrent requests for the same L2 block merge onto one fetch.
///
/// With the baseline parameters an uncontended L1 miss that hits in L2
/// costs 4 + 12 = 16 cycles; a full miss to DRAM costs 4 + 12 + 16 + 120 =
/// 152 cycles.
#[derive(Clone, Debug)]
pub struct LowerMemory {
    l2: Cache,
    l2_pipe: ThroughputPipe,
    l1_l2_bus: Bus,
    l2_mem_bus: Bus,
    mem_latency: u64,
    /// Outstanding DRAM fetches by L2 block, for merge.
    in_flight: HashMap<BlockAddr, Cycle>,
    stats: LowerStats,
}

impl LowerMemory {
    /// Builds the lower memory system from a configuration.
    pub fn new(config: &MemConfig) -> Self {
        LowerMemory {
            l2: Cache::new(config.l2),
            l2_pipe: ThroughputPipe::new(config.l2_latency, config.l2_pipeline_depth),
            l1_l2_bus: Bus::new(config.l1_l2_bytes_per_cycle),
            l2_mem_bus: Bus::new(config.l2_mem_bytes_per_cycle),
            mem_latency: config.mem_latency,
            in_flight: HashMap::new(),
            stats: LowerStats::default(),
        }
    }

    /// Attaches observability to both buses: each gets a queue-delay
    /// histogram from the hub's registry.
    pub fn attach_obs(&mut self, obs: &psb_obs::Obs) {
        self.l1_l2_bus.attach_obs(obs.hist("bus.l1_l2.queue_delay"));
        self.l2_mem_bus.attach_obs(obs.hist("bus.l2_mem.queue_delay"));
    }

    /// True if the L1↔L2 bus is idle at `now` — the paper's gating
    /// condition for issuing a prefetch.
    pub fn l1_bus_free(&self, now: Cycle) -> bool {
        self.l1_l2_bus.is_free(now)
    }

    /// Fetches the block of `l1_block_bytes` containing `addr`, submitted
    /// at `now`. Returns when the data reaches the L1 boundary and whether
    /// the L2 hit.
    pub fn fetch_block(&mut self, now: Cycle, addr: Addr, l1_block_bytes: u64) -> Completion {
        // Drop completed in-flight records lazily.
        self.in_flight.retain(|_, ready| *ready > now);

        let (_, request_at_l2) = self.l1_l2_bus.acquire(now, l1_block_bytes);
        let l2_block = addr.block(self.l2.block_size());
        let l2_done = self.l2_pipe.access(request_at_l2);

        // A block whose DRAM fetch is still outstanding must not be
        // treated as an L2 hit even though its tag is installed eagerly.
        if let Some(&pending) = self.in_flight.get(&l2_block) {
            self.stats.l2_misses += 1;
            self.l2.access_block(l2_block);
            return Completion { ready: pending.max(l2_done), l2_hit: false };
        }

        if self.l2.access_block(l2_block) {
            self.stats.l2_hits += 1;
            return Completion { ready: l2_done, l2_hit: true };
        }

        self.stats.l2_misses += 1;
        let ready = {
            let l2_bytes = self.l2.block_size();
            let (mem_start, _) = self.l2_mem_bus.acquire(l2_done, l2_bytes);
            let ready = mem_start + self.mem_latency + self.l2_mem_bus.transfer_cycles(l2_bytes);
            self.in_flight.insert(l2_block, ready);
            // Install the tag eagerly; the in-flight map carries the timing.
            self.l2.insert_block(l2_block);
            ready
        };
        Completion { ready, l2_hit: false }
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> LowerStats {
        self.stats
    }

    /// The L1↔L2 bus (for utilization reporting).
    pub fn l1_l2_bus(&self) -> &Bus {
        &self.l1_l2_bus
    }

    /// The L2↔memory bus (for utilization reporting).
    pub fn l2_mem_bus(&self) -> &Bus {
        &self.l2_mem_bus
    }

    /// Direct read-only access to the L2 tag array.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower() -> LowerMemory {
        LowerMemory::new(&MemConfig::baseline())
    }

    #[test]
    fn cold_miss_goes_to_dram() {
        let mut m = lower();
        let c = m.fetch_block(Cycle::ZERO, Addr::new(0x8000), 32);
        assert!(!c.l2_hit);
        // 4 (L1 bus) + 12 (L2) + 16 (mem bus) + 120 (DRAM) = 152.
        assert_eq!(c.ready, Cycle::new(152));
        assert_eq!(m.stats().l2_misses, 1);
    }

    #[test]
    fn second_access_hits_l2() {
        let mut m = lower();
        let first = m.fetch_block(Cycle::ZERO, Addr::new(0x8000), 32);
        let c = m.fetch_block(first.ready, Addr::new(0x8000), 32);
        assert!(c.l2_hit);
        assert_eq!(c.ready.since(first.ready), 4 + 12);
        assert_eq!(m.stats().l2_hits, 1);
    }

    #[test]
    fn adjacent_l1_blocks_share_l2_block() {
        let mut m = lower();
        // 0x8000 and 0x8020 are distinct 32B blocks in one 64B L2 block.
        let a = m.fetch_block(Cycle::ZERO, Addr::new(0x8000), 32);
        let b = m.fetch_block(Cycle::new(1), Addr::new(0x8020), 32);
        assert!(!a.l2_hit);
        // The second request merges with the outstanding DRAM fetch: it is
        // still a miss timing-wise and completes when the first fill does.
        assert!(!b.l2_hit, "in-flight block must not count as an L2 hit");
        assert_eq!(b.ready, a.ready);
        assert_eq!(m.l2_mem_bus().transactions(), 1, "only one DRAM fetch");
    }

    #[test]
    fn bus_contention_serializes_misses() {
        let mut m = lower();
        let a = m.fetch_block(Cycle::ZERO, Addr::new(0x10000), 32);
        let b = m.fetch_block(Cycle::ZERO, Addr::new(0x20000), 32);
        // Both go to DRAM; the L2<->memory bus serializes them by a full
        // 64B transfer (16 cycles at 4 B/cycle).
        assert_eq!(b.ready.since(a.ready), 16);
        assert_eq!(m.l1_l2_bus().busy_cycles(), 8);
    }

    #[test]
    fn l1_bus_free_gating() {
        let mut m = lower();
        assert!(m.l1_bus_free(Cycle::ZERO));
        m.fetch_block(Cycle::ZERO, Addr::new(0x100), 32);
        assert!(!m.l1_bus_free(Cycle::new(3)));
        assert!(m.l1_bus_free(Cycle::new(4)));
    }

    #[test]
    fn in_flight_entries_expire() {
        let mut m = lower();
        let c = m.fetch_block(Cycle::ZERO, Addr::new(0x8000), 32);
        // Long after completion, the same L2 block is a plain hit.
        let later = c.ready + 1000;
        let d = m.fetch_block(later, Addr::new(0x8020), 32);
        assert!(d.l2_hit);
    }

    #[test]
    fn stats_rates() {
        let mut m = lower();
        m.fetch_block(Cycle::ZERO, Addr::new(0x8000), 32);
        let t = Cycle::new(500);
        m.fetch_block(t, Addr::new(0x8000), 32);
        assert_eq!(m.stats().l2_miss_rate(), 0.5);
    }
}
