//! Pipelined fixed-latency access ports.

use psb_common::Cycle;

/// A fixed-latency port that overlaps a bounded number of accesses.
///
/// The paper's L2 "has a latency of 12 cycles, and is pipelined three
/// accesses deep": a new access can begin every `latency / depth` cycles
/// (the initiation interval), and each access completes `latency` cycles
/// after it begins.
///
/// # Example
///
/// ```
/// use psb_common::Cycle;
/// use psb_mem::ThroughputPipe;
///
/// let mut l2 = ThroughputPipe::new(12, 3); // initiation interval 4
/// assert_eq!(l2.access(Cycle::ZERO), Cycle::new(12));
/// assert_eq!(l2.access(Cycle::ZERO), Cycle::new(16)); // starts at cycle 4
/// ```
#[derive(Clone, Debug)]
pub struct ThroughputPipe {
    latency: u64,
    interval: u64,
    next_start: Cycle,
    accesses: u64,
}

impl ThroughputPipe {
    /// Creates a pipe with the given `latency` overlapping up to `depth`
    /// accesses.
    ///
    /// # Panics
    ///
    /// Panics if `latency` or `depth` is zero.
    pub fn new(latency: u64, depth: u64) -> Self {
        assert!(latency > 0, "latency must be nonzero");
        assert!(depth > 0, "pipeline depth must be nonzero");
        ThroughputPipe {
            latency,
            interval: (latency / depth).max(1),
            next_start: Cycle::ZERO,
            accesses: 0,
        }
    }

    /// The access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// The initiation interval in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Starts an access submitted at `now`; returns its completion cycle.
    pub fn access(&mut self, now: Cycle) -> Cycle {
        let start = now.max(self.next_start);
        self.next_start = start + self.interval;
        self.accesses += 1;
        start + self.latency
    }

    /// Number of accesses started.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initiation_interval_paces_accesses() {
        let mut p = ThroughputPipe::new(12, 3);
        assert_eq!(p.interval(), 4);
        // Four accesses all submitted at cycle 0.
        assert_eq!(p.access(Cycle::ZERO), Cycle::new(12));
        assert_eq!(p.access(Cycle::ZERO), Cycle::new(16));
        assert_eq!(p.access(Cycle::ZERO), Cycle::new(20));
        assert_eq!(p.access(Cycle::ZERO), Cycle::new(24));
        assert_eq!(p.accesses(), 4);
    }

    #[test]
    fn spaced_accesses_see_full_latency_only() {
        let mut p = ThroughputPipe::new(12, 3);
        assert_eq!(p.access(Cycle::new(0)), Cycle::new(12));
        assert_eq!(p.access(Cycle::new(100)), Cycle::new(112));
    }

    #[test]
    fn depth_one_fully_serializes_starts() {
        let mut p = ThroughputPipe::new(10, 1);
        assert_eq!(p.access(Cycle::ZERO), Cycle::new(10));
        // Next start is gated by the initiation interval (= latency).
        assert_eq!(p.access(Cycle::ZERO), Cycle::new(20));
    }

    #[test]
    fn degenerate_deep_pipe_still_advances() {
        let mut p = ThroughputPipe::new(2, 10); // interval clamps to 1
        assert_eq!(p.interval(), 1);
        assert_eq!(p.access(Cycle::ZERO), Cycle::new(2));
        assert_eq!(p.access(Cycle::ZERO), Cycle::new(3));
    }

    #[test]
    #[should_panic(expected = "latency must be nonzero")]
    fn zero_latency_panics() {
        ThroughputPipe::new(0, 3);
    }
}
