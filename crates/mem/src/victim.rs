//! A victim cache.
//!
//! The paper's introduction lists victim caches alongside multi-level
//! caches and prefetching as the standard miss-latency reducers; this
//! implementation lets the simulator quantify how far a victim cache
//! gets on the same workloads (`ablate_victim`) — spoiler: it recovers
//! conflict misses, which the paper's pointer chases have few of.

use crate::{Cache, CacheConfig};
use psb_common::{Addr, BlockAddr};
use psb_obs::Counter;

/// Statistics for a victim cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct VictimStats {
    /// Probes after an L1 miss.
    pub probes: u64,
    /// Probes that found the block (rescued conflict misses).
    pub hits: u64,
    /// Blocks inserted (L1 evictions).
    pub fills: u64,
}

impl VictimStats {
    /// Hit rate over probes.
    pub fn hit_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.hits as f64 / self.probes as f64
        }
    }
}

/// A small fully-associative cache holding the L1's most recent victims
/// (Jouppi 1990, the same paper that introduced stream buffers).
///
/// On an L1 miss the victim cache is probed; a hit swaps the block back
/// toward the L1 for a small fixed penalty instead of a trip down the
/// hierarchy.
///
/// # Example
///
/// ```
/// use psb_common::{Addr, BlockAddr};
/// use psb_mem::VictimCache;
///
/// let mut v = VictimCache::new(4, 32, 1);
/// v.fill(BlockAddr(7));                 // an L1 eviction
/// assert!(v.probe(Addr::new(7 * 32)));  // rescued
/// assert!(!v.probe(Addr::new(9 * 32)));
/// ```
#[derive(Clone, Debug)]
pub struct VictimCache {
    cache: Cache,
    latency: u64,
    stats: VictimStats,
    /// Live rescue counter, when attached.
    obs_rescues: Option<Counter>,
}

impl VictimCache {
    /// Creates a fully-associative victim cache of `entries` blocks of
    /// `block` bytes, with `latency` extra cycles on a hit.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `block` is not a power of two.
    pub fn new(entries: usize, block: u64, latency: u64) -> Self {
        VictimCache {
            cache: Cache::new(CacheConfig::new(entries as u64 * block, entries, block)),
            latency,
            stats: VictimStats::default(),
            obs_rescues: None,
        }
    }

    /// Attaches a counter incremented on every rescued conflict miss.
    pub fn attach_obs(&mut self, rescues: Counter) {
        self.obs_rescues = Some(rescues);
    }

    /// Probes for the block containing `addr` after an L1 miss; a hit
    /// removes the block (it moves back to the L1).
    pub fn probe(&mut self, addr: Addr) -> bool {
        self.stats.probes += 1;
        if self.cache.probe(addr) {
            self.stats.hits += 1;
            if let Some(c) = &self.obs_rescues {
                c.inc();
            }
            self.cache.invalidate(addr);
            true
        } else {
            false
        }
    }

    /// Accepts a block evicted from the L1.
    pub fn fill(&mut self, block: BlockAddr) {
        self.stats.fills += 1;
        self.cache.insert_block(block);
    }

    /// True if the victim cache currently holds `block` (non-mutating,
    /// no statistics side effects).
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.cache.probe_block(block)
    }

    /// Publishes an exclusivity observation to the invariant auditor: a
    /// block must never be resident here and in the L1 at once. The
    /// caller (who owns the L1) supplies `in_l1`.
    #[cfg(feature = "check")]
    pub fn audit_exclusive(&self, now: psb_common::Cycle, block: BlockAddr, in_l1: bool) {
        psb_check::audit(&psb_check::Snapshot::Victim {
            now,
            block,
            in_l1,
            in_victim: self.contains(block),
        });
    }

    /// The extra hit latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> VictimStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rescues_recent_victims() {
        let mut v = VictimCache::new(2, 32, 1);
        v.fill(BlockAddr(1));
        v.fill(BlockAddr(2));
        assert!(v.probe(Addr::new(32)));
        assert!(v.probe(Addr::new(64)));
        // Hits remove: the second probe of block 1 misses.
        assert!(!v.probe(Addr::new(32)));
        assert_eq!(v.stats().hits, 2);
        assert_eq!(v.stats().probes, 3);
    }

    #[test]
    fn capacity_evicts_lru() {
        let mut v = VictimCache::new(2, 32, 1);
        v.fill(BlockAddr(1));
        v.fill(BlockAddr(2));
        v.fill(BlockAddr(3)); // evicts 1
        assert!(!v.probe(Addr::new(32)));
        assert!(v.probe(Addr::new(96)));
        assert_eq!(v.stats().fills, 3);
    }

    #[test]
    fn hit_rate_math() {
        let mut v = VictimCache::new(4, 32, 2);
        assert_eq!(v.stats().hit_rate(), 0.0);
        v.fill(BlockAddr(5));
        v.probe(Addr::new(5 * 32));
        v.probe(Addr::new(6 * 32));
        assert_eq!(v.stats().hit_rate(), 0.5);
        assert_eq!(v.latency(), 2);
    }
}
