//! Set-associative tag array with true-LRU replacement.

use crate::CacheConfig;
use psb_common::{Addr, BlockAddr};

/// Hit/miss counters for one cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit a resident block.
    pub hits: u64,
    /// Accesses that missed (including accesses to in-flight blocks, which
    /// the caller records here per the paper's miss definition).
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`; 0.0 when no accesses occurred.
    pub fn miss_rate(&self) -> f64 {
        let n = self.accesses();
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }
}

/// A set-associative cache tag array with true-LRU replacement.
///
/// Only tags are modeled — a timing simulator never needs the data bytes.
/// The cache is deliberately policy-free: it does not know about MSHRs,
/// buses or latencies; those compose around it.
///
/// # Example
///
/// ```
/// use psb_common::Addr;
/// use psb_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::l1d_32k_4way());
/// assert!(!c.access(Addr::new(0x1000)));   // cold miss
/// c.insert(Addr::new(0x1000));
/// assert!(c.access(Addr::new(0x1010)));    // same 32B block: hit
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    /// Per-line tag, one flat arena indexed `set * assoc + way`.
    tags: Box<[u64]>,
    /// Per-line last-use stamp; `0` means the line is invalid (the global
    /// stamp pre-increments, so a valid line's stamp is always nonzero).
    /// Packing validity into the stamp keeps the LRU victim scan a plain
    /// unsigned minimum: invalid ways carry stamp 0 and win automatically.
    stamps: Box<[u64]>,
    num_sets: u64,
    /// `log2(num_sets)` when the set count is a power of two (every
    /// standard geometry), replacing `%` / `/` with mask/shift.
    set_shift: Option<u32>,
    stamp: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let num_sets = config.num_sets();
        let lines = (num_sets as usize) * config.assoc;
        Cache {
            config,
            tags: vec![0; lines].into_boxed_slice(),
            stamps: vec![0; lines].into_boxed_slice(),
            num_sets,
            set_shift: num_sets.is_power_of_two().then(|| num_sets.trailing_zeros()),
            stamp: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.config.block
    }

    /// Returns the block containing `addr`.
    pub fn block_of(&self, addr: Addr) -> BlockAddr {
        addr.block(self.config.block)
    }

    fn set_and_tag(&self, block: BlockAddr) -> (usize, u64) {
        match self.set_shift {
            Some(shift) => (((block.0 & (self.num_sets - 1)) as usize), block.0 >> shift),
            None => ((block.0 % self.num_sets) as usize, block.0 / self.num_sets),
        }
    }

    fn ways(&self, set: usize) -> std::ops::Range<usize> {
        let base = set * self.config.assoc;
        base..base + self.config.assoc
    }

    /// Checks residency without updating LRU state (a snoop).
    pub fn probe(&self, addr: Addr) -> bool {
        self.probe_block(self.block_of(addr))
    }

    /// Block-granularity [`Cache::probe`].
    pub fn probe_block(&self, block: BlockAddr) -> bool {
        let (set, tag) = self.set_and_tag(block);
        self.ways(set).any(|i| self.stamps[i] != 0 && self.tags[i] == tag)
    }

    /// Accesses `addr`: returns `true` on hit and promotes the block to
    /// most-recently-used. A miss changes nothing (fills are explicit via
    /// [`Cache::insert`]).
    pub fn access(&mut self, addr: Addr) -> bool {
        self.access_block(self.block_of(addr))
    }

    /// Block-granularity [`Cache::access`].
    pub fn access_block(&mut self, block: BlockAddr) -> bool {
        let (set, tag) = self.set_and_tag(block);
        self.stamp += 1;
        for i in self.ways(set) {
            if self.stamps[i] != 0 && self.tags[i] == tag {
                self.stamps[i] = self.stamp;
                return true;
            }
        }
        false
    }

    /// Installs the block containing `addr`, evicting the LRU way if the
    /// set is full. Returns the evicted block, if any.
    pub fn insert(&mut self, addr: Addr) -> Option<BlockAddr> {
        self.insert_block(self.block_of(addr))
    }

    /// Block-granularity [`Cache::insert`]. Inserting a resident block just
    /// refreshes its LRU position.
    pub fn insert_block(&mut self, block: BlockAddr) -> Option<BlockAddr> {
        let (set, tag) = self.set_and_tag(block);
        self.stamp += 1;

        // Already resident: refresh.
        for i in self.ways(set) {
            if self.stamps[i] != 0 && self.tags[i] == tag {
                self.stamps[i] = self.stamp;
                return None;
            }
        }

        // LRU victim: the minimum stamp. Invalid ways carry stamp 0, so
        // they win over any valid line automatically, and the strict `<`
        // keeps the first minimum — the same way the branchy
        // prefer-invalid scan used to choose.
        let mut slot = 0;
        let mut oldest = u64::MAX;
        for i in self.ways(set) {
            if self.stamps[i] < oldest {
                oldest = self.stamps[i];
                slot = i;
            }
        }
        let evicted_tag = (oldest != 0).then(|| self.tags[slot]);
        self.tags[slot] = tag;
        self.stamps[slot] = self.stamp;
        evicted_tag.map(|t| match self.set_shift {
            Some(shift) => BlockAddr((t << shift) | set as u64),
            // psb-lint: allow(addr-arith): tag/set recomposition, not pointer math
            None => BlockAddr(t * self.num_sets + set as u64),
        })
    }

    /// Removes the block containing `addr` if resident; returns whether it
    /// was resident.
    pub fn invalidate(&mut self, addr: Addr) -> bool {
        let (set, tag) = self.set_and_tag(self.block_of(addr));
        for i in self.ways(set) {
            if self.stamps[i] != 0 && self.tags[i] == tag {
                self.stamps[i] = 0;
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.stamps.iter().filter(|&&s| s != 0).count()
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.tags.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 32B blocks = 128 B.
        Cache::new(CacheConfig::new(128, 2, 32))
    }

    #[test]
    fn cold_miss_then_hit_after_fill() {
        let mut c = tiny();
        let a = Addr::new(0x100);
        assert!(!c.access(a));
        assert!(c.insert(a).is_none());
        assert!(c.access(a));
        assert!(c.probe(a));
    }

    #[test]
    fn same_block_aliases() {
        let mut c = tiny();
        c.insert(Addr::new(0x100));
        assert!(c.access(Addr::new(0x11f))); // last byte of same block
        assert!(!c.access(Addr::new(0x120))); // next block
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // These three map to the same set (set = block % 2): choose blocks
        // 0, 2, 4 (even => set 0).
        let a = BlockAddr(0);
        let b = BlockAddr(2);
        let d = BlockAddr(4);
        c.insert_block(a);
        c.insert_block(b);
        // Touch a so b becomes LRU.
        assert!(c.access_block(a));
        let evicted = c.insert_block(d);
        assert_eq!(evicted, Some(b));
        assert!(c.probe_block(a));
        assert!(c.probe_block(d));
        assert!(!c.probe_block(b));
    }

    #[test]
    fn insert_resident_refreshes_lru() {
        let mut c = tiny();
        let a = BlockAddr(0);
        let b = BlockAddr(2);
        let d = BlockAddr(4);
        c.insert_block(a);
        c.insert_block(b);
        assert!(c.insert_block(a).is_none()); // refresh, no eviction
        assert_eq!(c.insert_block(d), Some(b)); // b is now LRU
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = tiny();
        let a = BlockAddr(0);
        let b = BlockAddr(2);
        let d = BlockAddr(4);
        c.insert_block(a);
        c.insert_block(b);
        assert!(c.probe_block(a)); // probe must NOT refresh a
        assert_eq!(c.insert_block(d), Some(a));
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        let a = Addr::new(0x40);
        c.insert(a);
        assert!(c.invalidate(a));
        assert!(!c.probe(a));
        assert!(!c.invalidate(a));
    }

    #[test]
    fn occupancy_counts() {
        let mut c = tiny();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.capacity_lines(), 4);
        c.insert_block(BlockAddr(0));
        c.insert_block(BlockAddr(1));
        c.insert_block(BlockAddr(2));
        assert_eq!(c.occupancy(), 3);
    }

    #[test]
    fn evicted_block_address_round_trips() {
        // Fill a set completely, then overflow it; the evicted block must
        // map back to the same set.
        let mut c = Cache::new(CacheConfig::new(1024, 2, 32)); // 16 sets
        let s = 5u64;
        let b0 = BlockAddr(s);
        let b1 = BlockAddr(s + 16);
        let b2 = BlockAddr(s + 32);
        c.insert_block(b0);
        c.insert_block(b1);
        let ev = c.insert_block(b2).expect("must evict");
        assert_eq!(ev, b0);
        assert_eq!(ev.0 % 16, s);
    }

    #[test]
    fn stats_helpers() {
        let mut s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert_eq!(s.accesses(), 4);
        assert_eq!(s.miss_rate(), 0.25);
    }

    #[test]
    fn odd_set_count_fallback_round_trips_evictions() {
        // CacheConfig::new rejects non-power-of-two set counts, but the
        // cache itself supports them through the `%`/`/` fallback; build
        // the config literally to pin that path. 3 sets, direct-mapped.
        let mut c = Cache::new(CacheConfig { size: 96, assoc: 1, block: 32 });
        let b = BlockAddr(7); // set 1, tag 2
        c.insert_block(b);
        assert!(c.probe_block(b));
        assert!(!c.probe_block(BlockAddr(10))); // set 1, tag 3: must miss
        let ev = c.insert_block(BlockAddr(16)); // set 1, tag 5: evicts 7
        assert_eq!(ev, Some(b));
    }
}
