//! Data TLB with on-demand linear page mapping.

use crate::{Cache, CacheConfig};
use psb_common::{Addr, Cycle, PageAddr};
use std::collections::HashMap;

/// TLB hit/miss counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations that hit.
    pub hits: u64,
    /// Translations that missed and paid the walk penalty.
    pub misses: u64,
    /// Misses triggered by prefetch translations (a subset of `misses`);
    /// these are the paper's "TLB prefetching" events.
    pub prefetch_misses: u64,
}

/// A set-associative data TLB over virtual page numbers.
///
/// The predictors in this reproduction predict the *virtual* address
/// stream, exactly as in the paper ("we store the virtual effective
/// address of a load in our predictor, \[so\] we need to translate this to a
/// physical address before we access memory"). A prefetch therefore
/// performs a TLB access and, on a miss, a page walk plus replacement —
/// which doubles as TLB prefetching for the later demand access.
///
/// Physical pages are assigned linearly on first touch, which stands in
/// for the operating system's page allocator (see DESIGN.md §4).
///
/// # Example
///
/// ```
/// use psb_common::{Addr, Cycle};
/// use psb_mem::Tlb;
///
/// let mut tlb = Tlb::new(128, 4, 8192, 30);
/// let (ready, hit) = tlb.translate(Cycle::ZERO, Addr::new(0x1234), false);
/// assert!(!hit);                       // cold miss pays the walk
/// assert_eq!(ready, Cycle::new(30));
/// let (ready, hit) = tlb.translate(ready, Addr::new(0x1234), false);
/// assert!(hit);
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Cache,
    page_size: u64,
    miss_latency: u64,
    page_table: HashMap<PageAddr, u64>,
    next_ppn: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates a TLB with `entries` slots of associativity `assoc` over
    /// pages of `page_size` bytes, with a miss penalty of `miss_latency`
    /// cycles.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::new`]).
    pub fn new(entries: usize, assoc: usize, page_size: u64, miss_latency: u64) -> Self {
        // Reuse the cache tag array: one "byte" per page, block size 1.
        let config = CacheConfig::new(entries as u64, assoc, 1);
        Tlb {
            entries: Cache::new(config),
            page_size,
            miss_latency,
            page_table: HashMap::new(),
            next_ppn: 0x10,
            stats: TlbStats::default(),
        }
    }

    /// Translates the page containing `addr` at `now`.
    ///
    /// Returns `(ready, hit)`: the cycle at which the translation is
    /// available, and whether it hit. A miss installs the entry, so a
    /// prefetch miss (`is_prefetch = true`) leaves the translation warm for
    /// the demand access that follows.
    pub fn translate(&mut self, now: Cycle, addr: Addr, is_prefetch: bool) -> (Cycle, bool) {
        let vpn = addr.page(self.page_size);
        let key = Addr::new(vpn.0);
        if self.entries.access(key) {
            self.stats.hits += 1;
            (now, true)
        } else {
            self.stats.misses += 1;
            if is_prefetch {
                self.stats.prefetch_misses += 1;
            }
            self.page_of(vpn); // ensure the mapping exists
            self.entries.insert(key);
            (now + self.miss_latency, false)
        }
    }

    /// Returns the physical page number for `vpn`, assigning one linearly
    /// on first touch.
    pub fn page_of(&mut self, vpn: PageAddr) -> u64 {
        let next = &mut self.next_ppn;
        *self.page_table.entry(vpn).or_insert_with(|| {
            let ppn = *next;
            *next += 1;
            ppn
        })
    }

    /// The miss penalty in cycles.
    pub fn miss_latency(&self) -> u64 {
        self.miss_latency
    }

    /// Translates a virtual address to a physical one, assigning a page if
    /// needed (no timing, no TLB state change — used for cache indexing).
    pub fn physical(&mut self, addr: Addr) -> Addr {
        let vpn = addr.page(self.page_size);
        let ppn = self.page_of(vpn);
        Addr::new(ppn * self.page_size + addr.offset_in(self.page_size))
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(16, 4, 8192, 30)
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tlb();
        let (r1, h1) = t.translate(Cycle::ZERO, Addr::new(0x100), false);
        assert!(!h1);
        assert_eq!(r1, Cycle::new(30));
        let (r2, h2) = t.translate(Cycle::new(40), Addr::new(0x1fff), false);
        assert!(h2, "same page must hit");
        assert_eq!(r2, Cycle::new(40));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn prefetch_miss_warms_demand() {
        let mut t = tlb();
        let (_, hit) = t.translate(Cycle::ZERO, Addr::new(0x4000), true);
        assert!(!hit);
        assert_eq!(t.stats().prefetch_misses, 1);
        let (_, hit) = t.translate(Cycle::new(50), Addr::new(0x4008), false);
        assert!(hit, "prefetch translation must warm the TLB");
    }

    #[test]
    fn distinct_pages_distinct_ppns() {
        let mut t = tlb();
        let p0 = t.page_of(PageAddr(0));
        let p1 = t.page_of(PageAddr(1));
        let p0_again = t.page_of(PageAddr(0));
        assert_ne!(p0, p1);
        assert_eq!(p0, p0_again);
    }

    #[test]
    fn physical_preserves_page_offset() {
        let mut t = tlb();
        let va = Addr::new(3 * 8192 + 0x123);
        let pa = t.physical(va);
        assert_eq!(pa.raw() % 8192, 0x123);
        // Same page, same frame.
        let pa2 = t.physical(Addr::new(3 * 8192 + 0x200));
        assert_eq!(pa.raw() / 8192, pa2.raw() / 8192);
    }

    #[test]
    fn capacity_eviction_causes_repeat_miss() {
        let mut t = Tlb::new(2, 2, 8192, 30); // 2 entries total
        t.translate(Cycle::ZERO, Addr::new(0), false);
        t.translate(Cycle::ZERO, Addr::new(8192), false);
        t.translate(Cycle::ZERO, Addr::new(2 * 8192), false); // evicts page 0
        let (_, hit) = t.translate(Cycle::ZERO, Addr::new(0), false);
        assert!(!hit);
        assert_eq!(t.stats().misses, 4);
    }
}
