//! Memory-hierarchy substrate for the PSB simulator.
//!
//! The paper evaluates Predictor-Directed Stream Buffers on a rewritten
//! SimpleScalar memory system that models "bus occupancy, bandwidth, and
//! pipelining of the second level cache and main memory". This crate
//! provides those pieces:
//!
//! * [`Cache`] — a set-associative tag array with true-LRU replacement.
//! * [`Mshr`] — miss status holding registers, so that in-flight blocks can
//!   be merged and counted the way the paper counts them ("accesses to
//!   in-flight data count as cache misses").
//! * [`Bus`] — a single-occupancy, bandwidth-limited bus (8 B/cycle between
//!   L1 and L2; 4 B/cycle between L2 and memory).
//! * [`ThroughputPipe`] — the pipelined L2 access port (12-cycle latency,
//!   three accesses deep).
//! * [`Tlb`] — a data TLB with on-demand linear page mapping, so that
//!   prefetches of *virtual* predicted addresses can be translated
//!   (the paper's "TLB prefetching").
//! * [`LowerMemory`] — the composed L2 + memory system behind the L1,
//!   through which both demand misses and stream-buffer prefetches travel.
//!
//! All components are driven by the caller's clock: methods take the
//! current [`Cycle`](psb_common::Cycle) and return completion times; there
//! is no hidden event loop.
//!
//! # Example
//!
//! ```
//! use psb_common::{Addr, Cycle};
//! use psb_mem::{LowerMemory, MemConfig};
//!
//! let mut lower = LowerMemory::new(&MemConfig::baseline());
//! let c = lower.fetch_block(Cycle::ZERO, Addr::new(0x4000), 32);
//! assert!(!c.l2_hit);                  // cold: first touch goes to DRAM
//! assert!(c.ready > Cycle::new(100));  // ... and pays the memory latency
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod cache;
mod config;
mod l1;
mod lower;
mod mshr;
mod pipe;
mod tlb;
mod victim;

pub use bus::Bus;
pub use cache::{Cache, CacheStats};
pub use config::{CacheConfig, MemConfig};
pub use l1::{L1Access, L1Cache};
pub use lower::{Completion, LowerMemory, LowerStats};
pub use mshr::{Mshr, MshrError};
pub use pipe::ThroughputPipe;
pub use tlb::{Tlb, TlbStats};
pub use victim::{VictimCache, VictimStats};
