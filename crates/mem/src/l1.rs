//! First-level cache with miss tracking.

use crate::{Cache, CacheConfig, CacheStats, Mshr, MshrError};
use psb_common::{Addr, BlockAddr, Cycle};

/// Outcome of an L1 lookup.
///
/// The paper defines a cache miss as "an access to a cache block which is
/// not currently resident in the cache, i.e. accesses to in-flight data
/// count as cache misses" — hence the three-way split.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum L1Access {
    /// The block is resident; data available at `ready`.
    Hit {
        /// Completion cycle (lookup latency after the access).
        ready: Cycle,
    },
    /// The block is being filled by an earlier miss; counted as a miss,
    /// but no new request is needed.
    InFlight {
        /// Cycle the outstanding fill completes.
        ready: Cycle,
    },
    /// The block is neither resident nor in flight; the caller must fetch
    /// it (from a stream buffer or the lower memory system).
    Miss,
}

/// An L1 cache: tag array + MSHRs + the paper's miss accounting.
///
/// The L1 does not know where fills come from — the simulator routes a
/// miss to the stream buffers and/or [`LowerMemory`](crate::LowerMemory)
/// and then calls [`L1Cache::start_fill`] (asynchronous fill through the
/// MSHRs) or [`L1Cache::install`] (immediate move, used when a stream
/// buffer already holds the block).
///
/// # Example
///
/// ```
/// use psb_common::{Addr, Cycle};
/// use psb_mem::{CacheConfig, L1Access, L1Cache};
///
/// let mut l1 = L1Cache::new(CacheConfig::l1d_32k_4way(), 1, 16);
/// assert_eq!(l1.lookup(Cycle::ZERO, Addr::new(0x40)), L1Access::Miss);
/// l1.start_fill(l1.block_of(Addr::new(0x40)), Cycle::new(152)).unwrap();
/// // While in flight, later accesses are "in-flight misses":
/// match l1.lookup(Cycle::new(10), Addr::new(0x44)) {
///     L1Access::InFlight { ready } => assert_eq!(ready, Cycle::new(152)),
///     other => panic!("unexpected {other:?}"),
/// }
/// // After completion the fill drains into the tag array:
/// assert!(matches!(l1.lookup(Cycle::new(200), Addr::new(0x40)), L1Access::Hit { .. }));
/// ```
#[derive(Clone, Debug)]
pub struct L1Cache {
    cache: Cache,
    mshr: Mshr,
    latency: u64,
    stats: CacheStats,
    evicted: Vec<BlockAddr>,
}

impl L1Cache {
    /// Creates an L1 with the given geometry, hit `latency`, and number of
    /// MSHRs.
    pub fn new(config: CacheConfig, latency: u64, mshrs: usize) -> Self {
        L1Cache {
            cache: Cache::new(config),
            mshr: Mshr::new(mshrs),
            latency,
            stats: CacheStats::default(),
            evicted: Vec::new(),
        }
    }

    /// Attaches observability handles to the MSHR file: occupancy gauge
    /// and full-reject counter (named by the caller, e.g.
    /// `l1d.mshr.occupancy`).
    pub fn attach_obs(&mut self, occupancy: psb_obs::Gauge, full_rejects: psb_obs::Counter) {
        self.mshr.attach_obs(occupancy, full_rejects);
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u64 {
        self.cache.block_size()
    }

    /// The block containing `addr`.
    pub fn block_of(&self, addr: Addr) -> BlockAddr {
        self.cache.block_of(addr)
    }

    /// Moves fills that completed by `now` from the MSHRs into the tag
    /// array. Called implicitly by [`L1Cache::lookup`]; exposed for the
    /// simulator's per-cycle housekeeping.
    pub fn drain(&mut self, now: Cycle) {
        for block in self.mshr.drain_ready(now) {
            if let Some(victim) = self.cache.insert_block(block) {
                self.record_eviction(victim);
            }
        }
    }

    /// Queues an eviction for [`L1Cache::take_evicted`], bounded so the
    /// queue stays small when nobody consumes it (no victim cache).
    fn record_eviction(&mut self, victim: BlockAddr) {
        if self.evicted.len() >= 64 {
            self.evicted.remove(0);
        }
        self.evicted.push(victim);
    }

    /// Performs a demand access at `now`, updating LRU state and the
    /// hit/miss statistics.
    pub fn lookup(&mut self, now: Cycle, addr: Addr) -> L1Access {
        self.drain(now);
        let block = self.block_of(addr);
        if self.cache.access_block(block) {
            self.stats.hits += 1;
            L1Access::Hit { ready: now + self.latency }
        } else if let Some(ready) = self.mshr.lookup(block) {
            self.stats.misses += 1;
            L1Access::InFlight { ready }
        } else {
            self.stats.misses += 1;
            L1Access::Miss
        }
    }

    /// Checks residency without touching LRU or statistics.
    pub fn probe(&self, addr: Addr) -> bool {
        self.cache.probe(addr)
    }

    /// True if `block` is resident or in flight (used to suppress
    /// redundant prefetches).
    pub fn covers_block(&self, block: BlockAddr) -> bool {
        self.cache.probe_block(block) || self.mshr.contains(block)
    }

    /// Starts an asynchronous fill of `block` completing at `ready`.
    ///
    /// # Errors
    ///
    /// Returns [`MshrError::Full`] if no MSHR is free; the caller must
    /// retry (a structural stall).
    pub fn start_fill(&mut self, block: BlockAddr, ready: Cycle) -> Result<(), MshrError> {
        self.mshr.allocate(block, ready)
    }

    /// Immediately installs the block containing `addr` (a move from a
    /// stream buffer). Returns the evicted block, if any (also queued
    /// for [`L1Cache::take_evicted`]).
    pub fn install(&mut self, addr: Addr) -> Option<BlockAddr> {
        let victim = self.cache.insert(addr);
        if let Some(v) = victim {
            self.record_eviction(v);
        }
        victim
    }

    /// Drains the queue of blocks this cache has evicted since the last
    /// call — the feed for a victim cache.
    pub fn take_evicted(&mut self) -> Vec<BlockAddr> {
        std::mem::take(&mut self.evicted)
    }

    /// True if every MSHR is occupied.
    pub fn mshrs_full(&self) -> bool {
        self.mshr.is_full()
    }

    /// Number of fills currently outstanding.
    pub fn fills_in_flight(&self) -> usize {
        self.mshr.in_flight()
    }

    /// Total number of MSHRs (the miss-parallelism bound).
    pub fn mshr_capacity(&self) -> usize {
        self.mshr.capacity()
    }

    /// Hit/miss statistics (in-flight accesses counted as misses).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The L1 hit latency in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Cache {
        L1Cache::new(CacheConfig::new(1024, 2, 32), 1, 4)
    }

    #[test]
    fn miss_fill_hit_lifecycle() {
        let mut c = l1();
        let a = Addr::new(0x200);
        assert_eq!(c.lookup(Cycle::ZERO, a), L1Access::Miss);
        c.start_fill(c.block_of(a), Cycle::new(50)).unwrap();
        assert_eq!(c.lookup(Cycle::new(10), a), L1Access::InFlight { ready: Cycle::new(50) });
        assert_eq!(c.lookup(Cycle::new(50), a), L1Access::Hit { ready: Cycle::new(51) });
        // Two misses (cold + in-flight), one hit.
        assert_eq!(c.stats().misses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn install_is_immediate() {
        let mut c = l1();
        let a = Addr::new(0x400);
        c.install(a);
        assert!(matches!(c.lookup(Cycle::ZERO, a), L1Access::Hit { .. }));
    }

    #[test]
    fn covers_block_sees_inflight_and_resident() {
        let mut c = l1();
        let a = Addr::new(0x600);
        let b = c.block_of(a);
        assert!(!c.covers_block(b));
        c.start_fill(b, Cycle::new(100)).unwrap();
        assert!(c.covers_block(b));
        c.drain(Cycle::new(100));
        assert!(c.covers_block(b));
        assert_eq!(c.fills_in_flight(), 0);
    }

    #[test]
    fn mshr_capacity_limits_fills() {
        let mut c = l1();
        for i in 0..4u64 {
            c.start_fill(BlockAddr(100 + i), Cycle::new(1000)).unwrap();
        }
        assert!(c.mshrs_full());
        assert_eq!(c.start_fill(BlockAddr(999), Cycle::new(1000)), Err(MshrError::Full));
    }

    #[test]
    fn probe_neutral() {
        let mut c = l1();
        let a = Addr::new(0x40);
        c.install(a);
        let before = c.stats();
        assert!(c.probe(a));
        assert!(!c.probe(Addr::new(0x4000)));
        assert_eq!(c.stats(), before);
    }
}
