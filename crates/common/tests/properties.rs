//! Property-based tests for the shared primitives.

use proptest::prelude::*;
use psb_common::stats::{Histogram, Ratio, RunningMean};
use psb_common::{Addr, BlockAddr, SatCounter, SplitMix64};

proptest! {
    #[test]
    fn below_always_in_bounds(seed: u64, bound in 1u64..=u64::MAX) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn range_always_in_bounds(seed: u64, lo in 0u64..1 << 60, span in 1u64..1 << 30) {
        let mut rng = SplitMix64::new(seed);
        let hi = lo + span;
        for _ in 0..16 {
            let v = rng.range(lo, hi);
            prop_assert!((lo..hi).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation(seed: u64, len in 0usize..200) {
        let mut rng = SplitMix64::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..len).collect::<Vec<_>>());
    }

    #[test]
    fn sat_counter_always_in_range(max in 0u32..1000, ops in proptest::collection::vec(any::<(bool, u32)>(), 0..64)) {
        let mut c = SatCounter::new(max);
        for (up, n) in ops {
            if up { c.inc_by(n % 50) } else { c.dec_by(n % 50) }
            prop_assert!(c.get() <= max);
        }
    }

    #[test]
    fn addr_block_round_trip(raw in 0u64..1 << 48, shift in 4u32..12) {
        let block_size = 1u64 << shift;
        let a = Addr::new(raw);
        let b = a.block(block_size);
        let base = b.base(block_size);
        prop_assert!(base.raw() <= raw);
        prop_assert!(raw - base.raw() < block_size);
        prop_assert_eq!(base.block(block_size), b);
    }

    #[test]
    fn addr_delta_offset_inverse(a in 0u64..1 << 62, b in 0u64..1 << 62) {
        let (x, y) = (Addr::new(a), Addr::new(b));
        let d = y.delta(x);
        prop_assert_eq!(x.offset(d), y);
    }

    #[test]
    fn block_delta_offset_inverse(a in 0u64..1 << 50, b in 0u64..1 << 50) {
        let (x, y) = (BlockAddr(a), BlockAddr(b));
        prop_assert_eq!(x.offset(y.delta(x)), y);
    }

    #[test]
    fn running_mean_bounded_by_min_max(samples in proptest::collection::vec(0u64..1 << 40, 1..64)) {
        let mut m = RunningMean::new();
        for &s in &samples {
            m.add(s);
        }
        let mean = m.mean();
        prop_assert!(mean >= m.min().unwrap() as f64 - 1e-9);
        prop_assert!(mean <= m.max().unwrap() as f64 + 1e-9);
        prop_assert_eq!(m.count(), samples.len() as u64);
    }

    #[test]
    fn ratio_fraction_in_unit_interval(events in proptest::collection::vec(any::<bool>(), 0..128)) {
        let mut r = Ratio::new();
        for e in events {
            r.record(e);
        }
        prop_assert!((0.0..=1.0).contains(&r.fraction()));
        prop_assert_eq!(r.hits() + r.misses(), r.total());
    }

    #[test]
    fn histogram_cdf_monotone(samples in proptest::collection::vec(0u64..40, 1..128)) {
        let mut h = Histogram::new(32);
        for &s in &samples {
            h.add(s);
        }
        let mut prev = 0.0;
        for i in 0..32 {
            let c = h.cdf(i);
            prop_assert!(c >= prev - 1e-12, "cdf must be monotone");
            prop_assert!(c <= 1.0 + 1e-12);
            prev = c;
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
    }
}
