//! Property-style tests for the shared primitives, driven by the
//! crate's own deterministic PRNG so they run offline with no external
//! test framework. Each test sweeps a few hundred pseudo-random cases
//! from fixed seeds; failures print the derived seed for replay.

use psb_common::stats::{Histogram, Ratio, RunningMean};
use psb_common::{Addr, BlockAddr, SatCounter, SplitMix64};

const CASES: u64 = 200;

#[test]
fn below_always_in_bounds() {
    let mut meta = SplitMix64::new(0xA11CE);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let bound = meta.next_u64().max(1);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..32 {
            let v = rng.below(bound);
            assert!(v < bound, "case {case}: {v} >= {bound}");
        }
    }
}

#[test]
fn range_always_in_bounds() {
    let mut meta = SplitMix64::new(0xB0B);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let lo = meta.below(1 << 60);
        let span = meta.below(1 << 30).max(1);
        let hi = lo + span;
        let mut rng = SplitMix64::new(seed);
        for _ in 0..16 {
            let v = rng.range(lo, hi);
            assert!((lo..hi).contains(&v), "case {case}: {v} outside [{lo},{hi})");
        }
    }
}

#[test]
fn shuffle_is_permutation() {
    let mut meta = SplitMix64::new(0x5487);
    for case in 0..CASES {
        let seed = meta.next_u64();
        let len = meta.below(200) as usize;
        let mut rng = SplitMix64::new(seed);
        let mut v: Vec<usize> = (0..len).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..len).collect::<Vec<_>>(), "case {case}");
    }
}

#[test]
fn sat_counter_always_in_range() {
    let mut meta = SplitMix64::new(0xC0DE);
    for case in 0..CASES {
        let max = meta.below(1000) as u32;
        let ops = meta.below(64);
        let mut c = SatCounter::new(max);
        for _ in 0..ops {
            let up = meta.below(2) == 0;
            let n = meta.below(50) as u32;
            if up {
                c.inc_by(n)
            } else {
                c.dec_by(n)
            }
            assert!(c.get() <= max, "case {case}: {} > {max}", c.get());
        }
    }
}

#[test]
fn addr_block_round_trip() {
    let mut meta = SplitMix64::new(0xB10C);
    for case in 0..CASES {
        let raw = meta.below(1 << 48);
        let shift = 4 + meta.below(8) as u32;
        let block_size = 1u64 << shift;
        let a = Addr::new(raw);
        let b = a.block(block_size);
        let base = b.base(block_size);
        assert!(base.raw() <= raw, "case {case}");
        assert!(raw - base.raw() < block_size, "case {case}");
        assert_eq!(base.block(block_size), b, "case {case}");
    }
}

#[test]
fn addr_delta_offset_inverse() {
    let mut meta = SplitMix64::new(0xDE17A);
    for case in 0..CASES {
        let (a, b) = (meta.below(1 << 62), meta.below(1 << 62));
        let (x, y) = (Addr::new(a), Addr::new(b));
        let d = y.delta(x);
        assert_eq!(x.offset(d), y, "case {case}: {a} -> {b}");
    }
}

#[test]
fn block_delta_offset_inverse() {
    let mut meta = SplitMix64::new(0x0FF5E7);
    for case in 0..CASES {
        let (a, b) = (meta.below(1 << 50), meta.below(1 << 50));
        let (x, y) = (BlockAddr(a), BlockAddr(b));
        assert_eq!(x.offset(y.delta(x)), y, "case {case}: {a} -> {b}");
    }
}

#[test]
fn running_mean_bounded_by_min_max() {
    let mut meta = SplitMix64::new(0x3EA9);
    for case in 0..CASES {
        let n = 1 + meta.below(63);
        let mut m = RunningMean::new();
        for _ in 0..n {
            m.add(meta.below(1 << 40));
        }
        let mean = m.mean();
        let min = m.min().expect("at least one sample added") as f64;
        let max = m.max().expect("at least one sample added") as f64;
        assert!(mean >= min - 1e-9, "case {case}");
        assert!(mean <= max + 1e-9, "case {case}");
        assert_eq!(m.count(), n, "case {case}");
    }
}

#[test]
fn ratio_fraction_in_unit_interval() {
    let mut meta = SplitMix64::new(0x9A710);
    for case in 0..CASES {
        let n = meta.below(128);
        let mut r = Ratio::new();
        for _ in 0..n {
            r.record(meta.below(2) == 0);
        }
        assert!((0.0..=1.0).contains(&r.fraction()), "case {case}");
        assert_eq!(r.hits() + r.misses(), r.total(), "case {case}");
    }
}

#[test]
fn histogram_cdf_monotone() {
    let mut meta = SplitMix64::new(0x41570);
    for case in 0..CASES {
        let n = 1 + meta.below(127);
        let mut h = Histogram::new(32);
        for _ in 0..n {
            h.add(meta.below(40));
        }
        let mut prev = 0.0;
        for i in 0..32 {
            let c = h.cdf(i);
            assert!(c >= prev - 1e-12, "case {case}: cdf must be monotone");
            assert!(c <= 1.0 + 1e-12, "case {case}");
            prev = c;
        }
        assert_eq!(h.total(), n, "case {case}");
    }
}
