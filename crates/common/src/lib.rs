//! Shared primitives for the Predictor-Directed Stream Buffer simulator.
//!
//! This crate collects the small, dependency-free building blocks used by
//! every other crate in the workspace:
//!
//! * [`Addr`] / [`Cycle`] — newtypes for byte addresses and simulation time,
//!   so that the two most commonly confused `u64` quantities in a
//!   cycle-level simulator cannot be mixed up silently.
//! * [`SatCounter`] — saturating up/down counters, the workhorse of every
//!   confidence and priority mechanism in the paper.
//! * [`SplitMix64`] — a tiny deterministic PRNG so that workload traces are
//!   reproducible bit-for-bit across platforms and toolchain versions.
//! * [`stats`] — running means, ratios and histograms used by the
//!   experiment harness.
//!
//! # Example
//!
//! ```
//! use psb_common::{Addr, SatCounter};
//!
//! let a = Addr::new(0x1040);
//! assert_eq!(a.block(32).0, 0x1040 / 32);
//!
//! let mut conf = SatCounter::new(7);
//! conf.inc();
//! conf.inc();
//! assert_eq!(conf.get(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod counter;
mod cycle;
/// Metric handles (counters, histograms, gauges) shared with `psb-obs`.
pub mod metrics;
mod rng;
/// Streaming statistics: counters, ratios, running means, histograms.
pub mod stats;

pub use addr::{Addr, BlockAddr, PageAddr};
pub use counter::SatCounter;
pub use cycle::Cycle;
pub use rng::SplitMix64;
