//! Byte, cache-block and page address newtypes.

// psb-lint: allow-file(addr-arith): this module is the sanctioned home
// of raw address arithmetic — the offset/delta helpers the rule points
// every caller to are defined here.

use std::fmt;
use std::ops::{Add, Sub};

/// A virtual or physical byte address.
///
/// The simulator works on a 64-bit flat address space. `Addr` deliberately
/// does not implement arithmetic with plain integers beyond explicit
/// `offset`/`delta` helpers so that unit mistakes (bytes vs. blocks) are
/// caught at compile time.
///
/// # Example
///
/// ```
/// use psb_common::Addr;
/// let a = Addr::new(0x2000);
/// assert_eq!(a.offset(64), Addr::new(0x2040));
/// assert_eq!(a.block(32).0, 0x100);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// Creates an address from a raw byte value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache-block index for a block of `block_size` bytes.
    ///
    /// Implemented as a shift (block sizes are powers of two by
    /// contract), so the hottest address mapping in the simulator has no
    /// division and no panic path.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `block_size` is not a power of two.
    #[inline]
    pub fn block(self, block_size: u64) -> BlockAddr {
        debug_assert!(block_size.is_power_of_two());
        BlockAddr(self.0 >> block_size.trailing_zeros())
    }

    /// Returns the page index for a page of `page_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `page_size` is not a power of two.
    #[inline]
    pub fn page(self, page_size: u64) -> PageAddr {
        debug_assert!(page_size.is_power_of_two());
        PageAddr(self.0 >> page_size.trailing_zeros())
    }

    /// Returns the byte offset of this address within its `page_size`
    /// page — the sanctioned replacement for `addr.raw() % page_size`
    /// at translation boundaries.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `page_size` is not a power of two.
    #[inline]
    pub fn offset_in(self, page_size: u64) -> u64 {
        debug_assert!(page_size.is_power_of_two());
        self.0 & (page_size - 1)
    }

    /// Returns the instruction-word index (`raw >> 2`) as a table key —
    /// the sanctioned home of the PC-to-`usize` narrowing every
    /// PC-indexed predictor table performs.
    #[inline]
    pub fn word_index(self) -> usize {
        (self.0 >> 2) as usize
    }

    /// Returns the address rounded down to the containing block boundary.
    #[inline]
    pub fn block_base(self, block_size: u64) -> Addr {
        debug_assert!(block_size.is_power_of_two());
        Addr(self.0 & !(block_size - 1))
    }

    /// Returns this address displaced by a signed byte `delta`
    /// (wrapping on overflow, as hardware adders do).
    #[inline]
    pub fn offset(self, delta: i64) -> Addr {
        Addr(self.0.wrapping_add(delta as u64))
    }

    /// Returns the signed byte distance `self - earlier`.
    #[inline]
    pub fn delta(self, earlier: Addr) -> i64 {
        self.0.wrapping_sub(earlier.0) as i64
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A cache-block index (byte address divided by the block size).
///
/// Stream buffers, the Markov predictor and the miss-stream statistics all
/// operate at block granularity; this newtype keeps those quantities from
/// being confused with byte addresses.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(pub u64);

impl BlockAddr {
    /// Converts back to the byte address of the first byte in the block.
    #[inline]
    pub fn base(self, block_size: u64) -> Addr {
        Addr(self.0 * block_size)
    }

    /// Returns the block displaced by a signed block-count `delta`.
    #[inline]
    pub fn offset(self, delta: i64) -> BlockAddr {
        BlockAddr(self.0.wrapping_add(delta as u64))
    }

    /// Returns the signed block distance `self - earlier`.
    #[inline]
    pub fn delta(self, earlier: BlockAddr) -> i64 {
        self.0.wrapping_sub(earlier.0) as i64
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockAddr({:#x})", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

impl Add<i64> for BlockAddr {
    type Output = BlockAddr;
    fn add(self, rhs: i64) -> BlockAddr {
        self.offset(rhs)
    }
}

impl Sub for BlockAddr {
    type Output = i64;
    fn sub(self, rhs: BlockAddr) -> i64 {
        self.delta(rhs)
    }
}

/// A virtual or physical page index.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageAddr(pub u64);

impl fmt::Debug for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PageAddr({:#x})", self.0)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_rounding() {
        let a = Addr::new(0x1037);
        assert_eq!(a.block(32), BlockAddr(0x1037 / 32));
        assert_eq!(a.block_base(32), Addr::new(0x1020));
        assert_eq!(a.block_base(64), Addr::new(0x1000));
    }

    #[test]
    fn page_rounding() {
        let a = Addr::new(0x12345);
        assert_eq!(a.page(4096), PageAddr(0x12));
    }

    #[test]
    fn signed_deltas() {
        let a = Addr::new(0x1000);
        let b = Addr::new(0x0f00);
        assert_eq!(a.delta(b), 0x100);
        assert_eq!(b.delta(a), -0x100);
        assert_eq!(a.offset(-0x100), b);
    }

    #[test]
    fn block_arithmetic() {
        let b = BlockAddr(100);
        assert_eq!(b + 5, BlockAddr(105));
        assert_eq!(b + (-5), BlockAddr(95));
        assert_eq!(BlockAddr(105) - b, 5);
        assert_eq!(b - BlockAddr(105), -5);
        assert_eq!(b.base(32), Addr::new(3200));
    }

    #[test]
    fn delta_wraps_like_hardware() {
        let hi = Addr::new(u64::MAX - 3);
        let lo = Addr::new(4);
        assert_eq!(lo.delta(hi), 8);
        assert_eq!(hi.offset(8), lo);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", Addr::new(255)), "0xff");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
        assert_eq!(format!("{}", BlockAddr(16)), "blk:0x10");
    }
}
