//! Metric handles: counters, log2-bucketed histograms and sampled
//! gauges behind cheap cloneable cells.
//!
//! These are the hot-path half of the observability layer. Components
//! hold an `Option<Counter>`-style handle, acquired once at attach
//! time, and update it inline — an `Rc<Cell<u64>>` increment for
//! counters, a `RefCell` borrow for histograms and gauges. Components
//! that are never attached pay nothing: their fields stay `None`.
//!
//! The handles live in `psb-common` (not `psb-obs`) so that core
//! simulation crates can *report* metrics without depending on the
//! observability hub; the registry that names, collects and serializes
//! handles stays in `psb-obs` (`psb_obs::metrics::Registry`), which
//! re-exports these types.

use crate::stats::{GaugeStats, Log2Histogram};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// A monotonically increasing counter handle. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Rc<Cell<u64>>,
}

impl Counter {
    /// Creates a detached counter (not registered anywhere).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.cell.set(self.cell.get() + 1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.set(self.cell.get() + n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.get()
    }
}

/// A log2-bucketed histogram handle. Cloning shares the storage.
#[derive(Clone, Debug, Default)]
pub struct Hist {
    inner: Rc<RefCell<Log2Histogram>>,
}

impl Hist {
    /// Creates a detached histogram.
    pub fn new() -> Hist {
        Hist::default()
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, sample: u64) {
        self.inner.borrow_mut().add(sample);
    }

    /// Copies out the underlying accumulator.
    pub fn snapshot(&self) -> Log2Histogram {
        self.inner.borrow().clone()
    }
}

/// A sampled gauge handle. Cloning shares the storage.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    inner: Rc<RefCell<GaugeStats>>,
}

impl Gauge {
    /// Creates a detached gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Records the gauge's current value.
    #[inline]
    pub fn sample(&self, value: u64) {
        self.inner.borrow_mut().sample(value);
    }

    /// Copies out the underlying accumulator.
    pub fn snapshot(&self) -> GaugeStats {
        self.inner.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_clones_share_state() {
        let a = Counter::new();
        let b = a.clone();
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(b.get(), 5);
    }

    #[test]
    fn hist_snapshot_reflects_observations() {
        let h = Hist::new();
        h.observe(5);
        h.observe(6);
        let snap = h.snapshot();
        assert_eq!(snap.total(), 2);
        assert_eq!(snap.max(), Some(6));
    }

    #[test]
    fn gauge_snapshot_tracks_extremes() {
        let g = Gauge::new();
        g.sample(3);
        g.sample(1);
        let snap = g.snapshot();
        assert_eq!(snap.last(), Some(1));
        assert_eq!(snap.max(), Some(3));
        assert_eq!(snap.samples(), 2);
    }
}
