//! Saturating counters.

use std::fmt;

/// A saturating up/down counter in the inclusive range `0..=max`.
///
/// Saturating counters are the universal building block of the paper's
/// confidence machinery: the per-load *accuracy confidence* counter
/// saturates at 7, the per-stream-buffer *priority* counter saturates at
/// 12, and the classic bimodal branch predictor uses 2-bit (max 3)
/// counters.
///
/// # Example
///
/// ```
/// use psb_common::SatCounter;
/// let mut c = SatCounter::new(3);
/// c.inc_by(10);          // saturates at 3
/// assert_eq!(c.get(), 3);
/// c.dec();
/// assert_eq!(c.get(), 2);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: u32,
    max: u32,
}

impl SatCounter {
    /// Creates a counter saturating at `max`, starting at zero.
    pub const fn new(max: u32) -> Self {
        SatCounter { value: 0, max }
    }

    /// Creates a counter saturating at `max`, starting at `value`
    /// (clamped into range).
    pub const fn with_value(max: u32, value: u32) -> Self {
        let v = if value > max { max } else { value };
        SatCounter { value: v, max }
    }

    /// Current value.
    #[inline]
    pub const fn get(self) -> u32 {
        self.value
    }

    /// The saturation ceiling.
    #[inline]
    pub const fn max(self) -> u32 {
        self.max
    }

    /// Increments by one, saturating at `max`.
    #[inline]
    pub fn inc(&mut self) {
        self.inc_by(1);
    }

    /// Increments by `n`, saturating at `max`.
    #[inline]
    pub fn inc_by(&mut self, n: u32) {
        self.value = self.value.saturating_add(n).min(self.max);
    }

    /// Decrements by one, saturating at zero.
    #[inline]
    pub fn dec(&mut self) {
        self.dec_by(1);
    }

    /// Decrements by `n`, saturating at zero.
    #[inline]
    pub fn dec_by(&mut self, n: u32) {
        self.value = self.value.saturating_sub(n);
    }

    /// Sets the value, clamped into `0..=max`.
    #[inline]
    pub fn set(&mut self, value: u32) {
        self.value = value.min(self.max);
    }

    /// Resets to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// True if the counter is at or above the midpoint (`> max/2`),
    /// the conventional "taken"/"confident" test for 2-bit predictors.
    #[inline]
    pub fn is_high(self) -> bool {
        self.value > self.max / 2
    }

    /// True if the counter has saturated at its maximum.
    #[inline]
    pub fn is_saturated(self) -> bool {
        self.value == self.max
    }
}

impl fmt::Debug for SatCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SatCounter({}/{})", self.value, self.max)
    }
}

impl fmt::Display for SatCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.value, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_both_ends() {
        let mut c = SatCounter::new(7);
        for _ in 0..20 {
            c.inc();
        }
        assert_eq!(c.get(), 7);
        assert!(c.is_saturated());
        for _ in 0..20 {
            c.dec();
        }
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn bulk_ops() {
        let mut c = SatCounter::new(12);
        c.inc_by(2);
        c.inc_by(2);
        assert_eq!(c.get(), 4);
        c.inc_by(100);
        assert_eq!(c.get(), 12);
        c.dec_by(5);
        assert_eq!(c.get(), 7);
        c.dec_by(100);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn with_value_clamps() {
        assert_eq!(SatCounter::with_value(7, 99).get(), 7);
        assert_eq!(SatCounter::with_value(7, 3).get(), 3);
        let mut c = SatCounter::new(7);
        c.set(5);
        assert_eq!(c.get(), 5);
        c.set(100);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn midpoint_test_matches_bimodal_convention() {
        // 2-bit counter: 0,1 = not-taken; 2,3 = taken.
        let mut c = SatCounter::new(3);
        assert!(!c.is_high());
        c.inc();
        assert!(!c.is_high());
        c.inc();
        assert!(c.is_high());
        c.inc();
        assert!(c.is_high());
    }

    #[test]
    fn zero_max_counter_is_inert() {
        let mut c = SatCounter::new(0);
        c.inc();
        assert_eq!(c.get(), 0);
        assert!(c.is_saturated());
    }
}
