//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in processor clock cycles.
///
/// `Cycle` is ordered and supports the small amount of arithmetic a
/// cycle-level simulator needs: advancing by a latency and measuring an
/// elapsed duration.
///
/// # Example
///
/// ```
/// use psb_common::Cycle;
/// let start = Cycle::ZERO;
/// let done = start + 12;
/// assert_eq!(done.since(start), 12);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The beginning of time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle from a raw count.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Cycle(raw)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the number of cycles elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        debug_assert!(self >= earlier, "time ran backwards: {self:?} < {earlier:?}");
        self.0 - earlier.0
    }

    /// Returns whichever of the two cycles is later.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.since(rhs)
    }
}

impl fmt::Debug for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycle({})", self.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cy{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let mut c = Cycle::ZERO;
        c += 5;
        assert_eq!(c, Cycle::new(5));
        assert_eq!(c + 7, Cycle::new(12));
        assert_eq!((c + 7) - c, 7);
        assert_eq!(c.since(Cycle::ZERO), 5);
    }

    #[test]
    fn ordering_and_max() {
        assert!(Cycle::new(3) < Cycle::new(4));
        assert_eq!(Cycle::new(3).max(Cycle::new(4)), Cycle::new(4));
        assert_eq!(Cycle::new(9).max(Cycle::new(4)), Cycle::new(9));
    }

    #[test]
    #[should_panic(expected = "time ran backwards")]
    #[cfg(debug_assertions)]
    fn since_panics_on_negative_duration() {
        let _ = Cycle::new(1).since(Cycle::new(2));
    }
}
