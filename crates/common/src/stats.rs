//! Statistics primitives used by the experiment harness.
//!
//! Everything here is a plain accumulator: cheap to update every cycle and
//! queried once at the end of a run.

use std::fmt;

/// Running mean of a stream of `u64` samples (e.g. per-load latency).
///
/// # Example
///
/// ```
/// use psb_common::stats::RunningMean;
/// let mut m = RunningMean::new();
/// m.add(10);
/// m.add(20);
/// assert_eq!(m.mean(), 15.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunningMean {
    sum: u128,
    count: u64,
    min: u64,
    max: u64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub const fn new() -> Self {
        RunningMean { sum: 0, count: 0, min: u64::MAX, max: 0 }
    }

    /// Adds one sample.
    #[inline]
    pub fn add(&mut self, sample: u64) {
        self.sum += sample as u128;
        self.count += 1;
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Number of samples seen.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[inline]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean, or 0.0 if no samples were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningMean) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for RunningMean {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mean {:.2} (n={})", self.mean(), self.count)
    }
}

/// A hit/total ratio counter (miss rates, prediction accuracy, ...).
///
/// # Example
///
/// ```
/// use psb_common::stats::Ratio;
/// let mut r = Ratio::new();
/// r.record(true);
/// r.record(false);
/// r.record(false);
/// assert!((r.fraction() - 1.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty ratio.
    pub const fn new() -> Self {
        Ratio { hits: 0, total: 0 }
    }

    /// Records one event; `hit` selects the numerator.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        self.hits += hit as u64;
    }

    /// Adds to the numerator and denominator directly.
    #[inline]
    pub fn add(&mut self, hits: u64, total: u64) {
        self.hits += hits;
        self.total += total;
    }

    /// Numerator.
    #[inline]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Denominator.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Denominator minus numerator.
    #[inline]
    pub fn misses(&self) -> u64 {
        self.total - self.hits
    }

    /// `hits / total`, or 0.0 if nothing was recorded.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// `fraction()` expressed in percent.
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} ({:.2}%)", self.hits, self.total, self.percent())
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket `i` counts samples equal to `i`; samples `>= len` fall into the
/// overflow bucket. Used e.g. for Figure 4 (bits needed per Markov delta).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `len` exact-value buckets.
    pub fn new(len: usize) -> Self {
        Histogram { buckets: vec![0; len], overflow: 0, total: 0 }
    }

    /// Adds one sample.
    pub fn add(&mut self, sample: u64) {
        self.total += 1;
        match self.buckets.get_mut(sample as usize) {
            Some(b) => *b += 1,
            None => self.overflow += 1,
        }
    }

    /// Count in bucket `i` (0 if out of range).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Count of samples that exceeded the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of samples `<= i` (a CDF point). 0.0 when empty.
    ///
    /// Overflow samples live in the half-open range `[len, ∞)`; the only
    /// index at which their contribution is exact is `i >= len`, where
    /// every sample — exact and overflow — is covered, so the CDF
    /// reaches 1.0 instead of silently plateauing below it.
    pub fn cdf(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if i >= self.buckets.len() {
            return 1.0;
        }
        let cum: u64 = self.buckets.iter().take(i + 1).sum();
        cum as f64 / self.total as f64
    }

    /// Number of exact buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True if no exact buckets were configured.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hist(n={}, overflow={})", self.total, self.overflow)
    }
}

/// A histogram with power-of-two bucket boundaries.
///
/// Bucket 0 counts samples equal to 0; bucket `i >= 1` counts samples in
/// `[2^(i-1), 2^i - 1]`. 65 buckets cover the full `u64` range, so there
/// is no overflow bucket. Used for long-tailed distributions such as bus
/// queueing delays, where exact-value buckets would be wasteful.
///
/// # Example
///
/// ```
/// use psb_common::stats::Log2Histogram;
/// let mut h = Log2Histogram::new();
/// h.add(0); // bucket 0
/// h.add(1); // bucket 1: [1, 1]
/// h.add(5); // bucket 3: [4, 7]
/// assert_eq!(h.bucket(3), 1);
/// assert_eq!(Log2Histogram::bucket_range(3), (4, 7));
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    /// Number of buckets (bucket 0 plus one per bit of `u64`).
    pub const BUCKETS: usize = 65;

    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Log2Histogram { buckets: [0; 65], total: 0, sum: 0, max: 0 }
    }

    /// Index of the bucket that `sample` falls into.
    #[inline]
    pub fn bucket_index(sample: u64) -> usize {
        (64 - sample.leading_zeros()) as usize
    }

    /// Inclusive `(lo, hi)` range of values counted by bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::BUCKETS`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        assert!(i < Self::BUCKETS, "bucket index out of range");
        if i == 0 {
            (0, 0)
        } else {
            (1 << (i - 1), u64::MAX >> (64 - i))
        }
    }

    /// Adds one sample.
    #[inline]
    pub fn add(&mut self, sample: u64) {
        self.buckets[Self::bucket_index(sample)] += 1;
        self.total += 1;
        self.sum += sample as u128;
        self.max = self.max.max(sample);
    }

    /// Count in bucket `i` (0 if out of range).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Buckets with at least one sample, as `(index, count)` pairs in
    /// ascending index order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c))
    }
}

impl fmt::Display for Log2Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "log2hist(n={}, mean={:.1}, max={})", self.total, self.mean(), self.max)
    }
}

/// A sampled gauge: the most recent value of a fluctuating quantity
/// (queue depth, MSHR occupancy) plus min/max/mean over all samples.
///
/// # Example
///
/// ```
/// use psb_common::stats::GaugeStats;
/// let mut g = GaugeStats::new();
/// g.sample(3);
/// g.sample(7);
/// g.sample(5);
/// assert_eq!(g.last(), Some(5));
/// assert_eq!(g.max(), Some(7));
/// assert_eq!(g.mean(), 5.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GaugeStats {
    last: u64,
    mean: RunningMean,
}

impl GaugeStats {
    /// Creates an empty gauge.
    pub const fn new() -> Self {
        GaugeStats { last: 0, mean: RunningMean::new() }
    }

    /// Records the gauge's current value.
    #[inline]
    pub fn sample(&mut self, value: u64) {
        self.last = value;
        self.mean.add(value);
    }

    /// Most recent sample, or `None` if empty.
    pub fn last(&self) -> Option<u64> {
        (self.mean.count() > 0).then_some(self.last)
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        self.mean.min()
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        self.mean.max()
    }

    /// Mean of all samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        self.mean.mean()
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.mean.count()
    }
}

impl fmt::Display for GaugeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.last() {
            Some(v) => write!(f, "gauge(last={v}, mean={:.1})", self.mean()),
            None => write!(f, "gauge(empty)"),
        }
    }
}

/// Tracks how many cycles a resource (e.g. a bus) was occupied.
///
/// # Example
///
/// ```
/// use psb_common::stats::Utilization;
/// let mut u = Utilization::new();
/// u.busy(25);
/// assert_eq!(u.percent(100), 25.0);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Utilization {
    busy_cycles: u64,
}

impl Utilization {
    /// Creates an empty accumulator.
    pub const fn new() -> Self {
        Utilization { busy_cycles: 0 }
    }

    /// Records `n` busy cycles.
    #[inline]
    pub fn busy(&mut self, n: u64) {
        self.busy_cycles += n;
    }

    /// Total busy cycles recorded.
    #[inline]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Busy percentage over a run of `elapsed` cycles (0.0 if `elapsed` is 0).
    pub fn percent(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            100.0 * self.busy_cycles as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_mean_basics() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.min(), None);
        m.add(4);
        m.add(8);
        m.add(0);
        assert_eq!(m.mean(), 4.0);
        assert_eq!(m.min(), Some(0));
        assert_eq!(m.max(), Some(8));
        assert_eq!(m.count(), 3);
        assert_eq!(m.sum(), 12);
    }

    #[test]
    fn running_mean_merge() {
        let mut a = RunningMean::new();
        a.add(1);
        a.add(3);
        let mut b = RunningMean::new();
        b.add(5);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.mean(), 3.0);
        assert_eq!(a.max(), Some(5));
    }

    #[test]
    fn ratio_basics() {
        let mut r = Ratio::new();
        assert_eq!(r.fraction(), 0.0);
        r.record(true);
        r.record(true);
        r.record(false);
        r.record(false);
        assert_eq!(r.fraction(), 0.5);
        assert_eq!(r.percent(), 50.0);
        assert_eq!(r.hits(), 2);
        assert_eq!(r.misses(), 2);
        r.add(2, 2);
        assert_eq!(r.hits(), 4);
        assert_eq!(r.total(), 6);
    }

    #[test]
    fn histogram_cdf() {
        let mut h = Histogram::new(4);
        for s in [0, 1, 1, 2, 3, 9] {
            h.add(s);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.overflow(), 1);
        assert!((h.cdf(0) - 1.0 / 6.0).abs() < 1e-12);
        assert!((h.cdf(3) - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
    }

    #[test]
    fn histogram_cdf_covers_overflow_at_the_boundary() {
        let mut h = Histogram::new(4);
        for s in [0, 1, 1, 2, 3, 9, 100] {
            h.add(s);
        }
        assert_eq!(h.overflow(), 2);
        // The last exact bucket excludes the overflow samples (they are
        // all >= len)...
        assert!((h.cdf(3) - 5.0 / 7.0).abs() < 1e-12);
        // ...but at and beyond the bucket range every sample is <= i,
        // so the CDF must reach 1.0 instead of plateauing at 5/7.
        assert_eq!(h.cdf(4), 1.0);
        assert_eq!(h.cdf(usize::MAX), 1.0);

        // Overflow-only histogram: nothing below len, everything at it.
        let mut o = Histogram::new(2);
        o.add(50);
        assert_eq!(o.cdf(1), 0.0);
        assert_eq!(o.cdf(2), 1.0);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new(0);
        assert!(h.is_empty());
        assert_eq!(h.cdf(3), 0.0);
        assert_eq!(h.bucket(1), 0);
    }

    #[test]
    fn log2_bucket_boundaries() {
        // Every power of two starts a new bucket; value just below it
        // belongs to the previous bucket.
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(7), 3);
        assert_eq!(Log2Histogram::bucket_index(8), 4);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        for i in 0..Log2Histogram::BUCKETS {
            let (lo, hi) = Log2Histogram::bucket_range(i);
            assert_eq!(Log2Histogram::bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(Log2Histogram::bucket_index(hi), i, "hi of bucket {i}");
            if i > 0 {
                assert_eq!(Log2Histogram::bucket_index(lo - 1), i - 1);
            }
        }
    }

    #[test]
    fn log2_histogram_accumulates() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), None);
        for s in [0, 0, 1, 5, 5, 6, 100] {
            h.add(s);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(3), 3); // 5, 5, 6 in [4, 7]
        assert_eq!(h.bucket(7), 1); // 100 in [64, 127]
        assert_eq!(h.max(), Some(100));
        assert_eq!(h.sum(), 117);
        let nz: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(nz, vec![(0, 2), (1, 1), (3, 3), (7, 1)]);
    }

    #[test]
    fn gauge_tracks_last_and_extremes() {
        let mut g = GaugeStats::new();
        assert_eq!(g.last(), None);
        g.sample(4);
        g.sample(9);
        g.sample(2);
        assert_eq!(g.last(), Some(2));
        assert_eq!(g.min(), Some(2));
        assert_eq!(g.max(), Some(9));
        assert_eq!(g.mean(), 5.0);
        assert_eq!(g.samples(), 3);
    }

    #[test]
    fn utilization_percent() {
        let mut u = Utilization::new();
        u.busy(10);
        u.busy(15);
        assert_eq!(u.busy_cycles(), 25);
        assert_eq!(u.percent(100), 25.0);
        assert_eq!(u.percent(0), 0.0);
    }
}
