//! Deterministic pseudo-random number generation.

/// A SplitMix64 pseudo-random number generator.
///
/// The workload generators must produce the *same* trace on every machine
/// and toolchain so that experiment results are reproducible; SplitMix64 is
/// tiny, fast, passes BigCrush, and its output is fixed by its seed
/// forever. It is **not** cryptographically secure and is not meant to be.
///
/// # Example
///
/// ```
/// use psb_common::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Different seeds give independent
    /// streams for all practical purposes.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the result is
    /// unbiased for any bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Lemire 2019: unbiased bounded integers without division (mostly).
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniformly distributed value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Samples a geometric-ish burst length in `1..=cap`: repeatedly flips
    /// a coin with continue-probability `num/den`. Useful for generating
    /// run lengths in workloads.
    pub fn burst(&mut self, num: u64, den: u64, cap: u64) -> u64 {
        let mut n = 1;
        while n < cap && self.chance(num, den) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_first_outputs() {
        // Reference values for SplitMix64 with seed 0, used by e.g. the
        // xoshiro project for seeding. Guards against accidental algorithm
        // changes that would silently alter every workload trace.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn determinism_across_clones() {
        let mut a = SplitMix64::new(1234);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn range_inclusive_exclusive() {
        let mut r = SplitMix64::new(9);
        for _ in 0..500 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SplitMix64::new(99);
        let mut buckets = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[r.below(8) as usize] += 1;
        }
        let expect = n / 8;
        for &b in &buckets {
            assert!(
                (b as i64 - expect as i64).unsigned_abs() < (expect / 10) as u64,
                "bucket count {b} too far from {expect}"
            );
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(5);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        // And a fixed seed gives a fixed permutation.
        let mut r2 = SplitMix64::new(5);
        let mut v2: Vec<u32> = (0..64).collect();
        r2.shuffle(&mut v2);
        assert_eq!(v, v2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn burst_capped() {
        let mut r = SplitMix64::new(11);
        for _ in 0..200 {
            let b = r.burst(9, 10, 5);
            assert!((1..=5).contains(&b));
        }
        // Probability 0 of continuing => always 1.
        assert_eq!(r.burst(0, 10, 5), 1);
    }
}
