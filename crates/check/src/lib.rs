//! Runtime invariant auditor for the PSB simulator.
//!
//! The paper's results hinge on microarchitectural invariants the
//! simulator code only implies: stream buffers hold non-overlapping
//! streams, each buffer issues its prefetches in FIFO order, the
//! priority scheduler never passes over a higher-priority buffer, MSHRs
//! never hold duplicate blocks or exceed capacity, bus grants are
//! causal, prefetches only use the L1↔L2 bus when it is free at the
//! start of the cycle (demand misses outrank them), saturating counters
//! stay in range, a block never lives in the L1 and the victim cache at
//! once, and the event log advances monotonically in time.
//!
//! This crate makes those invariants executable. Simulator layers
//! publish small [`Snapshot`]s at hook points (gated behind their
//! `check` cargo feature so release figure runs pay zero overhead); a
//! thread-local [`Registry`] of [`Checker`]s validates each snapshot
//! and records any [`Violation`]s in a thread-local sink that tests and
//! [`run_audited`](https://docs.rs/psb-sim) drain with [`take`].
//!
//! The snapshot types are plain data, so the crate's own unit tests
//! prove every checker *live* by corrupting a snapshot and asserting
//! the checker fires — no simulator required.

use psb_common::{BlockAddr, Cycle};
use std::cell::RefCell;
use std::fmt;

// ---------------------------------------------------------------------------
// Violations
// ---------------------------------------------------------------------------

/// A single invariant violation observed at a hook point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Name of the checker that fired (stable identifier, e.g.
    /// `"stream-nonoverlap"`).
    pub checker: &'static str,
    /// Simulated cycle at which the violation was observed.
    pub cycle: Cycle,
    /// Human-readable description of what was wrong.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] cycle {}: {}", self.checker, self.cycle.raw(), self.detail)
    }
}

// ---------------------------------------------------------------------------
// Snapshots published by hook points
// ---------------------------------------------------------------------------

/// Lifecycle state of one stream-buffer entry, mirrored from
/// `psb_core::SbEntry` without depending on it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EntryKind {
    /// No block assigned.
    Empty,
    /// Predicted block assigned, prefetch not yet issued.
    Allocated(BlockAddr),
    /// Prefetch issued, fill still travelling.
    InFlight(BlockAddr),
    /// Block arrived and is ready to satisfy a miss.
    Ready(BlockAddr),
}

impl EntryKind {
    /// The block held by this entry, if any.
    pub fn block(self) -> Option<BlockAddr> {
        match self {
            EntryKind::Empty => None,
            EntryKind::Allocated(b) | EntryKind::InFlight(b) | EntryKind::Ready(b) => Some(b),
        }
    }
}

/// One stream buffer as seen by the stream-file checkers.
#[derive(Clone, Debug)]
pub struct BufferSnapshot {
    /// Whether the buffer currently tracks a stream.
    pub active: bool,
    /// Current priority-counter value.
    pub priority: u32,
    /// Saturation ceiling of the priority counter.
    pub priority_max: u32,
    /// Entry states in FIFO order (head first).
    pub entries: Vec<EntryKind>,
}

/// A contender in a scheduler pick, by buffer index.
#[derive(Copy, Clone, Debug)]
pub struct Contender {
    /// Index of the buffer in the stream file.
    pub index: usize,
    /// Its priority-counter value at pick time.
    pub priority: u32,
}

/// State published at a hook point for the registry to validate.
#[derive(Clone, Debug)]
pub enum Snapshot {
    /// End-of-tick view of the whole stream-buffer file.
    Streams {
        /// Cycle of the observation.
        now: Cycle,
        /// Every buffer in the file, active or not.
        buffers: Vec<BufferSnapshot>,
    },
    /// A prefetch was issued from one buffer: `issued` is the entry
    /// index chosen; `entries` is the buffer's entry states *before*
    /// the issue.
    PrefetchIssue {
        /// Cycle of the issue.
        now: Cycle,
        /// Entry states before the issue, head first.
        entries: Vec<EntryKind>,
        /// Index of the entry the engine chose to issue.
        issued: usize,
    },
    /// The priority scheduler granted a port to `winner` among
    /// `eligible` contenders.
    Grant {
        /// Cycle of the grant.
        now: Cycle,
        /// The buffer that won the port.
        winner: Contender,
        /// All buffers that were eligible this cycle (winner included).
        eligible: Vec<Contender>,
    },
    /// MSHR file contents after a mutation.
    Mshr {
        /// Cycle of the observation.
        now: Cycle,
        /// Maximum number of outstanding misses.
        capacity: usize,
        /// Blocks currently outstanding.
        blocks: Vec<BlockAddr>,
    },
    /// A bus grant was handed out.
    BusGrant {
        /// Cycle the requester asked for the bus.
        now: Cycle,
        /// Cycle the transfer starts.
        start: Cycle,
        /// Cycle the transfer completes.
        end: Cycle,
    },
    /// A prefetch reached the lower memory system.
    PrefetchFetch {
        /// Cycle of the fetch.
        now: Cycle,
        /// Whether the L1↔L2 bus was free when the prefetch fetched.
        bus_free: bool,
    },
    /// A saturating counter was observed.
    Counter {
        /// Cycle of the observation.
        now: Cycle,
        /// What the counter measures (e.g. `"sb-priority"`).
        what: &'static str,
        /// Current value.
        value: u32,
        /// Saturation ceiling.
        max: u32,
    },
    /// A block's residency in the L1 and the victim cache.
    Victim {
        /// Cycle of the observation.
        now: Cycle,
        /// The block that moved between L1 and victim cache.
        block: BlockAddr,
        /// Whether the L1 currently holds the block.
        in_l1: bool,
        /// Whether the victim cache currently holds the block.
        in_victim: bool,
    },
    /// A memory event was appended to the event log.
    Event {
        /// Cycle of the last previously logged event.
        prev_cycle: Cycle,
        /// Cycle of the new event.
        cycle: Cycle,
        /// Completion cycle carried by the new event, if any.
        ready: Option<Cycle>,
        /// Allowed backward skew in cycles. Demand accesses are stamped
        /// *after* address translation, so a TLB miss can push an event's
        /// cycle ahead of later same-cycle submissions by up to the TLB
        /// miss penalty; the log is otherwise append-ordered.
        slack: u64,
    },
}

// ---------------------------------------------------------------------------
// Checker trait and the built-in registry
// ---------------------------------------------------------------------------

/// A single cross-layer invariant.
///
/// Checkers are stateless validators: they look at one [`Snapshot`] and
/// report what is wrong with it. A checker that does not care about a
/// snapshot kind returns no violations for it.
pub trait Checker {
    /// Stable identifier used in [`Violation::checker`].
    fn name(&self) -> &'static str;
    /// Validate one snapshot, appending any violations to `out`.
    fn check(&self, snap: &Snapshot, out: &mut Vec<Violation>);
}

macro_rules! violation {
    ($out:expr, $name:expr, $cycle:expr, $($arg:tt)*) => {
        $out.push(Violation { checker: $name, cycle: $cycle, detail: format!($($arg)*) })
    };
}

/// Stream buffers must hold pairwise non-overlapping streams: the same
/// block may never be tracked by two buffers at once (§4.3 allocation
/// filtering checks `covered` before allocating).
pub struct StreamNonOverlap;

impl Checker for StreamNonOverlap {
    fn name(&self) -> &'static str {
        "stream-nonoverlap"
    }

    fn check(&self, snap: &Snapshot, out: &mut Vec<Violation>) {
        let Snapshot::Streams { now, buffers } = snap else {
            return;
        };
        let mut seen: Vec<(BlockAddr, usize)> = Vec::new();
        for (i, buf) in buffers.iter().enumerate() {
            if !buf.active {
                continue;
            }
            for block in buf.entries.iter().filter_map(|e| e.block()) {
                if let Some(&(_, j)) = seen.iter().find(|(b, j)| *b == block && *j != i) {
                    violation!(
                        out,
                        self.name(),
                        *now,
                        "block {:#x} tracked by buffers {} and {}",
                        block.0,
                        j,
                        i
                    );
                }
                seen.push((block, i));
            }
        }
    }
}

/// Each stream buffer is a FIFO: a prefetch must issue from the oldest
/// (lowest-index) `Allocated` entry, never skipping ahead.
pub struct StreamFifoIssue;

impl Checker for StreamFifoIssue {
    fn name(&self) -> &'static str {
        "stream-fifo-issue"
    }

    fn check(&self, snap: &Snapshot, out: &mut Vec<Violation>) {
        let Snapshot::PrefetchIssue { now, entries, issued } = snap else {
            return;
        };
        match entries.get(*issued) {
            Some(EntryKind::Allocated(_)) => {}
            other => {
                violation!(
                    out,
                    self.name(),
                    *now,
                    "issued entry {} is {:?}, not Allocated",
                    issued,
                    other
                );
                return;
            }
        }
        if let Some(skipped) =
            entries[..*issued].iter().position(|e| matches!(e, EntryKind::Allocated(_)))
        {
            violation!(
                out,
                self.name(),
                *now,
                "issued entry {} but older entry {} was still Allocated",
                issued,
                skipped
            );
        }
    }
}

/// The priority scheduler must never grant a port to a buffer while a
/// strictly higher-priority buffer was eligible (§4.4: high-confidence
/// streams outrank low-confidence ones).
pub struct PriorityGrantOrder;

impl Checker for PriorityGrantOrder {
    fn name(&self) -> &'static str {
        "priority-grant-order"
    }

    fn check(&self, snap: &Snapshot, out: &mut Vec<Violation>) {
        let Snapshot::Grant { now, winner, eligible } = snap else {
            return;
        };
        for c in eligible {
            if c.priority > winner.priority {
                violation!(
                    out,
                    self.name(),
                    *now,
                    "buffer {} (priority {}) granted over buffer {} (priority {})",
                    winner.index,
                    winner.priority,
                    c.index,
                    c.priority
                );
            }
        }
    }
}

/// MSHRs must never hold the same block twice (misses to an in-flight
/// block merge) nor exceed their configured capacity.
pub struct MshrSound;

impl Checker for MshrSound {
    fn name(&self) -> &'static str {
        "mshr-sound"
    }

    fn check(&self, snap: &Snapshot, out: &mut Vec<Violation>) {
        let Snapshot::Mshr { now, capacity, blocks } = snap else {
            return;
        };
        if blocks.len() > *capacity {
            violation!(
                out,
                self.name(),
                *now,
                "{} outstanding misses exceed capacity {}",
                blocks.len(),
                capacity
            );
        }
        let mut sorted = blocks.clone();
        sorted.sort_unstable();
        for pair in sorted.windows(2) {
            if pair[0] == pair[1] {
                violation!(out, self.name(), *now, "duplicate MSHR for block {:#x}", pair[0].0);
            }
        }
    }
}

/// Bus grants must be causal: a transfer granted at cycle `now` starts
/// no earlier than `now` and ends no earlier than it starts.
pub struct BusCausality;

impl Checker for BusCausality {
    fn name(&self) -> &'static str {
        "bus-causality"
    }

    fn check(&self, snap: &Snapshot, out: &mut Vec<Violation>) {
        let Snapshot::BusGrant { now, start, end } = snap else {
            return;
        };
        if start < now {
            violation!(
                out,
                self.name(),
                *now,
                "transfer starts at {} before request cycle {}",
                start.raw(),
                now.raw()
            );
        }
        if end < start {
            violation!(
                out,
                self.name(),
                *now,
                "transfer ends at {} before it starts at {}",
                end.raw(),
                start.raw()
            );
        }
    }
}

/// Prefetches only get the L1↔L2 bus when it is free at the start of
/// the cycle — demand misses always outrank them (§4.4).
pub struct PrefetchBusPriority;

impl Checker for PrefetchBusPriority {
    fn name(&self) -> &'static str {
        "prefetch-bus-priority"
    }

    fn check(&self, snap: &Snapshot, out: &mut Vec<Violation>) {
        let Snapshot::PrefetchFetch { now, bus_free } = snap else {
            return;
        };
        if !bus_free {
            violation!(out, self.name(), *now, "prefetch issued while L1\u{2194}L2 bus was busy");
        }
    }
}

/// Saturating counters must stay within `0..=max`.
pub struct CounterRange;

impl Checker for CounterRange {
    fn name(&self) -> &'static str {
        "counter-range"
    }

    fn check(&self, snap: &Snapshot, out: &mut Vec<Violation>) {
        match snap {
            Snapshot::Counter { now, what, value, max } if value > max => {
                violation!(
                    out,
                    self.name(),
                    *now,
                    "{} counter value {} exceeds ceiling {}",
                    what,
                    value,
                    max
                );
            }
            Snapshot::Streams { now, buffers } => {
                for (i, buf) in buffers.iter().enumerate() {
                    if buf.priority > buf.priority_max {
                        violation!(
                            out,
                            self.name(),
                            *now,
                            "buffer {} priority {} exceeds ceiling {}",
                            i,
                            buf.priority,
                            buf.priority_max
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// A block must never be resident in the L1 and the victim cache at the
/// same time — the victim cache holds only evictees, and a victim hit
/// moves the block back (exclusive hierarchy).
pub struct VictimExclusive;

impl Checker for VictimExclusive {
    fn name(&self) -> &'static str {
        "victim-exclusive"
    }

    fn check(&self, snap: &Snapshot, out: &mut Vec<Violation>) {
        let Snapshot::Victim { now, block, in_l1, in_victim } = snap else {
            return;
        };
        if *in_l1 && *in_victim {
            violation!(
                out,
                self.name(),
                *now,
                "block {:#x} resident in both L1 and victim cache",
                block.0
            );
        }
    }
}

/// The event log must advance monotonically in time (up to the
/// snapshot's declared translation skew), and an event's completion
/// cycle can never precede its issue cycle.
pub struct EventMonotonic;

impl Checker for EventMonotonic {
    fn name(&self) -> &'static str {
        "event-monotonic"
    }

    fn check(&self, snap: &Snapshot, out: &mut Vec<Violation>) {
        let Snapshot::Event { prev_cycle, cycle, ready, slack } = snap else {
            return;
        };
        if cycle.raw() + slack < prev_cycle.raw() {
            violation!(
                out,
                self.name(),
                *cycle,
                "event at cycle {} logged after cycle {} (allowed skew {})",
                cycle.raw(),
                prev_cycle.raw(),
                slack
            );
        }
        if let Some(ready) = ready {
            if ready < cycle {
                violation!(
                    out,
                    self.name(),
                    *cycle,
                    "event completes at {} before its issue cycle {}",
                    ready.raw(),
                    cycle.raw()
                );
            }
        }
    }
}

/// An ordered collection of [`Checker`]s run over every snapshot.
pub struct Registry {
    checkers: Vec<Box<dyn Checker>>,
}

impl Registry {
    /// An empty registry with no checkers.
    pub fn empty() -> Self {
        Registry { checkers: Vec::new() }
    }

    /// The standard registry with every built-in invariant.
    pub fn standard() -> Self {
        Registry {
            checkers: vec![
                Box::new(StreamNonOverlap),
                Box::new(StreamFifoIssue),
                Box::new(PriorityGrantOrder),
                Box::new(MshrSound),
                Box::new(BusCausality),
                Box::new(PrefetchBusPriority),
                Box::new(CounterRange),
                Box::new(VictimExclusive),
                Box::new(EventMonotonic),
            ],
        }
    }

    /// Add a checker to the registry.
    pub fn register(&mut self, checker: Box<dyn Checker>) {
        self.checkers.push(checker);
    }

    /// Names of all registered checkers, in run order.
    pub fn names(&self) -> Vec<&'static str> {
        self.checkers.iter().map(|c| c.name()).collect()
    }

    /// Run every checker over one snapshot, returning the violations.
    pub fn run(&self, snap: &Snapshot) -> Vec<Violation> {
        let mut out = Vec::new();
        for c in &self.checkers {
            c.check(snap, &mut out);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Thread-local audit sink
// ---------------------------------------------------------------------------

struct Sink {
    registry: Registry,
    violations: Vec<Violation>,
    audits: u64,
}

thread_local! {
    static SINK: RefCell<Sink> = RefCell::new(Sink {
        registry: Registry::standard(),
        violations: Vec::new(),
        audits: 0,
    });
}

/// Validate one snapshot against the thread-local registry, recording
/// any violations in the thread-local sink. This is the single entry
/// point hook sites call.
pub fn audit(snap: &Snapshot) {
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        s.audits += 1;
        let mut found = s.registry.run(snap);
        // Cap retention so a pathological run cannot grow without bound;
        // the count is still exact via `violation_count` semantics below.
        if s.violations.len() < 4096 {
            s.violations.append(&mut found);
        }
    });
}

/// Clear recorded violations and the audit counter (start of a run).
pub fn reset() {
    SINK.with(|s| {
        let mut s = s.borrow_mut();
        s.violations.clear();
        s.audits = 0;
    });
}

/// Drain and return all recorded violations.
pub fn take() -> Vec<Violation> {
    SINK.with(|s| std::mem::take(&mut s.borrow_mut().violations))
}

/// Whether no violations have been recorded since the last [`reset`] /
/// [`take`].
pub fn is_clean() -> bool {
    SINK.with(|s| s.borrow().violations.is_empty())
}

/// Number of snapshots audited since the last [`reset`] — lets tests
/// assert the hooks are actually wired in, not silently compiled out.
pub fn audits() -> u64 {
    SINK.with(|s| s.borrow().audits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(x: u64) -> BlockAddr {
        BlockAddr(x)
    }

    fn cy(x: u64) -> Cycle {
        Cycle::new(x)
    }

    fn buffer(active: bool, priority: u32, entries: Vec<EntryKind>) -> BufferSnapshot {
        BufferSnapshot { active, priority, priority_max: 12, entries }
    }

    fn run(snap: &Snapshot) -> Vec<Violation> {
        Registry::standard().run(snap)
    }

    #[test]
    fn registry_has_at_least_six_invariants() {
        let names = Registry::standard().names();
        assert!(names.len() >= 6, "only {} checkers registered", names.len());
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "checker names must be unique");
    }

    // -- stream-nonoverlap ------------------------------------------------

    #[test]
    fn nonoverlap_silent_on_disjoint_streams() {
        let snap = Snapshot::Streams {
            now: cy(10),
            buffers: vec![
                buffer(true, 3, vec![EntryKind::Ready(b(1)), EntryKind::Allocated(b(2))]),
                buffer(true, 5, vec![EntryKind::InFlight(b(7)), EntryKind::Empty]),
            ],
        };
        assert!(run(&snap).is_empty());
    }

    #[test]
    fn nonoverlap_fires_on_shared_block() {
        let snap = Snapshot::Streams {
            now: cy(10),
            buffers: vec![
                buffer(true, 3, vec![EntryKind::Ready(b(42))]),
                buffer(true, 5, vec![EntryKind::Allocated(b(42))]),
            ],
        };
        let v = run(&snap);
        assert!(v.iter().any(|v| v.checker == "stream-nonoverlap"), "{v:?}");
    }

    #[test]
    fn nonoverlap_ignores_inactive_buffers() {
        let snap = Snapshot::Streams {
            now: cy(10),
            buffers: vec![
                buffer(true, 3, vec![EntryKind::Ready(b(42))]),
                buffer(false, 0, vec![EntryKind::Ready(b(42))]),
            ],
        };
        assert!(run(&snap).is_empty());
    }

    // -- stream-fifo-issue ------------------------------------------------

    #[test]
    fn fifo_silent_on_oldest_allocated() {
        let snap = Snapshot::PrefetchIssue {
            now: cy(3),
            entries: vec![
                EntryKind::Ready(b(1)),
                EntryKind::Allocated(b(2)),
                EntryKind::Allocated(b(3)),
            ],
            issued: 1,
        };
        assert!(run(&snap).is_empty());
    }

    #[test]
    fn fifo_fires_when_issue_skips_older_entry() {
        let snap = Snapshot::PrefetchIssue {
            now: cy(3),
            entries: vec![EntryKind::Allocated(b(2)), EntryKind::Allocated(b(3))],
            issued: 1,
        };
        let v = run(&snap);
        assert!(v.iter().any(|v| v.checker == "stream-fifo-issue"), "{v:?}");
    }

    #[test]
    fn fifo_fires_when_issued_entry_not_allocated() {
        let snap = Snapshot::PrefetchIssue {
            now: cy(3),
            entries: vec![EntryKind::Ready(b(2))],
            issued: 0,
        };
        let v = run(&snap);
        assert!(v.iter().any(|v| v.checker == "stream-fifo-issue"), "{v:?}");
    }

    // -- priority-grant-order ---------------------------------------------

    #[test]
    fn grant_silent_when_winner_has_top_priority() {
        let snap = Snapshot::Grant {
            now: cy(9),
            winner: Contender { index: 2, priority: 7 },
            eligible: vec![
                Contender { index: 0, priority: 3 },
                Contender { index: 2, priority: 7 },
                Contender { index: 5, priority: 7 },
            ],
        };
        assert!(run(&snap).is_empty());
    }

    #[test]
    fn grant_fires_when_low_priority_wins() {
        let snap = Snapshot::Grant {
            now: cy(9),
            winner: Contender { index: 0, priority: 1 },
            eligible: vec![
                Contender { index: 0, priority: 1 },
                Contender { index: 3, priority: 11 },
            ],
        };
        let v = run(&snap);
        assert!(v.iter().any(|v| v.checker == "priority-grant-order"), "{v:?}");
    }

    // -- mshr-sound -------------------------------------------------------

    #[test]
    fn mshr_silent_on_distinct_blocks_within_capacity() {
        let snap = Snapshot::Mshr { now: cy(4), capacity: 8, blocks: vec![b(1), b(2), b(3)] };
        assert!(run(&snap).is_empty());
    }

    #[test]
    fn mshr_fires_on_duplicate_block() {
        let snap = Snapshot::Mshr { now: cy(4), capacity: 8, blocks: vec![b(1), b(2), b(1)] };
        let v = run(&snap);
        assert!(v.iter().any(|v| v.checker == "mshr-sound"), "{v:?}");
    }

    #[test]
    fn mshr_fires_on_capacity_overflow() {
        let snap = Snapshot::Mshr { now: cy(4), capacity: 2, blocks: vec![b(1), b(2), b(3)] };
        let v = run(&snap);
        assert!(v.iter().any(|v| v.checker == "mshr-sound"), "{v:?}");
    }

    // -- bus-causality ----------------------------------------------------

    #[test]
    fn bus_silent_on_causal_grant() {
        let snap = Snapshot::BusGrant { now: cy(10), start: cy(12), end: cy(16) };
        assert!(run(&snap).is_empty());
    }

    #[test]
    fn bus_fires_on_grant_in_the_past() {
        let snap = Snapshot::BusGrant { now: cy(10), start: cy(8), end: cy(16) };
        let v = run(&snap);
        assert!(v.iter().any(|v| v.checker == "bus-causality"), "{v:?}");
    }

    #[test]
    fn bus_fires_on_negative_duration() {
        let snap = Snapshot::BusGrant { now: cy(10), start: cy(12), end: cy(11) };
        let v = run(&snap);
        assert!(v.iter().any(|v| v.checker == "bus-causality"), "{v:?}");
    }

    // -- prefetch-bus-priority --------------------------------------------

    #[test]
    fn prefetch_silent_when_bus_free() {
        let snap = Snapshot::PrefetchFetch { now: cy(5), bus_free: true };
        assert!(run(&snap).is_empty());
    }

    #[test]
    fn prefetch_fires_when_bus_busy() {
        let snap = Snapshot::PrefetchFetch { now: cy(5), bus_free: false };
        let v = run(&snap);
        assert!(v.iter().any(|v| v.checker == "prefetch-bus-priority"), "{v:?}");
    }

    // -- counter-range ----------------------------------------------------

    #[test]
    fn counter_silent_in_range() {
        let snap = Snapshot::Counter { now: cy(1), what: "sb-priority", value: 12, max: 12 };
        assert!(run(&snap).is_empty());
    }

    #[test]
    fn counter_fires_above_ceiling() {
        let snap = Snapshot::Counter { now: cy(1), what: "sb-priority", value: 13, max: 12 };
        let v = run(&snap);
        assert!(v.iter().any(|v| v.checker == "counter-range"), "{v:?}");
    }

    #[test]
    fn counter_fires_on_overflowed_buffer_priority() {
        let snap = Snapshot::Streams {
            now: cy(1),
            buffers: vec![BufferSnapshot {
                active: true,
                priority: 99,
                priority_max: 12,
                entries: vec![EntryKind::Empty],
            }],
        };
        let v = run(&snap);
        assert!(v.iter().any(|v| v.checker == "counter-range"), "{v:?}");
    }

    // -- victim-exclusive -------------------------------------------------

    #[test]
    fn victim_silent_when_exclusive() {
        for (in_l1, in_victim) in [(true, false), (false, true), (false, false)] {
            let snap = Snapshot::Victim { now: cy(2), block: b(9), in_l1, in_victim };
            assert!(run(&snap).is_empty());
        }
    }

    #[test]
    fn victim_fires_on_double_residency() {
        let snap = Snapshot::Victim { now: cy(2), block: b(9), in_l1: true, in_victim: true };
        let v = run(&snap);
        assert!(v.iter().any(|v| v.checker == "victim-exclusive"), "{v:?}");
    }

    // -- event-monotonic --------------------------------------------------

    #[test]
    fn event_silent_on_monotonic_log() {
        let snap =
            Snapshot::Event { prev_cycle: cy(7), cycle: cy(7), ready: Some(cy(20)), slack: 0 };
        assert!(run(&snap).is_empty());
    }

    #[test]
    fn event_silent_within_translation_skew() {
        // A demand access stamped after a TLB miss may legally precede
        // the previous log entry by up to the declared skew.
        let snap =
            Snapshot::Event { prev_cycle: cy(37), cycle: cy(7), ready: Some(cy(20)), slack: 30 };
        assert!(run(&snap).is_empty());
    }

    #[test]
    fn event_fires_on_time_travel() {
        let snap = Snapshot::Event { prev_cycle: cy(9), cycle: cy(7), ready: None, slack: 0 };
        let v = run(&snap);
        assert!(v.iter().any(|v| v.checker == "event-monotonic"), "{v:?}");
    }

    #[test]
    fn event_fires_beyond_translation_skew() {
        let snap = Snapshot::Event { prev_cycle: cy(40), cycle: cy(7), ready: None, slack: 30 };
        let v = run(&snap);
        assert!(v.iter().any(|v| v.checker == "event-monotonic"), "{v:?}");
    }

    #[test]
    fn event_fires_on_completion_before_issue() {
        let snap =
            Snapshot::Event { prev_cycle: cy(5), cycle: cy(7), ready: Some(cy(6)), slack: 0 };
        let v = run(&snap);
        assert!(v.iter().any(|v| v.checker == "event-monotonic"), "{v:?}");
    }

    // -- sink -------------------------------------------------------------

    #[test]
    fn sink_records_and_drains() {
        reset();
        assert!(is_clean());
        audit(&Snapshot::PrefetchFetch { now: cy(5), bus_free: false });
        assert!(!is_clean());
        assert_eq!(audits(), 1);
        let v = take();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].checker, "prefetch-bus-priority");
        assert!(is_clean());
        reset();
        assert_eq!(audits(), 0);
    }
}
