//! Minimal wall-clock microbenchmark harness, pure std.
//!
//! Replaces the external criterion dependency so the bench targets
//! build and run offline: `cargo bench -p psb-bench` executes each
//! `[[bench]]` binary's `main`, which calls [`bench`] per measurement.
//! Numbers are indicative (no outlier rejection), which is all the
//! repo needs for before/after comparisons on one machine.
//!
//! Every measurement is also recorded in a process-wide collector;
//! call [`write_json`] at the end of `main` to merge the results into
//! the workspace's `BENCH_psb.json` (schema `psb-bench-v1`, emitted
//! through the same [`psb_obs::Json`] writer as the run artifacts).

use psb_obs::{json, Json};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// Benchmark name, unique per measurement.
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration of the final batch.
    pub ns_per_iter: f64,
    /// Iterations in the final (timed) batch — an exact count, taken
    /// straight from the loop bound.
    pub iters: u64,
}

impl BenchResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name.as_str())),
            ("ns_per_iter", Json::f64(self.ns_per_iter)),
            ("iters", Json::u64(self.iters)),
        ])
    }
}

/// Process-wide result collector, merged by name so re-running a
/// measurement in one process keeps the latest number.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Artifact file name; [`write_json_default`] puts it at the workspace
/// root regardless of the working directory `cargo bench` picked.
pub const BENCH_JSON: &str = "BENCH_psb.json";

/// Target wall-clock time for one measurement. Override with the
/// `PSB_BENCH_MS` environment variable (e.g. `PSB_BENCH_MS=5` for a
/// smoke run in CI).
fn budget() -> Duration {
    let ms = std::env::var("PSB_BENCH_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(200u64);
    Duration::from_millis(ms.max(1))
}

/// Measure `f` by doubling the batch size until the batch fills the
/// time budget, then report nanoseconds per iteration. The timed loop
/// is allocation-free — a plain counted loop around `f` — so the
/// iteration count divides out nothing but the workload itself.
pub fn bench(name: &str, mut f: impl FnMut()) -> BenchResult {
    let budget = budget();
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= budget || iters >= 1 << 32 {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            // lint:allow(println) — bench harness console output.
            println!("{name:<32} {ns:>12.1} ns/iter  ({iters} iters)");
            let result = BenchResult { name: name.to_owned(), ns_per_iter: ns, iters };
            record(result.clone());
            return result;
        }
        // Aim straight for the budget once we have a signal; otherwise
        // keep doubling from the cold start.
        let grown = if elapsed.as_nanos() > 0 {
            let scale = budget.as_nanos() as f64 / elapsed.as_nanos() as f64;
            ((iters as f64 * scale * 1.2) as u64).max(iters * 2)
        } else {
            iters * 4
        };
        iters = grown.min(1 << 32);
    }
}

/// Print a group header so bench output stays scannable.
pub fn group(name: &str) {
    // lint:allow(println) — bench harness console output.
    println!("\n== {name} ==");
}

fn record(result: BenchResult) {
    let mut all = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    match all.iter_mut().find(|b| b.name == result.name) {
        Some(existing) => *existing = result,
        None => all.push(result),
    }
}

/// A copy of every result recorded so far in this process.
pub fn results() -> Vec<BenchResult> {
    RESULTS.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

fn result_from_json(v: &Json) -> Option<BenchResult> {
    Some(BenchResult {
        name: v.get("name")?.as_str()?.to_owned(),
        ns_per_iter: v.get("ns_per_iter")?.as_f64()?,
        iters: v.get("iters")?.as_u64()?,
    })
}

/// Serializes `results` as a `psb-bench-v1` document.
pub fn results_json(results: &[BenchResult]) -> Json {
    Json::obj([
        ("schema", Json::str("psb-bench-v1")),
        ("results", Json::arr(results.iter().map(BenchResult::to_json))),
    ])
}

/// Merges this process's results into the JSON artifact at `path`
/// (usually [`BENCH_JSON`]): existing entries with the same name are
/// replaced, everything else is preserved, so the three bench binaries
/// build up one file across invocations.
pub fn write_json(path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut merged: Vec<BenchResult> = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| json::parse(&text).ok())
        .and_then(|doc| {
            let items = doc.get("results")?.as_arr()?;
            Some(items.iter().filter_map(result_from_json).collect())
        })
        .unwrap_or_default();
    for r in results() {
        match merged.iter_mut().find(|b| b.name == r.name) {
            Some(existing) => *existing = r,
            None => merged.push(r),
        }
    }
    std::fs::write(path, results_json(&merged).to_string())
}

/// [`write_json`] to [`BENCH_JSON`] at the workspace root (two levels
/// up from this crate's manifest). Returns the path written.
pub fn write_json_default() -> std::io::Result<std::path::PathBuf> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../").join(BENCH_JSON);
    write_json(&path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_exact_iteration_count() {
        let r = bench("micro_test_counter", || {
            std::hint::black_box(1 + 1);
        });
        assert!(r.iters >= 1);
        assert!(r.ns_per_iter >= 0.0);
        assert!(results().iter().any(|b| b.name == "micro_test_counter"));
    }

    #[test]
    fn results_json_round_trips_and_merges() {
        let a = BenchResult { name: "a".into(), ns_per_iter: 12.5, iters: 1000 };
        let b = BenchResult { name: "b".into(), ns_per_iter: 3.0, iters: 64 };
        let doc = results_json(&[a.clone(), b.clone()]);
        let back = json::parse(&doc.to_string()).unwrap();
        assert_eq!(back.get("schema").and_then(Json::as_str), Some("psb-bench-v1"));
        let items = back.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(result_from_json(&items[0]), Some(a));
        assert_eq!(result_from_json(&items[1]), Some(b));
    }
}
