//! Minimal wall-clock microbenchmark harness, pure std.
//!
//! Replaces the external criterion dependency so the bench targets
//! build and run offline: `cargo bench -p psb-bench` executes each
//! `[[bench]]` binary's `main`, which calls [`bench`] per measurement.
//! Numbers are indicative (no outlier rejection), which is all the
//! repo needs for before/after comparisons on one machine.

use std::time::{Duration, Instant};

/// Target wall-clock time for one measurement. Override with the
/// `PSB_BENCH_MS` environment variable (e.g. `PSB_BENCH_MS=5` for a
/// smoke run in CI).
fn budget() -> Duration {
    let ms = std::env::var("PSB_BENCH_MS").ok().and_then(|s| s.parse().ok()).unwrap_or(200u64);
    Duration::from_millis(ms.max(1))
}

/// Measure `f` by doubling the batch size until the batch fills the
/// time budget, then report nanoseconds per iteration.
pub fn bench(name: &str, mut f: impl FnMut()) {
    let budget = budget();
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= budget || iters >= 1 << 32 {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("{name:<32} {ns:>12.1} ns/iter  ({iters} iters)");
            return;
        }
        // Aim straight for the budget once we have a signal; otherwise
        // keep doubling from the cold start.
        let grown = if elapsed.as_nanos() > 0 {
            let scale = budget.as_nanos() as f64 / elapsed.as_nanos() as f64;
            ((iters as f64 * scale * 1.2) as u64).max(iters * 2)
        } else {
            iters * 4
        };
        iters = grown.min(1 << 32);
    }
}

/// Print a group header so bench output stays scannable.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}
