//! Minimal wall-clock microbenchmark harness, pure std.
//!
//! Replaces the external criterion dependency so the bench targets
//! build and run offline: `cargo bench -p psb-bench` executes each
//! `[[bench]]` binary's `main`, which calls [`bench`] per measurement.
//! Numbers are indicative (no outlier rejection), which is all the
//! repo needs for before/after comparisons on one machine.
//!
//! Every measurement is also recorded in a process-wide collector;
//! call [`write_json`] at the end of `main` to merge the results into
//! the workspace's `BENCH_psb.json` (schema `psb-bench-v1`, emitted
//! through the same [`psb_obs::Json`] writer as the run artifacts).

use psb_obs::{json, Json};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// Benchmark name, unique per measurement.
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration of the final batch.
    pub ns_per_iter: f64,
    /// Iterations in the final (timed) batch — an exact count, taken
    /// straight from the loop bound.
    pub iters: u64,
}

impl BenchResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(self.name.as_str())),
            ("ns_per_iter", Json::f64(self.ns_per_iter)),
            ("iters", Json::u64(self.iters)),
        ])
    }
}

/// Process-wide result collector, merged by name so re-running a
/// measurement in one process keeps the latest number. Micro rows and
/// whole-run rows are kept apart: they land in different artifact
/// sections so a regression gate can apply a tight tolerance to the
/// micro numbers without tripping over 100 ms-scale run rows.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Process-wide collector for whole-run rows (see [`bench_run`]).
static RUNS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Artifact file name; [`write_json_default`] puts it at the workspace
/// root regardless of the working directory `cargo bench` picked.
pub const BENCH_JSON: &str = "BENCH_psb.json";

/// Side artifact used when the measurement budget is below the default:
/// short-budget numbers are too noisy to overwrite the committed
/// baseline, but are still useful to inspect after a CI smoke run.
pub const BENCH_SMOKE_JSON: &str = "BENCH_psb.smoke.json";

/// The default per-measurement budget in milliseconds; results measured
/// below this are quarantined to [`BENCH_SMOKE_JSON`].
pub const DEFAULT_BUDGET_MS: u64 = 200;

/// Target wall-clock time for one measurement in milliseconds. Override
/// with the `PSB_BENCH_MS` environment variable (e.g. `PSB_BENCH_MS=5`
/// for a smoke run in CI).
fn budget_ms() -> u64 {
    std::env::var("PSB_BENCH_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_BUDGET_MS)
        .max(1)
}

/// Target wall-clock time for one measurement.
fn budget() -> Duration {
    Duration::from_millis(budget_ms())
}

/// Measure `f` by doubling the batch size until the batch fills the
/// time budget, then report nanoseconds per iteration. The timed loop
/// is allocation-free — a plain counted loop around `f` — so the
/// iteration count divides out nothing but the workload itself.
pub fn bench(name: &str, mut f: impl FnMut()) -> BenchResult {
    let budget = budget();
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= budget || iters >= 1 << 32 {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            // psb-lint: allow(println): bench harness console output.
            println!("{name:<32} {ns:>12.1} ns/iter  ({iters} iters)");
            let result = BenchResult { name: name.to_owned(), ns_per_iter: ns, iters };
            record(result.clone());
            return result;
        }
        // Aim straight for the budget once we have a signal; otherwise
        // keep doubling from the cold start.
        let grown = if elapsed.as_nanos() > 0 {
            let scale = budget.as_nanos() as f64 / elapsed.as_nanos() as f64;
            ((iters as f64 * scale * 1.2) as u64).max(iters * 2)
        } else {
            iters * 4
        };
        iters = grown.min(1 << 32);
    }
}

/// Times one whole-system run per call of `f` — no doubling-batch
/// search, a single timed invocation — and records it in the `runs`
/// section of the artifact. Use for ~100 ms-scale end-to-end rows that
/// would otherwise pollute the micro `results` a regression gate
/// applies a per-cent tolerance to.
pub fn bench_run(name: &str, mut f: impl FnMut()) -> BenchResult {
    let start = Instant::now();
    f();
    let ns = start.elapsed().as_nanos() as f64;
    // psb-lint: allow(println): bench harness console output.
    println!("{name:<32} {ns:>12.1} ns/run");
    let result = BenchResult { name: name.to_owned(), ns_per_iter: ns, iters: 1 };
    upsert(&RUNS, result.clone());
    result
}

/// Print a group header so bench output stays scannable.
pub fn group(name: &str) {
    // psb-lint: allow(println): bench harness console output.
    println!("\n== {name} ==");
}

fn upsert(collector: &Mutex<Vec<BenchResult>>, result: BenchResult) {
    let mut all = collector.lock().unwrap_or_else(|e| e.into_inner());
    match all.iter_mut().find(|b| b.name == result.name) {
        Some(existing) => *existing = result,
        None => all.push(result),
    }
}

fn record(result: BenchResult) {
    upsert(&RESULTS, result);
}

/// A copy of every micro result recorded so far in this process.
pub fn results() -> Vec<BenchResult> {
    RESULTS.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// A copy of every whole-run result recorded so far in this process.
pub fn run_results() -> Vec<BenchResult> {
    RUNS.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

fn result_from_json(v: &Json) -> Option<BenchResult> {
    Some(BenchResult {
        name: v.get("name")?.as_str()?.to_owned(),
        ns_per_iter: v.get("ns_per_iter")?.as_f64()?,
        iters: v.get("iters")?.as_u64()?,
    })
}

/// Serializes micro `results` and whole-run `runs` rows as a
/// `psb-bench-v1` document.
pub fn results_json(results: &[BenchResult], runs: &[BenchResult]) -> Json {
    Json::obj([
        ("schema", Json::str("psb-bench-v1")),
        ("results", Json::arr(results.iter().map(BenchResult::to_json))),
        ("runs", Json::arr(runs.iter().map(BenchResult::to_json))),
    ])
}

fn load_section(doc: &Json, key: &str) -> Vec<BenchResult> {
    doc.get(key)
        .and_then(Json::as_arr)
        .map(|items| items.iter().filter_map(result_from_json).collect())
        .unwrap_or_default()
}

/// Merges this process's results into the JSON artifact at `path`
/// (usually [`BENCH_JSON`]): existing entries with the same name are
/// replaced, everything else is preserved, so the three bench binaries
/// build up one file across invocations. Micro and whole-run rows are
/// kept in their own sections; a row moving between sections (e.g. a
/// pre-split artifact holding run rows under `results`) is migrated
/// rather than duplicated.
pub fn write_json(path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    let path = path.as_ref();
    let doc = std::fs::read_to_string(path).ok().and_then(|text| json::parse(&text).ok());
    let mut merged = doc.as_ref().map(|d| load_section(d, "results")).unwrap_or_default();
    let mut merged_runs = doc.as_ref().map(|d| load_section(d, "runs")).unwrap_or_default();
    for r in results() {
        merged_runs.retain(|b| b.name != r.name);
        match merged.iter_mut().find(|b| b.name == r.name) {
            Some(existing) => *existing = r,
            None => merged.push(r),
        }
    }
    for r in run_results() {
        merged.retain(|b| b.name != r.name);
        match merged_runs.iter_mut().find(|b| b.name == r.name) {
            Some(existing) => *existing = r,
            None => merged_runs.push(r),
        }
    }
    std::fs::write(path, results_json(&merged, &merged_runs).to_string())
}

/// Chooses the artifact file for this process's measurement conditions:
/// an explicit destination wins, a sub-default budget is quarantined to
/// the smoke side file, and only a full-budget run may touch the
/// committed [`BENCH_JSON`]. Pure so the policy is unit-testable.
fn artifact_name(out_override: Option<&str>, budget_ms: u64) -> std::path::PathBuf {
    match out_override {
        Some(path) if !path.is_empty() => std::path::PathBuf::from(path),
        _ if budget_ms < DEFAULT_BUDGET_MS => std::path::PathBuf::from(BENCH_SMOKE_JSON),
        _ => std::path::PathBuf::from(BENCH_JSON),
    }
}

/// [`write_json`] to the artifact the current conditions allow:
/// `PSB_BENCH_OUT` (when set) names the destination outright; otherwise
/// a `PSB_BENCH_MS` below the 200 ms default redirects to
/// [`BENCH_SMOKE_JSON`] so CI smoke runs can never clobber the
/// committed baseline with noisy short-budget numbers. Relative names
/// resolve at the workspace root (two levels up from this crate's
/// manifest). Returns the path written.
pub fn write_json_default() -> std::io::Result<std::path::PathBuf> {
    let out = std::env::var("PSB_BENCH_OUT").ok();
    let name = artifact_name(out.as_deref(), budget_ms());
    let path = if name.is_absolute() {
        name
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../").join(name)
    };
    write_json(&path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_exact_iteration_count() {
        let r = bench("micro_test_counter", || {
            std::hint::black_box(1 + 1);
        });
        assert!(r.iters >= 1);
        assert!(r.ns_per_iter >= 0.0);
        assert!(results().iter().any(|b| b.name == "micro_test_counter"));
    }

    #[test]
    fn results_json_round_trips_and_merges() {
        let a = BenchResult { name: "a".into(), ns_per_iter: 12.5, iters: 1000 };
        let b = BenchResult { name: "b".into(), ns_per_iter: 3.0, iters: 64 };
        let r = BenchResult { name: "Base".into(), ns_per_iter: 1.0e8, iters: 1 };
        let doc = results_json(&[a.clone(), b.clone()], std::slice::from_ref(&r));
        let back = json::parse(&doc.to_string()).unwrap();
        assert_eq!(back.get("schema").and_then(Json::as_str), Some("psb-bench-v1"));
        let items = back.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(result_from_json(&items[0]), Some(a));
        assert_eq!(result_from_json(&items[1]), Some(b));
        let runs = back.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(result_from_json(&runs[0]), Some(r));
    }

    #[test]
    fn sub_default_budget_is_quarantined_to_the_smoke_file() {
        // The committed artifact is only writable at the full default
        // budget; anything shorter (e.g. PSB_BENCH_MS=5 in CI) must land
        // in the side file, and an explicit destination always wins.
        assert_eq!(artifact_name(None, DEFAULT_BUDGET_MS), std::path::Path::new(BENCH_JSON));
        assert_eq!(artifact_name(None, DEFAULT_BUDGET_MS + 300), std::path::Path::new(BENCH_JSON));
        assert_eq!(artifact_name(None, 5), std::path::Path::new(BENCH_SMOKE_JSON));
        assert_eq!(
            artifact_name(None, DEFAULT_BUDGET_MS - 1),
            std::path::Path::new(BENCH_SMOKE_JSON)
        );
        assert_eq!(artifact_name(Some("/tmp/x.json"), 5), std::path::Path::new("/tmp/x.json"));
        assert_eq!(artifact_name(Some(""), 5), std::path::Path::new(BENCH_SMOKE_JSON));
    }

    #[test]
    fn write_json_migrates_run_rows_out_of_results() {
        // A pre-split artifact kept whole-run rows in `results`; merging
        // a fresh run row with the same name must move it to `runs`
        // without duplicating it.
        let dir = std::env::temp_dir().join("psb_bench_migrate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        std::fs::write(
            &path,
            r#"{"schema":"psb-bench-v1","results":[
                {"name":"micro_a","ns_per_iter":10.0,"iters":100},
                {"name":"run_row","ns_per_iter":9.9e7,"iters":1}]}"#,
        )
        .unwrap();
        upsert(&RUNS, BenchResult { name: "run_row".into(), ns_per_iter: 1.0e8, iters: 1 });
        write_json(&path).unwrap();
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let names = |key: &str| -> Vec<String> {
            doc.get(key)
                .and_then(Json::as_arr)
                .unwrap()
                .iter()
                .filter_map(|r| Some(r.get("name")?.as_str()?.to_owned()))
                .collect()
        };
        assert!(names("results").contains(&"micro_a".to_owned()));
        assert!(!names("results").contains(&"run_row".to_owned()), "row must migrate");
        assert_eq!(names("runs").iter().filter(|n| *n == "run_row").count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
        RUNS.lock().unwrap_or_else(|e| e.into_inner()).retain(|b| b.name != "run_row");
    }
}
