//! Figure 9: bus utilization — percent of cycles the L1↔L2 bus and the
//! L2↔memory bus were busy, per benchmark and configuration.

use psb_bench::{machine_banner, scale_arg};
use psb_sim::{run_paper_row, PrefetcherKind, SimStats, Table};
use psb_workloads::Benchmark;

fn main() {
    let scale = scale_arg();
    println!("Figure 9 — bus utilization ({})\n", machine_banner(scale));

    // Run the whole matrix once, then print both tables.
    let mut results: Vec<(Benchmark, Vec<(PrefetcherKind, SimStats)>)> = Vec::new();
    for bench in Benchmark::ALL {
        eprintln!("running {bench}...");
        results.push((bench, run_paper_row(bench, scale)));
    }

    type Metric = fn(&SimStats) -> f64;
    let tables: [(&str, Metric); 2] = [
        ("L1-L2 bus busy %", |s| s.l1_l2_bus_percent()),
        ("L2-MEM bus busy %", |s| s.l2_mem_bus_percent()),
    ];
    for (label, pick) in tables {
        let mut headers = vec!["program".into()];
        headers.extend(PrefetcherKind::PAPER.iter().map(|k| k.label().to_owned()));
        let mut t = Table::new(headers);
        for (bench, row) in &results {
            let mut cells = vec![bench.name().to_owned()];
            for (_, stats) in row {
                cells.push(format!("{:.1}", pick(stats)));
            }
            t.row(cells);
        }
        println!("{label}:\n{t}");
    }
    println!("(Paper: sis's L1-L2 utilization blows up ~4x under 2Miss allocation.)");
}
