//! Figure 10: percent speedup of PC-stride and PSB (ConfAlloc-Priority)
//! over a same-cache baseline, varying the L1D geometry: 16K 4-way,
//! 32K 2-way, 32K 4-way.

use psb_bench::{machine_banner, scale_arg};
use psb_mem::CacheConfig;
use psb_sim::{run_config, MachineConfig, PrefetcherKind, Table};
use psb_workloads::Benchmark;

fn main() {
    let scale = scale_arg();
    println!("Figure 10 — speedup vs. L1D geometry ({})\n", machine_banner(scale));

    let caches = [
        ("16K 4-way", CacheConfig::l1d_16k_4way()),
        ("32K 2-way", CacheConfig::l1d_32k_2way()),
        ("32K 4-way", CacheConfig::l1d_32k_4way()),
    ];
    let kinds = [PrefetcherKind::PcStride, PrefetcherKind::PsbConfPriority];

    let mut headers = vec!["program".into(), "prefetcher".into()];
    headers.extend(caches.iter().map(|(n, _)| n.to_string()));
    let mut t = Table::new(headers);

    for bench in Benchmark::ALL {
        eprintln!("running {bench} (3 caches x 3 configs)...");
        // Baselines per cache geometry.
        let bases: Vec<_> = caches
            .iter()
            .map(|(_, c)| run_config(bench, MachineConfig::baseline().with_l1d(*c), scale))
            .collect();
        for kind in kinds {
            let mut cells = vec![bench.name().to_owned(), kind.label().to_owned()];
            for ((_, cache), base) in caches.iter().zip(&bases) {
                let cfg = MachineConfig::baseline().with_l1d(*cache).with_prefetcher(kind);
                let s = run_config(bench, cfg, scale);
                cells.push(format!("{:+.1}%", s.speedup_percent_over(base)));
            }
            t.row(cells);
        }
    }
    print!("\n{t}");
    println!("\n(Paper: the speedup is largely insensitive to L1D size/associativity.)");
}
