//! Figure 7: L1 data-cache miss rates (accesses to in-flight blocks count
//! as misses), per benchmark and configuration, including the baseline.

use psb_bench::{machine_banner, scale_arg};
use psb_sim::{run_paper_row, PrefetcherKind, Table};
use psb_workloads::Benchmark;

fn main() {
    let scale = scale_arg();
    println!("Figure 7 — L1D miss rate, in-flight counted as miss ({})\n", machine_banner(scale));

    let mut headers = vec!["program".into()];
    headers.extend(PrefetcherKind::PAPER.iter().map(|k| k.label().to_owned()));
    let mut t = Table::new(headers);

    for bench in Benchmark::ALL {
        eprintln!("running {bench}...");
        let row = run_paper_row(bench, scale);
        let mut cells = vec![bench.name().to_owned()];
        for (_, stats) in &row {
            cells.push(format!("{:.3}", stats.l1d_miss_rate()));
        }
        t.row(cells);
    }
    print!("\n{t}");
}
