//! Ablation (ours): sweep the Markov table's size and delta width and
//! measure the speedup PSB retains on the pointer benchmarks — the
//! trade-off behind the paper's choice of "2K entries × 16 bits = 4 KB".

use psb_bench::scale_arg;
use psb_core::{MarkovTable, SbConfig, SfmPredictor, StreamEngine, StrideTable};
use psb_sim::{run_point, MachineConfig, PrefetcherKind, Simulation, Table};
use psb_workloads::Benchmark;

fn psb_with_markov(entries: usize, bits: u32) -> Box<StreamEngine<SfmPredictor>> {
    let sfm = SfmPredictor::new(StrideTable::paper_baseline(), MarkovTable::new(entries, bits), 32);
    Box::new(StreamEngine::new(
        SbConfig::psb_conf_priority(),
        sfm,
        format!("psb-{entries}x{bits}b"),
    ))
}

fn main() {
    let scale = scale_arg();
    println!("Ablation — Markov geometry vs. PSB speedup (ConfAlloc-Priority)\n");

    let geometries: [(usize, u32); 6] =
        [(256, 16), (512, 16), (1024, 16), (2048, 16), (2048, 8), (2048, 24)];
    let benches = [Benchmark::Health, Benchmark::Burg, Benchmark::DeltaBlue];

    let mut headers = vec!["geometry (data bytes)".into()];
    headers.extend(benches.iter().map(|b| b.name().to_owned()));
    let mut t = Table::new(headers);

    // Per-benchmark baselines.
    let bases: Vec<_> = benches
        .iter()
        .map(|&b| {
            eprintln!("baseline {b}...");
            run_point(b, PrefetcherKind::None, scale)
        })
        .collect();

    for (entries, bits) in geometries {
        let label = format!("{entries}x{bits}b ({}B)", entries * bits as usize / 8);
        eprintln!("sweeping {label}...");
        let mut cells = vec![label];
        for (&bench, base) in benches.iter().zip(&bases) {
            let s = Simulation::new(MachineConfig::baseline(), bench.trace(scale), u64::MAX)
                .with_engine(psb_with_markov(entries, bits))
                .run();
            cells.push(format!("{:+.1}%", s.speedup_percent_over(base)));
        }
        t.row(cells);
    }
    print!("\n{t}");
    println!("\n(Expectation: gains saturate near the paper's 2Kx16b = 4KB point;");
    println!("8-bit deltas drop cross-structure transitions and lose speedup.)");
}
