//! Figure 8: average load latency in cycles, per benchmark and
//! configuration, including the baseline.

use psb_bench::{machine_banner, scale_arg};
use psb_sim::{run_paper_row, PrefetcherKind, Table};
use psb_workloads::Benchmark;

fn main() {
    let scale = scale_arg();
    println!("Figure 8 — average load latency in cycles ({})\n", machine_banner(scale));

    let mut headers = vec!["program".into()];
    headers.extend(PrefetcherKind::PAPER.iter().map(|k| k.label().to_owned()));
    let mut t = Table::new(headers);

    for bench in Benchmark::ALL {
        eprintln!("running {bench}...");
        let row = run_paper_row(bench, scale);
        let mut cells = vec![bench.name().to_owned()];
        for (_, stats) in &row {
            cells.push(format!("{:.2}", stats.avg_load_latency()));
        }
        t.row(cells);
    }
    print!("\n{t}");
    println!("\n(Paper: PSB removes ~4 cycles for deltablue, ~3 for burg.)");
}
