//! Figure 6: prefetch accuracy — prefetches used by the processor
//! divided by prefetches issued, per benchmark and configuration.

use psb_bench::{machine_banner, scale_arg};
use psb_sim::{run_paper_row, PrefetcherKind, Table};
use psb_workloads::Benchmark;

fn main() {
    let scale = scale_arg();
    println!("Figure 6 — prefetch accuracy ({})\n", machine_banner(scale));

    let configs = &PrefetcherKind::PAPER[1..];
    let mut headers = vec!["program".into()];
    headers.extend(configs.iter().map(|k| k.label().to_owned()));
    let mut t = Table::new(headers);

    for bench in Benchmark::ALL {
        eprintln!("running {bench}...");
        let row = run_paper_row(bench, scale);
        let mut cells = vec![bench.name().to_owned()];
        for (_, stats) in &row[1..] {
            cells.push(format!("{:.1}%", stats.prefetch_accuracy() * 100.0));
        }
        t.row(cells);
    }
    print!("\n{t}");
    println!("\n(Paper: confidence allocation roughly doubles deltablue's accuracy.)");
}
