//! Diagnostic dump: every collected statistic for one benchmark across
//! all configurations. Not a paper artifact — a debugging/validation aid.
//!
//! ```sh
//! cargo run --release -p psb-bench --bin diag -- <benchmark> [scale]
//! ```

use psb_sim::{run_paper_row, Table};
use psb_workloads::Benchmark;

fn main() {
    let bench: Benchmark =
        std::env::args().nth(1).unwrap_or_else(|| "deltablue".into()).parse().unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
    let scale: u32 = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1);

    let rows = run_paper_row(bench, scale);
    let base_ipc = rows[0].1.ipc();

    let mut t = Table::new(
        [
            "config", "IPC", "speedup", "L1 MR", "ld-lat", "bus12", "bus2m", "lookups", "sbhit%",
            "issued", "used", "acc%", "alloc", "rej", "supp", "bp-acc",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );
    for (kind, s) in &rows {
        let p = s.prefetch;
        t.row(vec![
            kind.label().into(),
            format!("{:.3}", s.ipc()),
            format!("{:+.1}%", (s.ipc() / base_ipc - 1.0) * 100.0),
            format!("{:.3}", s.l1d_miss_rate()),
            format!("{:.1}", s.avg_load_latency()),
            format!("{:.1}", s.l1_l2_bus_percent()),
            format!("{:.1}", s.l2_mem_bus_percent()),
            format!("{}", p.lookups),
            format!("{:.1}", p.hit_rate() * 100.0),
            format!("{}", p.issued),
            format!("{}", p.used),
            format!("{:.1}", p.accuracy() * 100.0),
            format!("{}", p.allocations),
            format!("{}", p.alloc_rejected),
            format!("{}", p.suppressed),
            format!("{:.3}", s.cpu.bpred.accuracy()),
        ]);
    }
    println!("{bench} @ scale {scale}\n{t}");
}
