//! Figure 11: IPC with and without perfect store-set memory
//! disambiguation, for the baseline and for PSB (ConfAlloc-Priority).

use psb_bench::{machine_banner, scale_arg};
use psb_cpu::Disambiguation;
use psb_sim::{f2, run_config, MachineConfig, PrefetcherKind, Table};
use psb_workloads::Benchmark;

fn main() {
    let scale = scale_arg();
    println!("Figure 11 — IPC with/without perfect disambiguation ({})\n", machine_banner(scale));

    let mut t = Table::new(vec![
        "program".into(),
        "Base-NoDis".into(),
        "Base-Dis".into(),
        "PSB-NoDis".into(),
        "PSB-Dis".into(),
    ]);

    for bench in Benchmark::ALL {
        eprintln!("running {bench} (4 configurations)...");
        let mut cells = vec![bench.name().to_owned()];
        for kind in [PrefetcherKind::None, PrefetcherKind::PsbConfPriority] {
            for dis in [Disambiguation::WaitForStores, Disambiguation::Perfect] {
                let cfg = MachineConfig::baseline().with_prefetcher(kind).with_disambiguation(dis);
                cells.push(f2(run_config(bench, cfg, scale).ipc()));
            }
        }
        t.row(cells);
    }
    print!("\n{t}");
    println!("\n(Paper: perfect store sets help the base for deltablue/sis but add");
    println!("little on top of prefetching, except for sis.)");
}
