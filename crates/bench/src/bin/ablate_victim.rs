//! Extension (ours): victim cache vs. prefetching.
//!
//! The paper's introduction lists victim caches among the standard
//! miss-latency reducers. This experiment shows why they are not a
//! substitute for prefetching on these workloads: a victim cache rescues
//! *conflict* misses, but a pointer chase over a working set several
//! times the L1 misses on *capacity*, which only running ahead can hide.

use psb_bench::scale_arg;
use psb_sim::{run_config, MachineConfig, PrefetcherKind, Table};
use psb_workloads::Benchmark;

fn main() {
    let scale = scale_arg();
    println!("Extension — 16-entry victim cache vs. PSB prefetching\n");

    let mut t = Table::new(vec![
        "program".into(),
        "victim only".into(),
        "PSB only".into(),
        "victim + PSB".into(),
    ]);

    for bench in Benchmark::ALL {
        eprintln!("running {bench} (4 configurations)...");
        let base = run_config(bench, MachineConfig::baseline(), scale);
        let victim = run_config(bench, MachineConfig::baseline().with_victim_cache(16), scale);
        let psb = run_config(
            bench,
            MachineConfig::baseline().with_prefetcher(PrefetcherKind::PsbConfPriority),
            scale,
        );
        let both = run_config(
            bench,
            MachineConfig::baseline()
                .with_prefetcher(PrefetcherKind::PsbConfPriority)
                .with_victim_cache(16),
            scale,
        );
        t.row(vec![
            bench.name().into(),
            format!("{:+.1}%", victim.speedup_percent_over(&base)),
            format!("{:+.1}%", psb.speedup_percent_over(&base)),
            format!("{:+.1}%", both.speedup_percent_over(&base)),
        ]);
    }
    print!("\n{t}");
    println!("\n(Victim caches recover conflict misses; these suites miss on capacity.)");
}
