//! Figure 5: percent speedup over the no-prefetch baseline for PC-stride
//! and the four PSB configurations, per benchmark, plus the paper's
//! pointer-based averages.

use psb_bench::{machine_banner, scale_arg};
use psb_sim::{average_speedup_percent, run_paper_row, PrefetcherKind, Table};
use psb_workloads::Benchmark;

fn main() {
    let scale = scale_arg();
    println!("Figure 5 — percent speedup over base ({})\n", machine_banner(scale));

    let configs = &PrefetcherKind::PAPER[1..];
    let mut headers = vec!["program".into()];
    headers.extend(configs.iter().map(|k| k.label().to_owned()));
    let mut t = Table::new(headers);

    let mut per_config: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    for bench in Benchmark::ALL {
        eprintln!("running {bench} (6 configurations)...");
        let row = run_paper_row(bench, scale);
        let base = &row[0].1;
        let mut cells = vec![bench.name().to_owned()];
        for (i, (_, stats)) in row[1..].iter().enumerate() {
            let sp = stats.speedup_percent_over(base);
            cells.push(format!("{sp:+.1}%"));
            if Benchmark::POINTER_BASED.contains(&bench) {
                per_config[i].push(sp);
            }
        }
        t.row(cells);
    }
    let mut avg = vec!["ptr-avg".to_owned()];
    for sps in &per_config {
        avg.push(format!("{:+.1}%", average_speedup_percent(sps)));
    }
    t.row(avg);
    print!("\n{t}");
    println!("\n(Paper: ~30% avg over base for PSB, ~10% over PC-stride, on pointer programs.)");
}
