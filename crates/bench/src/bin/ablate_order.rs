//! Ablation: first-order vs. second-order Stride-Filtered Markov.
//!
//! The paper: "We simulated higher order Markov predictors ... but saw
//! little to no improvement in prediction accuracy and coverage over
//! first order Markov predictor for the programs we examined." This
//! binary re-verifies that claim on the synthetic suite.

use psb_bench::scale_arg;
use psb_core::{SbConfig, Sfm2Predictor, StreamEngine};
use psb_sim::{run_point, MachineConfig, PrefetcherKind, Simulation, Table};
use psb_workloads::Benchmark;

fn main() {
    let scale = scale_arg();
    println!("Ablation — Markov order (ConfAlloc-Priority PSB)\n");

    let mut t =
        Table::new(vec!["program".into(), "order-1".into(), "order-2".into(), "delta".into()]);

    for bench in Benchmark::ALL {
        eprintln!("running {bench}...");
        let base = run_point(bench, PrefetcherKind::None, scale);
        let o1 = run_point(bench, PrefetcherKind::PsbConfPriority, scale);
        let o2 = Simulation::new(MachineConfig::baseline(), bench.trace(scale), u64::MAX)
            .with_engine(Box::new(StreamEngine::new(
                SbConfig::psb_conf_priority(),
                Sfm2Predictor::paper_baseline(),
                "psb-order2".to_owned(),
            )))
            .run();
        let s1 = o1.speedup_percent_over(&base);
        let s2 = o2.speedup_percent_over(&base);
        t.row(vec![
            bench.name().into(),
            format!("{s1:+.1}%"),
            format!("{s2:+.1}%"),
            format!("{:+.1}pt", s2 - s1),
        ]);
    }
    print!("\n{t}");
    println!("\n(Paper: higher order \"provided little improvement\".)");
}
