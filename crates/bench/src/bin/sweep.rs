//! Full experiment matrix → CSV.
//!
//! Runs every (benchmark × prefetcher) point on the baseline machine and
//! prints one CSV row per run, for downstream analysis in any
//! spreadsheet/pandas pipeline.
//!
//! ```sh
//! cargo run --release -p psb-bench --bin sweep [scale] > matrix.csv
//! ```

use psb_bench::scale_arg;
use psb_sim::{run_point, PrefetcherKind, SimStats};
use psb_workloads::Benchmark;

fn main() {
    let scale = scale_arg();
    let kinds = [
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::DemandMarkov,
        PrefetcherKind::FetchDirected,
        PrefetcherKind::Sequential,
        PrefetcherKind::PcStride,
        PrefetcherKind::Psb2MissRr,
        PrefetcherKind::Psb2MissPriority,
        PrefetcherKind::PsbConfRr,
        PrefetcherKind::PsbConfPriority,
    ];
    println!("benchmark,prefetcher,{}", SimStats::CSV_HEADER);
    for bench in Benchmark::ALL {
        for kind in kinds {
            eprintln!("running {bench} / {}...", kind.label());
            let stats = run_point(bench, kind, scale);
            println!("{},{},{}", bench.name(), kind.label(), stats.csv_row());
        }
    }
}
