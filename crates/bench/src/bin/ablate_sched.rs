//! Ablation (ours): sweep the confidence-allocation threshold and the
//! priority-scheduler constants (hit bonus, aging period) that Section 4
//! fixes at θ=1, +2, and 10 — quantifying how sensitive the design is.

use psb_bench::scale_arg;
use psb_core::{AllocFilter, PsbPrefetcher, SbConfig};
use psb_sim::{run_point, MachineConfig, PrefetcherKind, Simulation, Table};
use psb_workloads::Benchmark;

fn run_with(config: SbConfig, bench: Benchmark, scale: u32) -> psb_sim::SimStats {
    Simulation::new(MachineConfig::baseline(), bench.trace(scale), u64::MAX)
        .with_engine(Box::new(PsbPrefetcher::psb(config)))
        .run()
}

fn main() {
    let scale = scale_arg();
    println!("Ablation — allocation threshold & priority constants\n");

    let benches = [Benchmark::DeltaBlue, Benchmark::Sis];
    let bases: Vec<_> = benches
        .iter()
        .map(|&b| {
            eprintln!("baseline {b}...");
            run_point(b, PrefetcherKind::None, scale)
        })
        .collect();

    // Sweep 1: confidence threshold.
    let mut t = Table::new(vec![
        "alloc threshold".into(),
        benches[0].name().into(),
        benches[1].name().into(),
    ]);
    for theta in [0u32, 1, 2, 4, 6] {
        eprintln!("threshold {theta}...");
        let cfg =
            SbConfig::psb_conf_priority().with_filter(AllocFilter::Confidence { threshold: theta });
        let mut cells = vec![format!("theta = {theta}")];
        for (&bench, base) in benches.iter().zip(&bases) {
            let s = run_with(cfg, bench, scale);
            cells.push(format!("{:+.1}%", s.speedup_percent_over(base)));
        }
        t.row(cells);
    }
    println!("{t}");

    // Sweep 2: hit bonus and aging period.
    let mut t2 = Table::new(vec![
        "hit bonus / aging".into(),
        benches[0].name().into(),
        benches[1].name().into(),
    ]);
    for (bonus, aging) in [(1u32, 10u64), (2, 10), (4, 10), (2, 4), (2, 32)] {
        eprintln!("bonus {bonus}, aging {aging}...");
        let mut cfg = SbConfig::psb_conf_priority();
        cfg.hit_bonus = bonus;
        cfg.aging_period = aging;
        let mut cells = vec![format!("+{bonus} / every {aging}")];
        for (&bench, base) in benches.iter().zip(&bases) {
            let s = run_with(cfg, bench, scale);
            cells.push(format!("{:+.1}%", s.speedup_percent_over(base)));
        }
        t2.row(cells);
    }
    println!("{t2}");
    println!("(Paper's choices: theta = 1, +2 per hit, aging every 10 misses.)");
}
