//! Ablation (ours): stream-buffer file geometry — how many buffers and
//! how many entries each. The paper fixes 8 buffers × 4 entries; this
//! sweep shows what that choice buys.

use psb_bench::scale_arg;
use psb_core::{PsbPrefetcher, SbConfig};
use psb_sim::{run_point, MachineConfig, PrefetcherKind, Simulation, Table};
use psb_workloads::Benchmark;

fn main() {
    let scale = scale_arg();
    println!("Ablation — stream-buffer file geometry (ConfAlloc-Priority PSB)\n");

    let geometries: [(usize, usize); 6] = [(2, 4), (4, 4), (8, 2), (8, 4), (8, 8), (16, 4)];
    let benches = [Benchmark::Health, Benchmark::DeltaBlue, Benchmark::Sis];

    let mut headers = vec!["buffers x entries".into()];
    headers.extend(benches.iter().map(|b| b.name().to_owned()));
    let mut t = Table::new(headers);

    let bases: Vec<_> = benches
        .iter()
        .map(|&b| {
            eprintln!("baseline {b}...");
            run_point(b, PrefetcherKind::None, scale)
        })
        .collect();

    for (buffers, entries) in geometries {
        eprintln!("sweeping {buffers}x{entries}...");
        let mut cells = vec![format!("{buffers} x {entries}")];
        for (&bench, base) in benches.iter().zip(&bases) {
            let mut cfg = SbConfig::psb_conf_priority();
            cfg.buffers = buffers;
            cfg.entries_per_buffer = entries;
            let s = Simulation::new(MachineConfig::baseline(), bench.trace(scale), u64::MAX)
                .with_engine(Box::new(PsbPrefetcher::psb(cfg)))
                .run();
            cells.push(format!("{:+.1}%", s.speedup_percent_over(base)));
        }
        t.row(cells);
    }
    print!("\n{t}");
    println!("\n(The paper's 8 x 4 sits at the knee: fewer buffers lose concurrent");
    println!("streams, fewer entries cap run-ahead, and more of either adds little.)");
}
