//! Figure 4: the number of bits needed to represent the Markov table's
//! address differences. For each benchmark, the percent of L1 miss
//! transitions (that reach the Markov stage) representable within N bits
//! of signed cache-block delta.

use psb_bench::{l1_load_miss_stream, scale_arg};
use psb_core::{SfmPredictor, StreamPredictor};
use psb_sim::Table;
use psb_workloads::Benchmark;

fn main() {
    let scale = scale_arg();
    println!("Figure 4 — percent of miss transitions captured vs. delta width (bits)\n");

    let widths = [2usize, 4, 6, 8, 10, 12, 14, 16, 20, 24];
    let mut headers = vec!["program".into()];
    headers.extend(widths.iter().map(|w| format!("{w}b")));
    let mut t = Table::new(headers);

    for bench in Benchmark::ALL {
        eprintln!("analyzing {bench}...");
        let trace = bench.trace(scale);
        let misses = l1_load_miss_stream(&trace);
        // Train the paper's SFM predictor on the miss stream; its Markov
        // stage records the bit-width of every transition it is offered.
        let mut sfm = SfmPredictor::paper_baseline();
        for (pc, addr) in misses {
            sfm.train(pc, addr);
        }
        let hist = sfm.markov_table().delta_width_histogram();
        let mut row = vec![bench.name().to_owned()];
        for &w in &widths {
            row.push(format!("{:.1}%", hist.cdf(w) * 100.0));
        }
        t.row(row);
    }
    print!("\n{t}");
    println!("\n(The paper reports 16 bits capture almost all transitions.)");
}
