//! Table 2: baseline (no-prefetch) characterization of every benchmark —
//! instruction count, L1D miss rate, load/store fractions, IPC, and bus
//! utilizations.

use psb_bench::{machine_banner, scale_arg};
use psb_sim::{f2, pct, run_point, PrefetcherKind, Table};
use psb_workloads::Benchmark;

fn main() {
    let scale = scale_arg();
    println!("Table 2 — baseline results ({})\n", machine_banner(scale));

    let mut t = Table::new(vec![
        "program".into(),
        "#inst (K)".into(),
        "L1 MR".into(),
        "%lds".into(),
        "%sts".into(),
        "IPC".into(),
        "L1-L2 %bus".into(),
        "L2-M %bus".into(),
    ]);
    for bench in Benchmark::ALL {
        eprintln!("running {bench}...");
        let s = run_point(bench, PrefetcherKind::None, scale);
        t.row(vec![
            bench.name().into(),
            format!("{}", s.cpu.committed / 1000),
            f2(s.l1d_miss_rate()),
            pct(s.cpu.load_fraction() * 100.0),
            pct(s.cpu.store_fraction() * 100.0),
            f2(s.ipc()),
            pct(s.l1_l2_bus_percent()),
            pct(s.l2_mem_bus_percent()),
        ]);
    }
    print!("\n{t}");
}
