//! Extension (ours): the paper's Section 3 taxonomy in numbers — every
//! implemented hardware-prefetching model side by side, per benchmark.
//!
//! Compares the demand-based schemes (Smith next-line, Joseph & Grunwald
//! Markov, Pangloss, DSPatch) and the decoupled schemes (Jouppi
//! sequential, Farkas PC-stride, the paper's PSB) over the full suite.

use psb_bench::{machine_banner, scale_arg};
use psb_sim::{run_point, PrefetcherKind, Table};
use psb_workloads::Benchmark;

fn main() {
    let scale = scale_arg();
    println!("Prior-art comparison — percent speedup over base ({})\n", machine_banner(scale));

    let kinds = [
        PrefetcherKind::NextLine,
        PrefetcherKind::DemandMarkov,
        PrefetcherKind::Pangloss,
        PrefetcherKind::Dspatch,
        PrefetcherKind::FetchDirected,
        PrefetcherKind::Sequential,
        PrefetcherKind::PcStride,
        PrefetcherKind::PsbConfPriority,
    ];
    let mut headers = vec!["program".into()];
    headers.extend(kinds.iter().map(|k| k.label().to_owned()));
    let mut t = Table::new(headers);

    for bench in Benchmark::ALL {
        eprintln!("running {bench} ({} configurations)...", kinds.len() + 1);
        let base = run_point(bench, PrefetcherKind::None, scale);
        let mut cells = vec![bench.name().to_owned()];
        for kind in kinds {
            let s = run_point(bench, kind, scale);
            cells.push(format!("{:+.1}%", s.speedup_percent_over(&base)));
        }
        t.row(cells);
    }
    print!("\n{t}");
    println!("\n(Demand-based schemes act only on misses and cannot run ahead of a");
    println!("serialized pointer chase; the PSB's decoupled streams can.)");
}
