//! Shared plumbing for the experiment binaries that regenerate the
//! paper's tables and figures.
//!
//! Each binary (`table2`, `fig4` … `fig11`, `ablate_markov`,
//! `ablate_sched`) prints the rows/series of one paper artifact. Run them
//! with `cargo run --release -p psb-bench --bin <name> [scale]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Pure-std microbenchmark harness used by the `benches/` binaries.
pub mod micro;

use psb_common::{Addr, Cycle};
use psb_cpu::DynInst;
use psb_mem::{Cache, CacheConfig};
use psb_sim::DEFAULT_SCALE;

/// Parses the trace scale from `argv[1]`, defaulting to
/// [`DEFAULT_SCALE`]. Pass a larger scale for longer, steadier runs.
pub fn scale_arg() -> u32 {
    std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(DEFAULT_SCALE)
}

/// Functionally filters a trace through the baseline L1 data cache and
/// returns the (pc, address) *load miss stream* — the stream every
/// predictor in the paper trains on. Store-forwarded loads cannot be
/// detected functionally, but they are rare in the modeled workloads.
pub fn l1_load_miss_stream(trace: &[DynInst]) -> Vec<(Addr, Addr)> {
    let mut l1 = Cache::new(CacheConfig::l1d_32k_4way());
    let mut misses = Vec::new();
    for inst in trace {
        let Some(addr) = inst.mem_addr else { continue };
        if !l1.access(addr) {
            l1.insert(addr);
            if inst.op.is_load() {
                misses.push((inst.pc, addr));
            }
        }
    }
    misses
}

/// A tiny deterministic stand-in for wall-clock-free progress reporting.
pub fn eta_note(done: usize, total: usize) -> String {
    format!("[{done}/{total}]")
}

/// Re-exported so binaries can print a header with the machine summary.
pub fn machine_banner(scale: u32) -> String {
    format!(
        "8-wide OoO, 128 ROB / 64 LSQ; L1D 32K/4w/32B, L2 1M/64B @12cy, \
         DRAM 120cy; buses 8B & 4B per cycle; trace scale {scale}"
    )
}

/// Convenience: the simulated cycle type for benches.
pub type SimCycle = Cycle;

#[cfg(test)]
mod tests {
    use super::*;
    use psb_workloads::Benchmark;

    #[test]
    fn miss_stream_is_a_subset_of_loads() {
        let trace = Benchmark::Turb3d.trace(1);
        let misses = l1_load_miss_stream(&trace);
        let loads = trace.iter().filter(|i| i.op.is_load()).count();
        assert!(!misses.is_empty());
        assert!(misses.len() < loads);
    }

    #[test]
    fn banner_mentions_scale() {
        assert!(machine_banner(3).contains("scale 3"));
        assert_eq!(eta_note(2, 5), "[2/5]");
    }
}
