//! Microbenchmarks: memory-hierarchy component throughput.

use psb_bench::micro::{bench, group};
use psb_common::{Addr, Cycle, SplitMix64};
use psb_mem::{Bus, Cache, CacheConfig, L1Cache, LowerMemory, MemConfig, Tlb};
use std::hint::black_box;

fn bench_cache() {
    let mut cache = Cache::new(CacheConfig::l1d_32k_4way());
    for i in 0..1024u64 {
        cache.insert(Addr::new(i * 32));
    }
    let mut i = 0u64;
    bench("l1d_access_hit", || {
        i = (i + 1) % 1024;
        black_box(cache.access(black_box(Addr::new(i * 32))));
    });

    let mut cache = Cache::new(CacheConfig::l1d_32k_4way());
    let mut rng = SplitMix64::new(3);
    bench("l1d_insert_evict", || {
        black_box(cache.insert(Addr::new(rng.below(1 << 24) * 32)));
    });
}

fn bench_bus_and_lower() {
    let mut bus = Bus::new(8);
    let mut now = Cycle::ZERO;
    bench("bus_acquire", || {
        now += 1;
        black_box(bus.acquire(now, 32));
    });

    let mut lower = LowerMemory::new(&MemConfig::baseline());
    let mut rng = SplitMix64::new(4);
    let mut now = Cycle::ZERO;
    bench("lower_fetch_block", || {
        // The arrival interval must exceed the per-miss bus occupancy
        // (~16 cycles for a 64 B block) or the in-flight map grows
        // without bound and the measurement becomes a function of how
        // many iterations ran, not of per-fetch cost.
        now += 64;
        let addr = Addr::new(rng.below(1 << 22) * 32);
        black_box(lower.fetch_block(now, addr, 32));
    });
}

fn bench_l1_and_tlb() {
    let mut l1 = L1Cache::new(CacheConfig::l1d_32k_4way(), 1, 16);
    for i in 0..512u64 {
        l1.install(Addr::new(i * 32));
    }
    let mut now = Cycle::ZERO;
    let mut i = 0u64;
    bench("l1cache_lookup", || {
        now += 1;
        i = (i + 1) % 1024; // half hits, half misses
        black_box(l1.lookup(now, Addr::new(i * 32)));
    });

    let mut tlb = Tlb::new(128, 4, 8192, 30);
    let mut rng = SplitMix64::new(5);
    let mut now = Cycle::ZERO;
    bench("tlb_translate", || {
        now += 1;
        let addr = Addr::new(rng.below(256) * 8192);
        black_box(tlb.translate(now, addr, false));
    });
}

fn main() {
    group("memory");
    bench_cache();
    bench_bus_and_lower();
    bench_l1_and_tlb();
    if let Err(e) = psb_bench::micro::write_json_default() {
        eprintln!("{}: {e}", psb_bench::micro::BENCH_JSON);
    }
}
