//! Criterion microbenchmarks: memory-hierarchy component throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use psb_common::{Addr, Cycle, SplitMix64};
use psb_mem::{Bus, Cache, CacheConfig, L1Cache, LowerMemory, MemConfig, Tlb};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    c.bench_function("l1d_access_hit", |b| {
        let mut cache = Cache::new(CacheConfig::l1d_32k_4way());
        for i in 0..1024u64 {
            cache.insert(Addr::new(i * 32));
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(cache.access(black_box(Addr::new(i * 32))));
        });
    });

    c.bench_function("l1d_insert_evict", |b| {
        let mut cache = Cache::new(CacheConfig::l1d_32k_4way());
        let mut rng = SplitMix64::new(3);
        b.iter(|| {
            black_box(cache.insert(Addr::new(rng.below(1 << 24) * 32)));
        });
    });
}

fn bench_bus_and_lower(c: &mut Criterion) {
    c.bench_function("bus_acquire", |b| {
        let mut bus = Bus::new(8);
        let mut now = Cycle::ZERO;
        b.iter(|| {
            now += 1;
            black_box(bus.acquire(now, 32));
        });
    });

    c.bench_function("lower_fetch_block", |b| {
        let mut lower = LowerMemory::new(&MemConfig::baseline());
        let mut rng = SplitMix64::new(4);
        let mut now = Cycle::ZERO;
        b.iter(|| {
            now += 8;
            let addr = Addr::new(rng.below(1 << 22) * 32);
            black_box(lower.fetch_block(now, addr, 32));
        });
    });
}

fn bench_l1_and_tlb(c: &mut Criterion) {
    c.bench_function("l1cache_lookup", |b| {
        let mut l1 = L1Cache::new(CacheConfig::l1d_32k_4way(), 1, 16);
        for i in 0..512u64 {
            l1.install(Addr::new(i * 32));
        }
        let mut now = Cycle::ZERO;
        let mut i = 0u64;
        b.iter(|| {
            now += 1;
            i = (i + 1) % 1024; // half hits, half misses
            black_box(l1.lookup(now, Addr::new(i * 32)));
        });
    });

    c.bench_function("tlb_translate", |b| {
        let mut tlb = Tlb::new(128, 4, 8192, 30);
        let mut rng = SplitMix64::new(5);
        let mut now = Cycle::ZERO;
        b.iter(|| {
            now += 1;
            let addr = Addr::new(rng.below(256) * 8192);
            black_box(tlb.translate(now, addr, false));
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_cache, bench_bus_and_lower, bench_l1_and_tlb
}
criterion_main!(benches);
