//! End-to-end benchmark: full-system simulated instructions per second
//! under each prefetcher configuration.

use psb_bench::micro::{bench_run, group};
use psb_sim::{MachineConfig, PrefetcherKind, Simulation};
use psb_workloads::Benchmark;
use std::hint::black_box;

fn main() {
    group("sim_throughput");
    // One modest trace, reused across configurations.
    let trace = Benchmark::DeltaBlue.trace(1);
    let window = 60_000u64;

    for kind in [PrefetcherKind::None, PrefetcherKind::PcStride, PrefetcherKind::PsbConfPriority] {
        bench_run(kind.label(), || {
            let cfg = MachineConfig::baseline().with_prefetcher(kind);
            let stats = Simulation::new(cfg, black_box(trace.clone()), window).run();
            black_box(stats.ipc());
        });
    }
    println!("(throughput basis: {window} committed instructions per iter)");
    if let Err(e) = psb_bench::micro::write_json_default() {
        eprintln!("{}: {e}", psb_bench::micro::BENCH_JSON);
    }
}
