//! Criterion end-to-end benchmark: full-system simulated instructions per
//! second under each prefetcher configuration.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use psb_sim::{MachineConfig, PrefetcherKind, Simulation};
use psb_workloads::Benchmark;
use std::hint::black_box;

fn bench_endtoend(c: &mut Criterion) {
    // One modest trace, reused across configurations.
    let trace = Benchmark::DeltaBlue.trace(1);
    let window = 60_000u64;

    let mut group = c.benchmark_group("sim_throughput");
    group.throughput(Throughput::Elements(window));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));

    for kind in [
        PrefetcherKind::None,
        PrefetcherKind::PcStride,
        PrefetcherKind::PsbConfPriority,
    ] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let cfg = MachineConfig::baseline().with_prefetcher(kind);
                let stats = Simulation::new(cfg, black_box(trace.clone()), window).run();
                black_box(stats.ipc())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_endtoend);
criterion_main!(benches);
