//! Microbenchmarks: predictor train/predict throughput.

use psb_bench::micro::{bench, group};
use psb_common::{Addr, Cycle, SplitMix64};
use psb_core::{
    MarkovTable, Prefetcher, PsbPrefetcher, SbConfig, SfmPredictor, StreamPredictor, StreamState,
    StrideTable, TestSink,
};
use std::hint::black_box;

fn bench_stride() {
    let mut table = StrideTable::paper_baseline();
    let mut i = 0u64;
    bench("stride_table_train", || {
        i += 1;
        let pc = Addr::new(0x1000 + (i % 256) * 4);
        let addr = Addr::new(0x10_0000 + i * 64);
        black_box(table.train(black_box(pc), black_box(addr)));
        table.confirm(pc, !i.is_multiple_of(3));
    });
}

fn bench_markov() {
    let mut m = MarkovTable::paper_baseline();
    let mut rng = SplitMix64::new(1);
    bench("markov_update_predict", || {
        let from = psb_common::BlockAddr(rng.below(1 << 20));
        let to = from.offset((rng.below(4096) as i64) - 2048);
        m.update(from, to);
        black_box(m.predict(black_box(from)));
    });
}

fn bench_sfm() {
    let mut sfm = SfmPredictor::paper_baseline();
    let mut rng = SplitMix64::new(2);
    bench("sfm_train", || {
        let pc = Addr::new(0x1000 + rng.below(64) * 4);
        let addr = Addr::new(0x10_0000 + rng.below(8192) * 32);
        sfm.train(black_box(pc), black_box(addr));
    });

    let mut sfm = SfmPredictor::paper_baseline();
    for i in 0..4096u64 {
        sfm.train(Addr::new(0x1000), Addr::new(0x10_0000 + (i % 512) * 160));
    }
    let mut state = StreamState::new(Addr::new(0x1000), Addr::new(0x10_0000), 32);
    bench("sfm_predict", || {
        black_box(sfm.predict(black_box(&mut state)));
    });
}

fn warm_psb() -> PsbPrefetcher {
    let mut psb = PsbPrefetcher::psb(SbConfig::psb_conf_priority());
    // Warm: several active streams.
    for s in 0..8u64 {
        let pc = Addr::new(0x1000 + s * 4);
        for i in 0..6u64 {
            psb.train(Cycle::ZERO, pc, Addr::new(0x10_0000 + s * 0x8000 + i * 64));
        }
        psb.allocate(Cycle::ZERO, pc, Addr::new(0x10_0000 + s * 0x8000 + 0x140));
    }
    psb
}

fn bench_psb_engine() {
    let mut psb = warm_psb();
    let mut sink = TestSink::new(16);
    let mut cycle = 0u64;
    bench("psb_tick", || {
        cycle += 1;
        psb.tick(Cycle::new(cycle), &mut sink);
        // Re-warm periodically so the engine never goes fully idle the
        // way criterion's per-batch setup kept it busy.
        if cycle.is_multiple_of(4096) {
            psb = warm_psb();
            sink.fetched.clear();
        }
    });

    let mut psb = PsbPrefetcher::psb(SbConfig::psb_conf_priority());
    let mut i = 0u64;
    bench("psb_lookup_miss", || {
        i += 1;
        black_box(psb.lookup(Cycle::new(i), Addr::new(0x5000_0000 + i * 32)));
    });
}

fn main() {
    group("predictors");
    bench_stride();
    bench_markov();
    bench_sfm();
    bench_psb_engine();
    if let Err(e) = psb_bench::micro::write_json_default() {
        eprintln!("{}: {e}", psb_bench::micro::BENCH_JSON);
    }
}
