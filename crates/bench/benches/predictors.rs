//! Criterion microbenchmarks: predictor train/predict throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use psb_common::{Addr, Cycle, SplitMix64};
use psb_core::{
    MarkovTable, Prefetcher, PsbPrefetcher, SbConfig, SfmPredictor, StreamPredictor,
    StreamState, StrideTable, TestSink,
};
use std::hint::black_box;

fn bench_stride(c: &mut Criterion) {
    c.bench_function("stride_table_train", |b| {
        let mut table = StrideTable::paper_baseline();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let pc = Addr::new(0x1000 + (i % 256) * 4);
            let addr = Addr::new(0x10_0000 + i * 64);
            black_box(table.train(black_box(pc), black_box(addr)));
            table.confirm(pc, !i.is_multiple_of(3));
        });
    });
}

fn bench_markov(c: &mut Criterion) {
    c.bench_function("markov_update_predict", |b| {
        let mut m = MarkovTable::paper_baseline();
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let from = psb_common::BlockAddr(rng.below(1 << 20));
            let to = from.offset((rng.below(4096) as i64) - 2048);
            m.update(from, to);
            black_box(m.predict(black_box(from)));
        });
    });
}

fn bench_sfm(c: &mut Criterion) {
    c.bench_function("sfm_train", |b| {
        let mut sfm = SfmPredictor::paper_baseline();
        let mut rng = SplitMix64::new(2);
        b.iter(|| {
            let pc = Addr::new(0x1000 + rng.below(64) * 4);
            let addr = Addr::new(0x10_0000 + rng.below(8192) * 32);
            sfm.train(black_box(pc), black_box(addr));
        });
    });

    c.bench_function("sfm_predict", |b| {
        let mut sfm = SfmPredictor::paper_baseline();
        for i in 0..4096u64 {
            sfm.train(Addr::new(0x1000), Addr::new(0x10_0000 + (i % 512) * 160));
        }
        let mut state =
            StreamState::new(Addr::new(0x1000), Addr::new(0x10_0000), 32);
        b.iter(|| black_box(sfm.predict(black_box(&mut state))));
    });
}

fn bench_psb_engine(c: &mut Criterion) {
    c.bench_function("psb_tick", |b| {
        b.iter_batched_ref(
            || {
                let mut psb = PsbPrefetcher::psb(SbConfig::psb_conf_priority());
                // Warm: several active streams.
                for s in 0..8u64 {
                    let pc = Addr::new(0x1000 + s * 4);
                    for i in 0..6u64 {
                        psb.train(Cycle::ZERO, pc, Addr::new(0x10_0000 + s * 0x8000 + i * 64));
                    }
                    psb.allocate(Cycle::ZERO, pc, Addr::new(0x10_0000 + s * 0x8000 + 0x140));
                }
                (psb, TestSink::new(16), 0u64)
            },
            |(psb, sink, cycle)| {
                *cycle += 1;
                psb.tick(Cycle::new(*cycle), sink);
            },
            BatchSize::SmallInput,
        );
    });

    c.bench_function("psb_lookup_miss", |b| {
        let mut psb = PsbPrefetcher::psb(SbConfig::psb_conf_priority());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(psb.lookup(Cycle::new(i), Addr::new(0x5000_0000 + i * 32)));
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_stride, bench_markov, bench_sfm, bench_psb_engine
}
criterion_main!(benches);
