//! CPU configuration.

use crate::bpred::BpredConfig;

/// Load/store disambiguation policy (Section 6.1 / Figure 11).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Disambiguation {
    /// Perfect store sets: "loads ... only ... dependent on stores which
    /// write to the same memory". A load waits only for (and forwards
    /// from) the youngest older store to the same address.
    Perfect,
    /// No disambiguation ("NoDis"): "a load waits to issue until all
    /// prior stores have issued".
    WaitForStores,
}

/// Parameters of the out-of-order core (Section 5.1 of the paper).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions dispatched (renamed + inserted into the ROB) per cycle.
    pub dispatch_width: usize,
    /// Instructions issued to functional units per cycle.
    pub issue_width: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Load/store queue entries.
    pub lsq_size: usize,
    /// Fetch-to-dispatch queue depth.
    pub fetch_queue_size: usize,
    /// Branch predictions available per fetch cycle.
    pub branches_per_fetch: usize,
    /// Minimum branch misprediction penalty in cycles.
    pub min_mispredict_penalty: u64,
    /// Cycles between branch resolution and the first corrected fetch.
    pub redirect_latency: u64,
    /// Store-to-load forwarding latency in cycles.
    pub store_forward_latency: u64,
    /// Memory disambiguation policy.
    pub disambiguation: Disambiguation,
    /// Branch predictor geometry.
    pub bpred: BpredConfig,
    /// Instruction-cache block size in bytes (for fetch-stage block
    /// boundary checks; must match the memory system's L1I geometry).
    pub icache_block: u64,
}

impl CpuConfig {
    /// The paper's baseline 8-wide core: 128-entry ROB, 64-entry LSQ,
    /// 2 predictions/cycle, 8-cycle minimum misprediction penalty,
    /// 2-cycle store forwarding, perfect store sets.
    pub fn baseline() -> Self {
        CpuConfig {
            fetch_width: 8,
            dispatch_width: 8,
            issue_width: 8,
            commit_width: 8,
            rob_size: 128,
            lsq_size: 64,
            fetch_queue_size: 32,
            branches_per_fetch: 2,
            min_mispredict_penalty: 8,
            redirect_latency: 2,
            store_forward_latency: 2,
            disambiguation: Disambiguation::Perfect,
            bpred: BpredConfig::default(),
            icache_block: 32,
        }
    }

    /// Baseline with the disambiguation policy replaced.
    pub fn with_disambiguation(mut self, d: Disambiguation) -> Self {
        self.disambiguation = d;
        self
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper() {
        let c = CpuConfig::baseline();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.lsq_size, 64);
        assert_eq!(c.branches_per_fetch, 2);
        assert_eq!(c.min_mispredict_penalty, 8);
        assert_eq!(c.store_forward_latency, 2);
        assert_eq!(c.disambiguation, Disambiguation::Perfect);
    }

    #[test]
    fn with_disambiguation_swaps_policy() {
        let c = CpuConfig::baseline().with_disambiguation(Disambiguation::WaitForStores);
        assert_eq!(c.disambiguation, Disambiguation::WaitForStores);
        assert_eq!(c.rob_size, 128);
    }
}
