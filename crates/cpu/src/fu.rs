//! Functional-unit pool.

use crate::inst::{FuClass, Op};
use psb_common::Cycle;

/// The paper's functional-unit complement and structural hazards.
///
/// "The processor has 8 integer ALU units, 4-load/store units, 2-FP
/// adders, 2-integer MULT/DIV, and 2-FP MULT/DIV. ... All functional
/// units, except the divide units, are fully pipelined."
///
/// Pipelined units accept a new operation every cycle; divides occupy
/// their unit for the full latency.
///
/// # Example
///
/// ```
/// use psb_common::Cycle;
/// use psb_cpu::{FuPool, Op};
///
/// let mut pool = FuPool::paper_baseline();
/// // Two divides grab both unpipelined units; the third must wait.
/// assert!(pool.try_issue(Op::IntDiv, Cycle::ZERO).is_some());
/// assert!(pool.try_issue(Op::IntDiv, Cycle::ZERO).is_some());
/// assert!(pool.try_issue(Op::IntDiv, Cycle::ZERO).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct FuPool {
    /// Per class: next-free cycle of each unit.
    units: [Vec<Cycle>; 5],
}

impl FuPool {
    /// The paper's unit counts: 8 ALU, 4 ld/st, 2 FP add, 2 int mul/div,
    /// 2 FP mul/div.
    pub fn paper_baseline() -> Self {
        FuPool::new([8, 4, 2, 2, 2])
    }

    /// Creates a pool with explicit per-class unit counts, ordered as
    /// [`FuClass::ALL`].
    ///
    /// # Panics
    ///
    /// Panics if any class has zero units.
    pub fn new(counts: [usize; 5]) -> Self {
        assert!(counts.iter().all(|&c| c > 0), "every FU class needs at least one unit");
        FuPool { units: counts.map(|c| vec![Cycle::ZERO; c]) }
    }

    fn class_index(class: FuClass) -> usize {
        FuClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("invariant: FuClass::ALL enumerates every class")
    }

    /// Attempts to issue `op` at `now`. On success, returns the cycle the
    /// result is available; the chosen unit is occupied for one cycle
    /// (pipelined ops) or the full latency (divides).
    pub fn try_issue(&mut self, op: Op, now: Cycle) -> Option<Cycle> {
        let class = Self::class_index(op.fu_class());
        let unit = self.units[class].iter_mut().find(|free| **free <= now)?;
        let occupy = if op.pipelined() { 1 } else { op.latency() };
        *unit = now + occupy;
        Some(now + op.latency())
    }

    /// Number of units of `op`'s class free at `now`.
    pub fn free_units(&self, op: Op, now: Cycle) -> usize {
        let class = Self::class_index(op.fu_class());
        self.units[class].iter().filter(|free| **free <= now).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_units_accept_every_cycle() {
        let mut pool = FuPool::new([1, 1, 1, 1, 1]);
        assert_eq!(pool.try_issue(Op::IntMult, Cycle::ZERO), Some(Cycle::new(3)));
        // Same unit, next cycle: fine, it is pipelined.
        assert_eq!(pool.try_issue(Op::IntMult, Cycle::new(1)), Some(Cycle::new(4)));
        // Same cycle: structural hazard with only one unit.
        assert_eq!(pool.try_issue(Op::IntMult, Cycle::new(1)), None);
    }

    #[test]
    fn divides_block_their_unit() {
        let mut pool = FuPool::new([1, 1, 1, 1, 1]);
        assert_eq!(pool.try_issue(Op::IntDiv, Cycle::ZERO), Some(Cycle::new(12)));
        // A multiply wants the same Int mul/div unit: busy until 12.
        assert_eq!(pool.try_issue(Op::IntMult, Cycle::new(11)), None);
        assert_eq!(pool.try_issue(Op::IntMult, Cycle::new(12)), Some(Cycle::new(15)));
    }

    #[test]
    fn paper_baseline_widths() {
        let pool = FuPool::paper_baseline();
        assert_eq!(pool.free_units(Op::IntAlu, Cycle::ZERO), 8);
        assert_eq!(pool.free_units(Op::Load, Cycle::ZERO), 4);
        assert_eq!(pool.free_units(Op::FpAdd, Cycle::ZERO), 2);
        assert_eq!(pool.free_units(Op::IntMult, Cycle::ZERO), 2);
        assert_eq!(pool.free_units(Op::FpMult, Cycle::ZERO), 2);
    }

    #[test]
    fn loads_share_ldst_units_with_stores() {
        let mut pool = FuPool::paper_baseline();
        for _ in 0..2 {
            assert!(pool.try_issue(Op::Load, Cycle::ZERO).is_some());
            assert!(pool.try_issue(Op::Store, Cycle::ZERO).is_some());
        }
        assert!(pool.try_issue(Op::Load, Cycle::ZERO).is_none());
        assert_eq!(pool.free_units(Op::Store, Cycle::ZERO), 0);
    }

    #[test]
    fn branch_uses_alu() {
        let mut pool = FuPool::new([1, 1, 1, 1, 1]);
        assert!(pool.try_issue(Op::Branch, Cycle::ZERO).is_some());
        assert!(pool.try_issue(Op::IntAlu, Cycle::ZERO).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_units_panics() {
        FuPool::new([0, 1, 1, 1, 1]);
    }
}
