//! The dynamic instruction record consumed by the timing pipeline.
//!
//! The workload generators (crate `psb-workloads`) execute models of the
//! benchmark programs and emit a stream of [`DynInst`]s — the correct-path
//! dynamic instruction trace, with true register dependences, effective
//! addresses for loads/stores, and outcomes for branches. The pipeline in
//! [`crate::Pipeline`] replays this stream under resource and dependence
//! constraints.

use psb_common::Addr;

/// An architectural register name.
///
/// The trace uses a flat namespace of 64 registers (enough to express the
/// dependence patterns of the modeled benchmarks; the actual ISA does not
/// matter to the timing model).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 64;

    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `n >= Reg::COUNT`.
    pub fn new(n: u8) -> Self {
        assert!((n as usize) < Self::COUNT, "register {n} out of range");
        Reg(n)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Operation classes, following the paper's functional-unit mix.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// Integer ALU operation (also used for address arithmetic and
    /// compares). 1-cycle latency.
    IntAlu,
    /// Integer multiply. 3-cycle latency, pipelined.
    IntMult,
    /// Integer divide. 12-cycle latency, unpipelined.
    IntDiv,
    /// Floating-point add/sub/convert. 2-cycle latency, pipelined.
    FpAdd,
    /// Floating-point multiply. 4-cycle latency, pipelined.
    FpMult,
    /// Floating-point divide. 12-cycle latency, unpipelined.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Control transfer (conditional or unconditional; see
    /// [`BranchKind`]). Executes on an integer ALU.
    Branch,
}

/// Functional-unit classes (Section 5.1 of the paper).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// 8 integer ALUs.
    IntAlu,
    /// 4 load/store units.
    LoadStore,
    /// 2 FP adders.
    FpAdd,
    /// 2 integer multiply/divide units.
    IntMultDiv,
    /// 2 FP multiply/divide units.
    FpMultDiv,
}

impl FuClass {
    /// All classes, for iteration.
    pub const ALL: [FuClass; 5] = [
        FuClass::IntAlu,
        FuClass::LoadStore,
        FuClass::FpAdd,
        FuClass::IntMultDiv,
        FuClass::FpMultDiv,
    ];
}

impl Op {
    /// The functional-unit class this operation issues to.
    pub fn fu_class(self) -> FuClass {
        match self {
            Op::IntAlu | Op::Branch => FuClass::IntAlu,
            Op::Load | Op::Store => FuClass::LoadStore,
            Op::FpAdd => FuClass::FpAdd,
            Op::IntMult | Op::IntDiv => FuClass::IntMultDiv,
            Op::FpMult | Op::FpDiv => FuClass::FpMultDiv,
        }
    }

    /// Execution latency in cycles (for loads, the address-generation part
    /// only — the memory system adds the rest).
    pub fn latency(self) -> u64 {
        match self {
            Op::IntAlu | Op::Branch | Op::Load | Op::Store => 1,
            Op::IntMult => 3,
            Op::FpAdd => 2,
            Op::FpMult => 4,
            Op::IntDiv | Op::FpDiv => 12,
        }
    }

    /// Whether the functional unit accepts a new operation every cycle
    /// while this one executes. Divide units are not pipelined.
    pub fn pipelined(self) -> bool {
        !matches!(self, Op::IntDiv | Op::FpDiv)
    }

    /// True for [`Op::Load`].
    pub fn is_load(self) -> bool {
        matches!(self, Op::Load)
    }

    /// True for [`Op::Store`].
    pub fn is_store(self) -> bool {
        matches!(self, Op::Store)
    }

    /// True for memory operations.
    pub fn is_mem(self) -> bool {
        self.is_load() || self.is_store()
    }
}

/// Control-transfer subtypes, used by the branch predictor.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch.
    Conditional,
    /// Unconditional direct jump.
    Jump,
    /// Direct call (pushes the return address on the RAS).
    Call,
    /// Return (predicted via the RAS).
    Return,
    /// Indirect jump through a register (predicted via the BTB).
    Indirect,
}

/// Resolved outcome of a control transfer, known from the trace.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BranchInfo {
    /// The subtype.
    pub kind: BranchKind,
    /// Whether the branch was taken (always true for non-conditionals).
    pub taken: bool,
    /// The target when taken.
    pub target: Addr,
}

/// One dynamic (committed-path) instruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DynInst {
    /// The instruction's address. Consecutive trace records must satisfy
    /// the program-order invariant: `next.pc == pc + 4` for non-branches
    /// and not-taken branches, `next.pc == target` for taken branches.
    pub pc: Addr,
    /// Operation class.
    pub op: Op,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// First source register, if any.
    pub src1: Option<Reg>,
    /// Second source register, if any.
    pub src2: Option<Reg>,
    /// Effective address for loads/stores.
    pub mem_addr: Option<Addr>,
    /// Access size in bytes for loads/stores.
    pub mem_size: u8,
    /// Outcome for branches.
    pub branch: Option<BranchInfo>,
}

impl DynInst {
    /// A plain integer ALU op `dst <- src1 op src2`.
    pub fn alu(pc: Addr, dst: Reg, src1: Option<Reg>, src2: Option<Reg>) -> Self {
        DynInst {
            pc,
            op: Op::IntAlu,
            dst: Some(dst),
            src1,
            src2,
            mem_addr: None,
            mem_size: 0,
            branch: None,
        }
    }

    /// A load `dst <- mem[addr]`, address formed from `base`.
    pub fn load(pc: Addr, dst: Reg, base: Option<Reg>, addr: Addr, size: u8) -> Self {
        DynInst {
            pc,
            op: Op::Load,
            dst: Some(dst),
            src1: base,
            src2: None,
            mem_addr: Some(addr),
            mem_size: size,
            branch: None,
        }
    }

    /// A store `mem[addr] <- data`, address formed from `base`.
    pub fn store(pc: Addr, data: Option<Reg>, base: Option<Reg>, addr: Addr, size: u8) -> Self {
        DynInst {
            pc,
            op: Op::Store,
            dst: None,
            src1: base,
            src2: data,
            mem_addr: Some(addr),
            mem_size: size,
            branch: None,
        }
    }

    /// A control transfer with a resolved outcome.
    pub fn branch(pc: Addr, src: Option<Reg>, info: BranchInfo) -> Self {
        DynInst {
            pc,
            op: Op::Branch,
            dst: None,
            src1: src,
            src2: None,
            mem_addr: None,
            mem_size: 0,
            branch: Some(info),
        }
    }

    /// The address of the instruction that must follow this one on the
    /// correct path.
    pub fn next_pc(&self) -> Addr {
        match self.branch {
            Some(b) if b.taken => b.target,
            _ => self.pc.offset(4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu_mapping_matches_paper() {
        assert_eq!(Op::IntAlu.fu_class(), FuClass::IntAlu);
        assert_eq!(Op::Branch.fu_class(), FuClass::IntAlu);
        assert_eq!(Op::Load.fu_class(), FuClass::LoadStore);
        assert_eq!(Op::Store.fu_class(), FuClass::LoadStore);
        assert_eq!(Op::IntDiv.fu_class(), FuClass::IntMultDiv);
        assert_eq!(Op::FpDiv.fu_class(), FuClass::FpMultDiv);
    }

    #[test]
    fn latencies_match_paper() {
        assert_eq!(Op::IntAlu.latency(), 1);
        assert_eq!(Op::IntMult.latency(), 3);
        assert_eq!(Op::IntDiv.latency(), 12);
        assert_eq!(Op::FpAdd.latency(), 2);
        assert_eq!(Op::FpMult.latency(), 4);
        assert_eq!(Op::FpDiv.latency(), 12);
    }

    #[test]
    fn divides_are_unpipelined() {
        assert!(!Op::IntDiv.pipelined());
        assert!(!Op::FpDiv.pipelined());
        assert!(Op::IntMult.pipelined());
        assert!(Op::FpMult.pipelined());
        assert!(Op::IntAlu.pipelined());
    }

    #[test]
    fn next_pc_follows_control_flow() {
        let fall = DynInst::alu(Addr::new(0x100), Reg::new(1), None, None);
        assert_eq!(fall.next_pc(), Addr::new(0x104));

        let nt = DynInst::branch(
            Addr::new(0x100),
            None,
            BranchInfo { kind: BranchKind::Conditional, taken: false, target: Addr::new(0x200) },
        );
        assert_eq!(nt.next_pc(), Addr::new(0x104));

        let t = DynInst::branch(
            Addr::new(0x100),
            None,
            BranchInfo { kind: BranchKind::Conditional, taken: true, target: Addr::new(0x200) },
        );
        assert_eq!(t.next_pc(), Addr::new(0x200));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_bounds_checked() {
        Reg::new(64);
    }

    #[test]
    fn constructors_set_mem_fields() {
        let ld = DynInst::load(Addr::new(0), Reg::new(2), Some(Reg::new(1)), Addr::new(0x80), 8);
        assert!(ld.op.is_load());
        assert!(ld.op.is_mem());
        assert_eq!(ld.mem_addr, Some(Addr::new(0x80)));
        assert_eq!(ld.mem_size, 8);

        let st =
            DynInst::store(Addr::new(4), Some(Reg::new(2)), Some(Reg::new(1)), Addr::new(0x88), 8);
        assert!(st.op.is_store());
        assert_eq!(st.dst, None);
    }
}
